"""The LASH algorithm: hierarchy-aware partitioning + pivot sequence mining."""

from repro.core.params import MiningParams
from repro.core.rewrite import (
    FULL_REWRITE,
    NO_REWRITE,
    RewritePlan,
    w_generalize,
    blank_isolated_pivots,
    pivot_distances,
    blank_unreachable,
    compress_blanks,
    rewrite_for_pivot,
)
from repro.core.partition import frequent_pivots, build_partitions
from repro.core.partition_stats import (
    PartitionStats,
    partition_statistics,
    replication_factor,
)
from repro.core.psm import PivotSequenceMiner, ExplorationStats
from repro.core.result import MiningResult
from repro.core.lash import Lash
from repro.core.closedlash import (
    ClosedLash,
    ClosedMiningResult,
    mine_closed_direct,
)
from repro.core.topk import mine_top_k

__all__ = [
    "MiningParams",
    "FULL_REWRITE",
    "NO_REWRITE",
    "RewritePlan",
    "w_generalize",
    "blank_isolated_pivots",
    "pivot_distances",
    "blank_unreachable",
    "compress_blanks",
    "rewrite_for_pivot",
    "frequent_pivots",
    "build_partitions",
    "PartitionStats",
    "partition_statistics",
    "replication_factor",
    "PivotSequenceMiner",
    "ExplorationStats",
    "MiningResult",
    "Lash",
    "ClosedLash",
    "ClosedMiningResult",
    "mine_closed_direct",
    "mine_top_k",
]
