"""Direct distributed mining of closed and maximal generalized sequences.

The paper computes Table 3's closed/maximal percentages by post-processing
the full GSM output and remarks (Sec. 6.7) that *"direct mining of maximal
or closed sequences in the context of hierarchies has not been studied in
the literature"*.  This module supplies that algorithm: a LASH-style
distributed miner that prunes redundant patterns *inside* each partition
and reconciles the remainder with one extra MapReduce job, instead of
materializing the full output and filtering it centrally.

Definitions (paper Sec. 6.7, same universe as
:mod:`repro.analysis.redundancy`): within the output universe — frequent
generalized sequences ``S`` with ``2 ≤ |S| ≤ λ`` — a pattern is **maximal**
if no proper supersequence ``S' ⊐0 S`` is in the universe, and **closed**
if every such supersequence has strictly lower frequency.

Algorithm
---------

By the atomic-neighbor lemma (:mod:`repro.analysis.closedmax`), ``S`` is
non-maximal (non-closed) iff some *atomic neighbor* of ``S`` — one-item
prepend, one-item append, or one-step specialization — is in the output
(with equal frequency).  Every atomic neighbor ``P`` of ``S`` satisfies
``p(P) ≥ p(S)``: adding or specializing items can only raise the pivot.
This splits the witness test along partition boundaries:

* **Local pruning** (inside the mining reducer): neighbors with
  ``p(P) = p(S)`` are mined in the *same* partition, so each reducer drops
  its locally-witnessed patterns right after mining — before anything is
  shuffled.
* **Cover reconciliation** (one extra job): for neighbors with
  ``p(P) > p(S)``, the partition that mined ``P`` emits a ``cover``
  message keyed by ``S`` carrying ``f(P)``.  A final reduce joins each
  surviving candidate with its incoming covers: a candidate is maximal if
  no cover arrived, closed if every cover has strictly lower frequency.

Covers only cross partition boundaries when removing or generalizing an
item *lowers the pivot* — for most patterns the pivot occurs away from the
edges and nothing is emitted, so the reconciliation shuffle is a small
fraction of the mining shuffle (measured by the ablation benchmark).

The result provably equals post-processing the full GSM output with
:func:`repro.analysis.closedmax.filter_result`; the agreement is enforced
by property-based tests.

>>> from repro.core.closedlash import ClosedLash
>>> lash = ClosedLash(MiningParams(sigma=2, gamma=1, lam=3), mode="maximal")
>>> result = lash.mine(database, hierarchy)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.lash import MinerFactory, resolve_miner
from repro.core.params import MiningParams
from repro.core.partition import merge_weighted, partition_emissions
from repro.core.result import MiningResult
from repro.core.rewrite import FULL_REWRITE, RewritePlan
from repro.errors import InvalidParameterError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.miners.base import LocalMiner
from repro.sequence.database import SequenceDatabase
from repro.sequence.encoding import encode_uvarint, encoded_size

Pattern = tuple[int, ...]

MODES = ("closed", "maximal")

#: reconciliation message tags
_CAND = 0
_COVER = 1


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise InvalidParameterError(
            f"mode must be one of {MODES}, got {mode!r}"
        )
    return mode


# ----------------------------------------------------------------------
# local pruning: same-pivot atomic neighbors
# ----------------------------------------------------------------------


def _child_ids(vocabulary: Vocabulary) -> dict[int, list[int]]:
    """Item id → ids of its one-step specializations (hierarchy children)."""
    children: dict[int, list[int]] = {i: [] for i in range(len(vocabulary))}
    for item_id in range(len(vocabulary)):
        for parent in vocabulary.parent_ids(item_id):
            children[parent].append(item_id)
    return children


def prune_locally(
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    mode: str,
    children: dict[int, list[int]] | None = None,
) -> dict[Pattern, int]:
    """Drop patterns witnessed non-closed/non-maximal by a *same-partition*
    atomic neighbor.

    ``patterns`` must be the complete local output of one partition (all
    frequent pivot sequences for one pivot, global frequencies).  Patterns
    whose only witnesses live in larger-pivot partitions survive here and
    are settled by the reconciliation job.
    """
    _check_mode(mode)
    if children is None:
        children = _child_ids(vocabulary)
    # prepend/append witnesses: max frequency of any output pattern whose
    # first/last drop equals the probed pattern
    drop_first: dict[Pattern, int] = {}
    drop_last: dict[Pattern, int] = {}
    for p, f in patterns.items():
        if len(p) < 3:
            continue  # drops of length-2 patterns leave the universe
        key_f, key_l = p[1:], p[:-1]
        if drop_first.get(key_f, -1) < f:
            drop_first[key_f] = f
        if drop_last.get(key_l, -1) < f:
            drop_last[key_l] = f

    survivors: dict[Pattern, int] = {}
    for pattern, frequency in patterns.items():
        best = -1
        witness_f = drop_first.get(pattern)
        if witness_f is not None and witness_f > best:
            best = witness_f
        witness_f = drop_last.get(pattern)
        if witness_f is not None and witness_f > best:
            best = witness_f
        for j, item in enumerate(pattern):
            for child in children[item]:
                witness_f = patterns.get(
                    pattern[:j] + (child,) + pattern[j + 1 :]
                )
                if witness_f is not None and witness_f > best:
                    best = witness_f
        if mode == "maximal":
            if best < 0:
                survivors[pattern] = frequency
        else:  # closed: witnesses never exceed f (Lemma 1); equality kills
            if best < frequency:
                survivors[pattern] = frequency
    return survivors


def cross_pivot_covers(
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    pivot: int,
) -> Iterable[tuple[Pattern, int]]:
    """Yield ``(covered pattern, f(P))`` for every atomic sub-neighbor of a
    mined pattern whose pivot is *smaller* than this partition's.

    Sub-neighbors are the inverse moves of the neighbor lemma: drop the
    first item, drop the last item, or generalize one item one step up.
    Same-pivot sub-neighbors are omitted — local pruning already saw them.
    """
    for pattern, frequency in patterns.items():
        if len(pattern) > 2:
            for sub in (pattern[1:], pattern[:-1]):
                if max(sub) != pivot:
                    yield sub, frequency
        for j, item in enumerate(pattern):
            for parent in vocabulary.parent_ids(item):
                sub = pattern[:j] + (parent,) + pattern[j + 1 :]
                if max(sub) != pivot:
                    yield sub, frequency


# ----------------------------------------------------------------------
# MapReduce jobs
# ----------------------------------------------------------------------


class CandidateMineJob(MapReduceJob):
    """Partitioning + mining + local pruning + cover emission.

    The map side is identical to :class:`repro.core.lash.PartitionMineJob`.
    Each reduce group mines its partition, locally prunes, then emits

    * ``(S, (_CAND, f))`` for every surviving candidate, and
    * ``(S, (_COVER, f(P)))`` for every cross-pivot sub-neighbor of every
      mined pattern ``P`` (pruned or not — covers must reflect the *full*
      output).
    """

    name = "closed-mine"
    has_combiner = True

    def __init__(
        self,
        vocabulary: Vocabulary,
        params: MiningParams,
        miner: LocalMiner,
        mode: str,
        rewrite_plan: RewritePlan = FULL_REWRITE,
    ) -> None:
        self.vocabulary = vocabulary
        self.params = params
        self.miner = miner
        self.mode = _check_mode(mode)
        self.rewrite_plan = rewrite_plan
        self._children = _child_ids(vocabulary)

    def map(self, record: tuple[int, ...]):
        for pivot, rewritten in partition_emissions(
            self.vocabulary, record, self.params, self.rewrite_plan
        ):
            yield pivot, (rewritten, 1)

    def combine(self, key, values):
        for seq, weight in merge_weighted(values).items():
            yield key, (seq, weight)

    def reduce(self, key, values):
        partition = merge_weighted(values)
        mined = self.miner.mine_partition(partition, key)
        survivors = prune_locally(
            mined, self.vocabulary, self.mode, self._children
        )
        for pattern, frequency in survivors.items():
            yield pattern, (_CAND, frequency)
        for pattern, frequency in cross_pivot_covers(
            mined, self.vocabulary, key
        ):
            yield pattern, (_COVER, frequency)

    def kv_size(self, key, value) -> int:
        seq, weight = value  # map/combine-side partition emission
        return (
            len(encode_uvarint(key))
            + encoded_size(seq)
            + len(encode_uvarint(weight))
        )


class ReconcileJob(MapReduceJob):
    """Join candidates with their cross-pivot covers (second job).

    Input records are the ``(pattern, (tag, f))`` pairs of
    :class:`CandidateMineJob`; the reduce emits the patterns that survive
    the mode's cover test.  At most one candidate record exists per pattern
    (each pattern is mined in exactly one partition).
    """

    name = "closed-reconcile"
    has_combiner = True

    def __init__(self, mode: str) -> None:
        self.mode = _check_mode(mode)

    def map(self, record: tuple[Pattern, tuple[int, int]]):
        pattern, tagged = record
        yield pattern, tagged

    def combine(self, key, values):
        """Covers only matter through their maximum; candidates pass as-is."""
        best_cover = -1
        for tag, frequency in values:
            if tag == _CAND:
                yield key, (tag, frequency)
            elif frequency > best_cover:
                best_cover = frequency
        if best_cover >= 0:
            yield key, (_COVER, best_cover)

    def reduce(self, key, values):
        candidate_f: int | None = None
        best_cover = -1
        for tag, frequency in values:
            if tag == _CAND:
                candidate_f = frequency
            elif frequency > best_cover:
                best_cover = frequency
        if candidate_f is None:
            return
        if self.mode == "maximal":
            if best_cover < 0:
                yield key, candidate_f
        else:
            if best_cover < candidate_f:
                yield key, candidate_f

    def kv_size(self, key, value) -> int:
        tag, frequency = value
        return 1 + encoded_size(key) + len(encode_uvarint(frequency))


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


@dataclass
class ClosedMiningResult(MiningResult):
    """A :class:`MiningResult` plus the reconciliation job's measurements."""

    reconcile_job: JobResult | None = None

    def total_metrics(self):
        merged = super().total_metrics()
        if self.reconcile_job is not None:
            merged.merge(self.reconcile_job.metrics)
        return merged


class ClosedLash:
    """LASH with direct closed/maximal mining (three MapReduce jobs).

    Parameters mirror :class:`repro.core.lash.Lash` plus ``mode``:
    ``"closed"`` keeps patterns with no equal-frequency supersequence in
    the output universe, ``"maximal"`` keeps patterns with no supersequence
    at all.

    Example
    -------
    >>> miner = ClosedLash(MiningParams(2, 1, 3), mode="closed")
    >>> result = miner.mine(database, hierarchy)
    >>> sorted(result.decoded())  # doctest: +SKIP
    """

    def __init__(
        self,
        params: MiningParams,
        mode: str = "closed",
        local_miner: str | MinerFactory = "psm",
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
        failure_plan=None,
        rewrite_plan: RewritePlan = FULL_REWRITE,
        spill_dir=None,
    ) -> None:
        self.params = params
        self.mode = _check_mode(mode)
        self.miner_factory = resolve_miner(local_miner)
        self.rewrite_plan = rewrite_plan
        self.engine = MapReduceEngine(
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            failure_plan=failure_plan,
            spill_dir=spill_dir,
        )

    def mine(
        self,
        database: SequenceDatabase,
        hierarchy: Hierarchy | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> ClosedMiningResult:
        """Mine the closed (or maximal) frequent generalized sequences."""
        from repro.core.lash import Lash

        preprocess_job = None
        if vocabulary is None:
            if hierarchy is None:
                hierarchy = Hierarchy.flat(
                    {item for seq in database for item in seq}
                )
            helper = Lash(self.params)
            helper.engine = self.engine
            vocabulary, preprocess_job = helper.preprocess(
                database, hierarchy
            )

        miner = self.miner_factory(vocabulary, self.params)
        mine_job = CandidateMineJob(
            vocabulary, self.params, miner, self.mode, self.rewrite_plan
        )
        encoded = [vocabulary.encode_sequence(seq) for seq in database]
        mining = self.engine.run(mine_job, encoded)
        reconcile = self.engine.run(ReconcileJob(self.mode), mining.output)

        return ClosedMiningResult(
            patterns=dict(reconcile.output),
            vocabulary=vocabulary,
            params=self.params,
            algorithm=f"closed-lash[{self.mode},{miner.name}]",
            preprocess_job=preprocess_job,
            mining_job=mining,
            local_stats=miner.stats,
            reconcile_job=reconcile,
        )


def mine_closed_direct(
    database,
    hierarchy=None,
    sigma: int = 1,
    gamma: int | None = 0,
    lam: int = 5,
    mode: str = "closed",
    local_miner: str = "psm",
) -> ClosedMiningResult:
    """One-call convenience API for direct closed/maximal mining.

    >>> result = mine_closed_direct(db, h, sigma=2, gamma=1, lam=3,
    ...                             mode="maximal")
    """
    if not isinstance(database, SequenceDatabase):
        database = SequenceDatabase(database)
    driver = ClosedLash(
        MiningParams(sigma, gamma, lam), mode=mode, local_miner=local_miner
    )
    return driver.mine(database, hierarchy)


__all__ = [
    "MODES",
    "ClosedLash",
    "ClosedMiningResult",
    "CandidateMineJob",
    "ReconcileJob",
    "prune_locally",
    "cross_pivot_covers",
    "mine_closed_direct",
]
