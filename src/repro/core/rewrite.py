"""Partition-construction rewrites (paper Sec. 4).

Given a pivot item ``w``, an input sequence ``T`` is rewritten into a
*w-equivalent* sequence ``P_w(T)`` — one that generates exactly the same
multiset of pivot sequences ``G_{w,λ}(T)`` — which is as short and as
compressible as possible.  The pipeline:

1. **w-generalization** (Sec. 4.2): items larger than the pivot
   ("irrelevant") are replaced by their largest ancestor ``≤ w``, or by a
   blank when no such ancestor exists.
2. **Isolated pivot removal** (Sec. 4.3): pivot occurrences with no
   non-blank neighbour within gap ``γ`` cannot take part in any pivot
   sequence of length ≥ 2 and are blanked.  Blanking is *simultaneous*: if
   pivot p₁'s only non-blank neighbour is pivot p₂ then p₂ also has the
   non-blank neighbour p₁, so neither is isolated — blanked positions can
   therefore never un-isolate a kept pivot, and one pass suffices.
3. **Unreachability reduction** (Sec. 4.3): an index whose minimal
   "pivot distance" exceeds ``λ`` cannot be matched by any pivot sequence of
   length ≤ λ; such items are blanked.  (The paper *removes* them; removal
   is only safe at the sequence edges — deleting an interior item shrinks
   real gaps and could manufacture patterns, e.g. ``D x⁶ D`` with γ=0 must
   not become ``DD`` — so we blank and let step 4 shrink the run.)
4. **Blank compression**: leading/trailing blanks are dropped and interior
   runs longer than ``γ+1`` are truncated to exactly ``γ+1`` blanks, which no
   gap can bridge anyway.  With unbounded gap, blanks carry no information
   at all and are removed entirely.

The *pivot distance* of index ``i`` is the minimum, over pivot indexes
``p``, of the size of an increasing/decreasing index path from ``p`` to
``i`` (both endpoints included) whose consecutive elements respect the gap
constraint and whose intermediate elements are non-blank (the target may be
blank).  A pivot index has distance 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constants import BLANK
from repro.core.params import MiningParams
from repro.hierarchy.vocabulary import Vocabulary

_INF = float("inf")

Seq = Sequence[int]


@dataclass(frozen=True)
class RewritePlan:
    """Which rewrite stages run — every combination is correct.

    Each stage preserves w-equivalence on its own (an un-generalized
    irrelevant item behaves like a blank to the matcher, so skipping a
    stage only makes the later stages conservative), which makes the plan a
    sound ablation knob: LASH must mine the identical answer under any
    plan, while communication and skew degrade as stages are dropped
    (``benchmarks/bench_ablation_rewrites.py``).
    """

    generalize: bool = True
    isolated: bool = True
    unreachable: bool = True
    compress: bool = True

    def describe(self) -> str:
        stages = [
            name
            for name, on in (
                ("gen", self.generalize),
                ("iso", self.isolated),
                ("unreach", self.unreachable),
                ("compress", self.compress),
            )
            if on
        ]
        return "+".join(stages) if stages else "none"


#: the paper's full pipeline
FULL_REWRITE = RewritePlan()
#: ``P_w(T) = T`` — the "simple and correct" strawman of Sec. 3.4
NO_REWRITE = RewritePlan(False, False, False, False)


def _is_pivot_pos(vocabulary: Vocabulary, item: int, pivot: int) -> bool:
    """True when the item at a position can match the pivot item."""
    if item == pivot:
        return True
    # DAG fallback only: w-generalization may keep an irrelevant descendant
    return item > pivot and vocabulary.generalizes_to(item, pivot)


def w_generalize(vocabulary: Vocabulary, sequence: Seq, pivot: int) -> list[int]:
    """Replace every irrelevant item (``> pivot``) by its largest relevant
    ancestor, or by a blank when none exists (paper Sec. 4.2)."""
    out: list[int] = []
    for item in sequence:
        if item == BLANK or item <= pivot:
            out.append(item)
        else:
            out.append(vocabulary.largest_relevant_ancestor(item, pivot))
    return out


def blank_isolated_pivots(
    vocabulary: Vocabulary,
    sequence: Seq,
    pivot: int,
    gamma: int | None,
) -> list[int]:
    """Blank pivot occurrences with no non-blank item within gap ``γ``."""
    n = len(sequence)
    out = list(sequence)
    for i, item in enumerate(sequence):
        if not _is_pivot_pos(vocabulary, item, pivot):
            continue
        if gamma is None:
            lo, hi = 0, n
        else:
            lo, hi = max(0, i - gamma - 1), min(n, i + gamma + 2)
        if not any(
            sequence[j] != BLANK and j != i for j in range(lo, hi)
        ):
            out[i] = BLANK
    return out


def pivot_distances(
    vocabulary: Vocabulary,
    sequence: Seq,
    pivot: int,
    gamma: int | None,
) -> list[float]:
    """Minimal pivot distance of every index (paper Sec. 4.3 table).

    Returns ``inf`` for indexes unreachable from every pivot occurrence.
    """
    n = len(sequence)
    left = _directed_distances(vocabulary, sequence, pivot, gamma, reverse=False)
    right = _directed_distances(vocabulary, sequence, pivot, gamma, reverse=True)
    return [min(left[i], right[i]) for i in range(n)]


def _directed_distances(
    vocabulary: Vocabulary,
    sequence: Seq,
    pivot: int,
    gamma: int | None,
    reverse: bool,
) -> list[float]:
    """Left distances (``reverse=False``) or right distances (``True``).

    ``dist[i] = 1`` at pivot indexes; otherwise ``1 + min`` over non-blank
    predecessor indexes within the gap window.  Blank targets receive a
    distance (they may be kept for spacing) but never serve as hops.
    """
    n = len(sequence)
    dist: list[float] = [_INF] * n
    order = range(n - 1, -1, -1) if reverse else range(n)
    for i in order:
        if _is_pivot_pos(vocabulary, sequence[i], pivot):
            dist[i] = 1.0
            continue
        if gamma is None:
            window = range(i + 1, n) if reverse else range(i)
        elif reverse:
            window = range(i + 1, min(n, i + gamma + 2))
        else:
            window = range(max(0, i - gamma - 1), i)
        best = _INF
        for j in window:
            if sequence[j] != BLANK and dist[j] < best:
                best = dist[j]
        if best is not _INF:
            dist[i] = best + 1.0
    return dist


def blank_unreachable(
    sequence: Seq, distances: Sequence[float], lam: int
) -> list[int]:
    """Blank indexes whose pivot distance exceeds ``λ``."""
    return [
        item if distances[i] <= lam else BLANK
        for i, item in enumerate(sequence)
    ]


def compress_blanks(sequence: Seq, gamma: int | None) -> tuple[int, ...]:
    """Trim edge blanks; cap interior blank runs at ``γ+1`` (drop all blanks
    when the gap is unbounded)."""
    if gamma is None:
        return tuple(item for item in sequence if item != BLANK)
    out: list[int] = []
    run = 0
    cap = gamma + 1
    for item in sequence:
        if item == BLANK:
            run += 1
            continue
        if out and run:
            out.extend([BLANK] * min(run, cap))
        run = 0
        out.append(item)
    return tuple(out)


def rewrite_for_pivot(
    vocabulary: Vocabulary,
    sequence: Seq,
    pivot: int,
    params: MiningParams,
    plan: RewritePlan = FULL_REWRITE,
) -> tuple[int, ...] | None:
    """Rewrite pipeline ``T → P_w(T)`` (stages selected by ``plan``).

    Returns ``None`` when the rewritten sequence cannot contribute any pivot
    sequence (no pivot occurrence left, or fewer than two non-blank items).
    """
    seq: Seq = sequence
    if plan.generalize:
        seq = w_generalize(vocabulary, seq, pivot)
    if plan.isolated:
        seq = blank_isolated_pivots(vocabulary, seq, pivot, params.gamma)
    if plan.unreachable:
        distances = pivot_distances(vocabulary, seq, pivot, params.gamma)
        seq = blank_unreachable(seq, distances, params.lam)
    result = (
        compress_blanks(seq, params.gamma) if plan.compress else tuple(seq)
    )
    if len(result) < 2:
        return None
    non_blank = sum(1 for item in result if item != BLANK)
    if non_blank < 2:
        return None
    if not any(_is_pivot_pos(vocabulary, item, pivot) for item in result):
        return None
    return result
