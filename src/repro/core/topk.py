"""Top-k generalized sequence mining (support-free entry point).

Choosing σ requires knowing the corpus; exploration users usually want
"the k most frequent patterns".  This module finds them with a
threshold-halving loop over the LASH driver:

1. Preprocess once (f-list + vocabulary are σ-independent; paper
   Sec. 3.4 notes they are reusable across parameter settings).
2. Start from the largest generalized item frequency — no pattern can be
   more frequent than its most frequent item (Lemma 1) — and halve σ
   until at least ``k`` patterns are frequent (or σ = 1).
3. Keep the ``k`` most frequent patterns; ties at the cut are broken by
   pattern text for determinism.

Because σ halves geometrically, total work is dominated by the last
mining run — the same run a correctly guessed σ would have cost, at most
a constant factor more.

>>> result = mine_top_k(database, hierarchy, k=10, gamma=1, lam=3)
>>> result.top(10)
"""

from __future__ import annotations

from repro.core.lash import Lash, MinerFactory
from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.errors import InvalidParameterError
from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase


def mine_top_k(
    database,
    hierarchy: Hierarchy | None = None,
    k: int = 10,
    gamma: int | None = 0,
    lam: int = 5,
    local_miner: str | MinerFactory = "psm",
) -> MiningResult:
    """Mine the ``k`` most frequent generalized sequences.

    Returns a :class:`~repro.core.result.MiningResult` whose ``params``
    carry the effective support threshold of the final mining run; fewer
    than ``k`` patterns are returned only when the database has fewer
    frequent-at-σ=1 patterns.  Ties at the ``k``-th frequency are broken
    by pattern text (ascending), so results are deterministic.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not isinstance(database, SequenceDatabase):
        database = SequenceDatabase(database)
    if hierarchy is None:
        hierarchy = Hierarchy.flat(
            {item for seq in database for item in seq}
        )

    # Preprocess once at σ=1; reuse the vocabulary for every probe.
    probe = Lash(MiningParams(1, gamma, lam), local_miner=local_miner)
    vocabulary, preprocess_job = probe.preprocess(database, hierarchy)
    max_frequency = max(
        (vocabulary.frequency(i) for i in range(len(vocabulary))),
        default=0,
    )
    if max_frequency == 0:
        return MiningResult(
            patterns={},
            vocabulary=vocabulary,
            params=MiningParams(1, gamma, lam),
            algorithm="top-k-lash[empty]",
            preprocess_job=preprocess_job,
        )

    sigma = max(1, max_frequency)
    result = None
    while True:
        lash = Lash(
            MiningParams(sigma, gamma, lam), local_miner=local_miner
        )
        result = lash.mine(database, vocabulary=vocabulary)
        if len(result.patterns) >= k or sigma == 1:
            break
        sigma = max(1, sigma // 2)

    ranked = sorted(
        result.patterns.items(),
        key=lambda kv: (-kv[1], vocabulary.decode_sequence(kv[0])),
    )
    kept = dict(ranked[:k])
    return MiningResult(
        patterns=kept,
        vocabulary=vocabulary,
        params=result.params,
        algorithm=f"top-k-{result.algorithm}",
        preprocess_job=preprocess_job,
        mining_job=result.mining_job,
        local_stats=result.local_stats,
    )


__all__ = ["mine_top_k"]
