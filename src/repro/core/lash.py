"""The LASH driver: preprocessing + partitioning/mining MapReduce jobs.

LASH runs two jobs (paper Sec. 3.4, Alg. 1):

1. **Preprocessing** — the generalized f-list job: map every input sequence
   to its ``G1(T)`` items, reduce by summing; the driver then derives the
   total order and the integer-coded vocabulary.
2. **Partitioning + mining** — the map side emits ``(w, P_w(T))`` for every
   frequent pivot ``w ∈ G1(T)`` using the rewrites of Sec. 4; the combiner
   aggregates duplicate rewritten sequences into ``(sequence, weight)``
   pairs; each reduce group is one partition, mined independently by the
   configured local miner (PSM by default).

Shuffle bytes are metered with the real varint/run-length wire format, so
``MAP_OUTPUT_BYTES`` comparisons against the baselines (Fig. 4(b)) are
meaningful.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.params import MiningParams
from repro.core.partition import merge_weighted, partition_emissions
from repro.core.psm import PivotSequenceMiner
from repro.core.rewrite import FULL_REWRITE, RewritePlan
from repro.core.result import MiningResult
from repro.errors import InvalidParameterError
from repro.hierarchy.flist import build_total_order, iter_generalized_items
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.miners.base import LocalMiner
from repro.miners.bfs import BfsMiner
from repro.miners.brute import BruteForceMiner
from repro.miners.dfs import DfsMiner
from repro.miners.spam import SpamMiner
from repro.sequence.database import SequenceDatabase
from repro.sequence.encoding import encode_uvarint, encoded_size

#: a miner factory receives (vocabulary, params) and returns a LocalMiner
MinerFactory = Callable[[Vocabulary, MiningParams], LocalMiner]


def resolve_miner(spec: str | MinerFactory) -> MinerFactory:
    """Translate a miner spec into a factory.

    Strings: ``"psm"`` (exact index), ``"psm-level"`` (level-union index),
    ``"psm-noindex"``, ``"bfs"``, ``"dfs"``, ``"spam"``, ``"brute"``.
    """
    if callable(spec):
        return spec
    registry: dict[str, MinerFactory] = {
        "psm": lambda v, p: PivotSequenceMiner(v, p, index_mode="exact"),
        "psm-level": lambda v, p: PivotSequenceMiner(v, p, index_mode="level"),
        "psm-noindex": lambda v, p: PivotSequenceMiner(v, p, index_mode="none"),
        "bfs": BfsMiner,
        "dfs": DfsMiner,
        "spam": SpamMiner,
        "brute": BruteForceMiner,
    }
    try:
        return registry[spec]
    except KeyError:
        raise InvalidParameterError(
            f"unknown local miner {spec!r}; choose from {sorted(registry)}"
        ) from None


class FlistJob(MapReduceJob):
    """Hierarchy-aware item counting (paper Sec. 3.3)."""

    name = "flist"
    has_combiner = True

    def __init__(self, hierarchy: Hierarchy) -> None:
        self.hierarchy = hierarchy

    def map(self, record: tuple[str, ...]):
        for item in iter_generalized_items(self.hierarchy, record):
            yield item, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        yield key, sum(values)


class PartitionMineJob(MapReduceJob):
    """Partitioning (map) and local mining (reduce) — paper Alg. 1."""

    name = "lash"
    has_combiner = True

    def __init__(
        self,
        vocabulary: Vocabulary,
        params: MiningParams,
        miner: LocalMiner,
        rewrite_plan: RewritePlan = FULL_REWRITE,
    ) -> None:
        self.vocabulary = vocabulary
        self.params = params
        self.miner = miner
        self.rewrite_plan = rewrite_plan

    def map(self, record: tuple[int, ...]):
        for pivot, rewritten in partition_emissions(
            self.vocabulary, record, self.params, self.rewrite_plan
        ):
            yield pivot, (rewritten, 1)

    def combine(self, key, values):
        for seq, weight in merge_weighted(values).items():
            yield key, (seq, weight)

    def reduce(self, key, values):
        partition = merge_weighted(values)
        yield from self.miner.mine_partition(partition, key).items()

    def kv_size(self, key, value) -> int:
        seq, weight = value
        return (
            len(encode_uvarint(key))
            + encoded_size(seq)
            + len(encode_uvarint(weight))
        )


class Lash:
    """The LASH algorithm (paper Sec. 3.4–5).

    Parameters
    ----------
    params:
        The (σ, γ, λ) mining parameters.
    local_miner:
        Local mining algorithm for the reduce phase; PSM with the exact
        right-expansion index by default.
    num_map_tasks / num_reduce_tasks:
        Engine parallelism (splits / partitions groups per reducer).
    failure_plan:
        Optional deterministic task-failure injection
        (:class:`~repro.mapreduce.failures.FailurePlan`); results are
        unaffected, wasted attempts are metered.
    rewrite_plan:
        Which Sec. 4 rewrite stages the map phase applies (ablation knob;
        the mined answer is identical under any plan).
    spill_dir:
        Shuffle through disk instead of memory (see
        :class:`~repro.mapreduce.engine.MapReduceEngine`); the mined
        answer is identical either way.

    Example
    -------
    >>> lash = Lash(MiningParams(sigma=2, gamma=1, lam=3))
    >>> result = lash.mine(database, hierarchy)
    >>> result.frequency("a", "B")
    3
    """

    def __init__(
        self,
        params: MiningParams,
        local_miner: str | MinerFactory = "psm",
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
        failure_plan=None,
        rewrite_plan: RewritePlan = FULL_REWRITE,
        spill_dir=None,
    ) -> None:
        self.params = params
        self.miner_factory = resolve_miner(local_miner)
        self.rewrite_plan = rewrite_plan
        self.engine = MapReduceEngine(
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            failure_plan=failure_plan,
            spill_dir=spill_dir,
        )
        self._miner_name = (
            local_miner if isinstance(local_miner, str) else "custom"
        )

    # ------------------------------------------------------------------

    def preprocess(
        self, database: SequenceDatabase, hierarchy: Hierarchy
    ) -> tuple[Vocabulary, object]:
        """Run the f-list job and build the vocabulary (reusable)."""
        job = FlistJob(hierarchy)
        result = self.engine.run(job, list(database))
        frequencies = dict(result.output)
        for item in hierarchy:
            frequencies.setdefault(item, 0)
        order = build_total_order(frequencies, hierarchy)
        vocabulary = Vocabulary(
            order, hierarchy, [frequencies[i] for i in order]
        )
        return vocabulary, result

    def mine(
        self,
        database: SequenceDatabase,
        hierarchy: Hierarchy | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> MiningResult:
        """Mine all frequent generalized sequences of the database.

        Either a ``hierarchy`` (preprocessing runs as part of the call) or a
        prebuilt ``vocabulary`` (preprocessing reused) must be supplied.
        Passing ``hierarchy=None`` with no vocabulary mines without
        hierarchies (flat mining, as in Fig. 4(e)).
        """
        preprocess_job = None
        if vocabulary is None:
            if hierarchy is None:
                hierarchy = Hierarchy.flat(
                    {item for seq in database for item in seq}
                )
            vocabulary, preprocess_job = self.preprocess(database, hierarchy)

        miner = self.miner_factory(vocabulary, self.params)
        job = PartitionMineJob(
            vocabulary, self.params, miner, self.rewrite_plan
        )
        encoded = [vocabulary.encode_sequence(seq) for seq in database]
        mining_job = self.engine.run(job, encoded)

        return MiningResult(
            patterns=dict(mining_job.output),
            vocabulary=vocabulary,
            params=self.params,
            algorithm=f"lash[{miner.name}]",
            preprocess_job=preprocess_job,
            mining_job=mining_job,
            local_stats=miner.stats,
        )


def mine(
    database: SequenceDatabase | Iterable,
    hierarchy: Hierarchy | None = None,
    sigma: int = 1,
    gamma: int | None = 0,
    lam: int = 5,
    local_miner: str | MinerFactory = "psm",
) -> MiningResult:
    """One-call convenience API.

    >>> result = mine(db, hierarchy, sigma=2, gamma=1, lam=3)
    """
    if not isinstance(database, SequenceDatabase):
        database = SequenceDatabase(database)
    lash = Lash(MiningParams(sigma, gamma, lam), local_miner=local_miner)
    return lash.mine(database, hierarchy)


def micro_mine(
    sequences: Iterable,
    hierarchy: Hierarchy,
    params: MiningParams,
    local_miner: str | MinerFactory = "psm",
) -> MiningResult:
    """Mine an ingest delta: just the touched sequences, at σ=1.

    The live-ingestion building block (``repro.serve.ingest``): pattern
    frequency is document support, which adds over disjoint corpus
    unions, so mining *only the new sequences* at σ=1 and folding the
    result into the live store is exactly equivalent to re-mining the
    whole corpus — σ must be 1 in the delta because a pattern rare in
    the batch can still push a borderline pattern of the full corpus
    over any higher threshold.  γ and λ are taken from ``params``
    unchanged (they constrain matches per sequence, so they distribute
    over any corpus split).  Engine parallelism is collapsed to one
    task: ingest batches are small and the mined answer is identical at
    any task count.
    """
    database = SequenceDatabase(list(sequences))
    delta_params = MiningParams(sigma=1, gamma=params.gamma, lam=params.lam)
    lash = Lash(
        delta_params,
        local_miner=local_miner,
        num_map_tasks=1,
        num_reduce_tasks=1,
    )
    return lash.mine(database, hierarchy)
