"""GSM problem parameters (paper Sec. 2).

* ``sigma`` — minimum support ``σ > 0``,
* ``gamma`` — maximum gap ``γ ≥ 0`` between consecutive matched items
  (``None`` = unconstrained),
* ``lam`` — maximum pattern length ``λ ≥ 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class MiningParams:
    """Validated (σ, γ, λ) triple."""

    sigma: int
    gamma: int | None
    lam: int

    def __post_init__(self) -> None:
        if not isinstance(self.sigma, int) or self.sigma < 1:
            raise InvalidParameterError(
                f"sigma must be a positive integer, got {self.sigma!r}"
            )
        if self.gamma is not None and (
            not isinstance(self.gamma, int) or self.gamma < 0
        ):
            raise InvalidParameterError(
                f"gamma must be a non-negative integer or None, got {self.gamma!r}"
            )
        if not isinstance(self.lam, int) or self.lam < 2:
            raise InvalidParameterError(
                f"lam must be an integer >= 2, got {self.lam!r}"
            )

    @property
    def unbounded_gap(self) -> bool:
        return self.gamma is None

    def describe(self) -> str:
        gamma = "inf" if self.gamma is None else self.gamma
        return f"(sigma={self.sigma}, gamma={gamma}, lambda={self.lam})"
