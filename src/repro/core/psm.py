"""PSM — the pivot sequence miner (paper Sec. 5.2, Alg. 2).

PSM enumerates *only* pivot sequences: it starts from the pivot item ``w``
and grows sequences by left- and right-expansions.  Every frequent pivot
sequence ``S`` has the unique decomposition ``S = S_l · w · S_r`` with
``w ∉ S_r``; PSM reaches it by left-expanding to ``S_l · w`` and then
right-expanding to append ``S_r``:

* right-expansions never use the pivot item (keeps the decomposition
  unique),
* sequences produced by a right-expansion are never left-expanded
  (prevents duplicates).

**Projected databases.**  For the current sequence ``S`` each supporting
partition sequence carries the set of ``(start, end)`` position pairs of
embeddings of ``S``.  A right-expansion extends ``end`` within the gap
window; a left-expansion extends ``start``; hierarchy generalizations of the
window items are candidate expansion items (filtered to ``≤ pivot`` —
irrelevant items cannot occur in pivot sequences).

**Right-expansion index** (Sec. 5.2 "Indexing right-expansions").  When
``S·x`` was infrequent, ``y·S·x`` must be infrequent too (support
monotonicity, Lemma 1), so when right-expanding ``y·S`` PSM restricts the
expansion items to ``R_S``, the frequent right-expansions recorded for
``S``.  Skipped items are neither counted nor support-evaluated.  Two index
layouts are provided:

* ``"exact"`` — ``R_S`` keyed by the full suffix sequence ``S[1:]``,
* ``"level"`` — the paper's memory-saving variant that unions the sets per
  right-offset from the (last) pivot,
* ``"none"`` — disable indexing (the plain "PSM" bars of Fig. 4(c,d)).
"""

from __future__ import annotations

from typing import Iterable

from repro.constants import BLANK
from repro.core.params import MiningParams
from repro.hierarchy.vocabulary import Vocabulary
from repro.miners.base import ExplorationStats, LocalMiner, normalize_partition

#: projected-database entry: (sequence, weight, embedding (start,end) pairs)
_Entry = tuple[tuple[int, ...], int, frozenset[tuple[int, int]]]

_INDEX_MODES = ("exact", "level", "none")


class PivotSequenceMiner(LocalMiner):
    """Hierarchy-aware pivot sequence miner with optional expansion index."""

    name = "psm"

    def __init__(
        self,
        vocabulary: Vocabulary,
        params: MiningParams,
        index_mode: str = "exact",
    ) -> None:
        super().__init__(vocabulary, params)
        if index_mode not in _INDEX_MODES:
            raise ValueError(
                f"index_mode must be one of {_INDEX_MODES}, got {index_mode!r}"
            )
        self.index_mode = index_mode

    # ------------------------------------------------------------------

    def mine_partition(
        self, partition, pivot: int
    ) -> dict[tuple[int, ...], int]:
        entries: list[_Entry] = []
        total_weight = 0
        for seq, weight in normalize_partition(partition):
            pairs = frozenset(
                (i, i)
                for i, item in enumerate(seq)
                if self._matches_pivot(item, pivot)
            )
            if pairs:
                entries.append((seq, weight, pairs))
                total_weight += weight
        output: dict[tuple[int, ...], int] = {}
        if total_weight < self.params.sigma:
            return output
        self._pivot = pivot
        self._output = output
        self._exact_index: dict[tuple[int, ...], frozenset[int]] = {}
        # level mode: per expansion-series root, one union set per offset
        self._series_index: dict[tuple[int, ...], dict[int, set[int]]] = {}
        start = (pivot,)
        self._expand(start, entries, right=True, root=start)
        self._expand(start, entries, right=False, root=start)
        return output

    # ------------------------------------------------------------------
    # expansion machinery
    # ------------------------------------------------------------------

    def _matches_pivot(self, item: int, pivot: int) -> bool:
        if item == pivot:
            return True
        return item > pivot and self.vocabulary.generalizes_to(item, pivot)

    def _expand(
        self,
        seq: tuple[int, ...],
        entries: list[_Entry],
        right: bool,
        root: tuple[int, ...],
    ) -> None:
        """Grow ``seq``; ``root`` is the left-expanded sequence that started
        the current series of right-expansions (``seq`` itself while
        left-expanding)."""
        params = self.params
        if len(seq) == params.lam:
            return
        allowed = self._allowed_items(seq, root) if right else None
        if allowed is not None and not allowed:
            # R_S = ∅: no right-expansion can be frequent; skip the scan
            # entirely (paper: "we do not scan the database").
            self._record_index(seq, root, frozenset())
            return
        candidates = self._scan(seq, entries, right, allowed)
        if right:
            candidates.pop(self._pivot, None)
        self.stats.candidates += len(candidates)
        frequent = {
            item: payload
            for item, payload in candidates.items()
            if payload[0] >= params.sigma
        }
        if right:
            self._record_index(seq, root, frozenset(frequent))
        for item in sorted(frequent):
            weight, sub_entries = frequent[item]
            new_seq = seq + (item,) if right else (item,) + seq
            self._output[new_seq] = weight
            self.stats.outputs += 1
            # a left-expansion starts a fresh series rooted at the new
            # sequence; right-expansions stay in the current series
            new_root = root if right else new_seq
            self._expand(new_seq, sub_entries, right=True, root=new_root)
            if not right:
                self._expand(new_seq, sub_entries, right=False, root=new_seq)

    def _scan(
        self,
        seq: tuple[int, ...],
        entries: list[_Entry],
        right: bool,
        allowed: frozenset[int] | set[int] | None,
    ) -> dict[int, list]:
        """Compute ``W^dir_S``: expansion item → [weight, projected entries]."""
        gamma = self.params.gamma
        vocabulary = self.vocabulary
        pivot = self._pivot
        agg: dict[int, list] = {}
        for t, weight, pairs in entries:
            n = len(t)
            found: dict[int, set[tuple[int, int]]] = {}
            for start, end in pairs:
                if right:
                    lo = end + 1
                    hi = n if gamma is None else min(n, end + 2 + gamma)
                else:
                    hi = start
                    lo = 0 if gamma is None else max(0, start - 1 - gamma)
                for k in range(lo, hi):
                    item = t[k]
                    if item == BLANK:
                        continue
                    new_pair = (start, k) if right else (k, end)
                    for anc in vocabulary.ancestors_or_self(item):
                        if anc > pivot:
                            continue
                        if allowed is not None and anc not in allowed:
                            continue
                        found.setdefault(anc, set()).add(new_pair)
            for item, new_pairs in found.items():
                payload = agg.get(item)
                if payload is None:
                    payload = agg[item] = [0, []]
                payload[0] += weight
                payload[1].append((t, weight, frozenset(new_pairs)))
        return agg

    # ------------------------------------------------------------------
    # right-expansion index
    # ------------------------------------------------------------------

    def _allowed_items(
        self, seq: tuple[int, ...], root: tuple[int, ...]
    ) -> frozenset[int] | set[int] | None:
        """Restriction set for right-expanding ``seq`` (``None`` = no info).

        If ``y·S·x`` is frequent then ``S·x`` is frequent (Lemma 1), so the
        items recorded while right-expanding the one-shorter suffix bound the
        useful expansions here.  ``exact`` keys by the full suffix ``seq[1:]``;
        ``level`` consults the union index of the suffix *series* ``root[1:]``
        at the same right-offset.
        """
        if self.index_mode == "none" or len(seq) < 2:
            return None
        if self.index_mode == "exact":
            return self._exact_index.get(seq[1:])
        parent_root = root[1:]
        if not parent_root:
            return None
        offset = len(seq) - len(root) + 1  # position of the new item
        parent_levels = self._series_index.get(parent_root)
        if parent_levels is None:
            return None
        return parent_levels.get(offset)

    def _record_index(
        self,
        seq: tuple[int, ...],
        root: tuple[int, ...],
        frequent: frozenset[int],
    ) -> None:
        if self.index_mode == "exact":
            self._exact_index[seq] = frequent
        elif self.index_mode == "level":
            offset = len(seq) - len(root) + 1
            self._series_index.setdefault(root, {}).setdefault(
                offset, set()
            ).update(frequent)


def mine_partitions(
    miner: LocalMiner,
    partitions: dict[int, dict[tuple[int, ...], int]],
) -> dict[tuple[int, ...], int]:
    """Mine every partition and union the per-pivot outputs (driver path)."""
    output: dict[tuple[int, ...], int] = {}
    for pivot in sorted(partitions):
        output.update(miner.mine_partition(partitions[pivot], pivot))
    return output


__all__ = ["PivotSequenceMiner", "ExplorationStats", "mine_partitions"]
