"""Partition construction (paper Sec. 3.4 / 4.4).

LASH creates one partition ``P_w`` per frequent item ``w``; an input
sequence ``T`` contributes its rewrite ``P_w(T)`` to every partition whose
pivot appears in ``G1(T)`` (items of ``T`` plus their generalizations).
Duplicate rewritten sequences are aggregated into ``(sequence, weight)``
pairs — the job of Hadoop's combiner in the distributed setting.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.params import MiningParams
from repro.core.rewrite import FULL_REWRITE, RewritePlan, rewrite_for_pivot
from repro.hierarchy.vocabulary import Vocabulary
from repro.sequence.generate import generalized_items

Seq = Sequence[int]

#: a partition: aggregated rewritten sequences with multiplicities
Partition = dict[tuple[int, ...], int]


def frequent_pivots(
    vocabulary: Vocabulary, sequence: Seq, sigma: int
) -> list[int]:
    """Frequent items of ``G1(T)`` — the pivots ``T`` contributes to.

    Sorted ascending for deterministic emission order.
    """
    return sorted(
        w
        for w in generalized_items(vocabulary, sequence)
        if vocabulary.frequency(w) >= sigma
    )


def partition_emissions(
    vocabulary: Vocabulary,
    sequence: Seq,
    params: MiningParams,
    plan: RewritePlan = FULL_REWRITE,
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield ``(pivot, P_w(T))`` pairs for one input sequence (map phase)."""
    for pivot in frequent_pivots(vocabulary, sequence, params.sigma):
        rewritten = rewrite_for_pivot(
            vocabulary, sequence, pivot, params, plan
        )
        if rewritten is not None:
            yield pivot, rewritten


def aggregate(sequences: Iterable[tuple[int, ...]]) -> Partition:
    """Aggregate duplicate sequences into weights (combine/reduce phases)."""
    out: Partition = {}
    for seq in sequences:
        out[seq] = out.get(seq, 0) + 1
    return out


def merge_weighted(
    entries: Iterable[tuple[tuple[int, ...], int]]
) -> Partition:
    """Merge pre-aggregated ``(sequence, weight)`` pairs."""
    out: Partition = {}
    for seq, weight in entries:
        out[seq] = out.get(seq, 0) + weight
    return out


def build_partitions(
    vocabulary: Vocabulary,
    database: Iterable[Seq],
    params: MiningParams,
    plan: RewritePlan = FULL_REWRITE,
) -> dict[int, Partition]:
    """Materialize every partition directly (driver-side reference path).

    The distributed equivalent is the map/combine side of
    :class:`repro.core.lash.PartitionMineJob`; this function exists for
    tests, examples and the sequential-miner experiments (Fig. 4(c,d)).
    """
    partitions: dict[int, Partition] = {}
    for sequence in database:
        for pivot, rewritten in partition_emissions(
            vocabulary, sequence, params, plan
        ):
            bucket = partitions.setdefault(pivot, {})
            bucket[rewritten] = bucket.get(rewritten, 0) + 1
    return partitions
