"""Partition statistics: size, skew and replication measurements.

Sec. 4 motivates the rewrites with three costs of naïve partitioning:
*skew* ("partitions of highly frequent items will contain many more
sequences"), *redundant computation*, and *communication cost* ("each
input sequence is replicated |G1(T)| times").  This module measures all
three on materialized partitions so the ablation benchmarks can show how
each rewrite stage moves them.

Skew matters because the mining phase's makespan is governed by the
largest partition a single reducer must process; we report the classic
imbalance coefficient (largest / mean) and the share of the total volume
held by the largest partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: a partition: rewritten sequence → multiplicity
Partition = Mapping[tuple[int, ...], int]


@dataclass(frozen=True)
class PartitionStats:
    """Aggregate measurements over one set of partitions."""

    num_partitions: int
    #: total number of (weighted) sequences across partitions — the
    #: replication factor numerator (each input lands in |G1(T)| partitions)
    total_sequences: int
    #: distinct (aggregated) sequences actually materialized
    distinct_sequences: int
    #: total items incl. blanks, weighted — proportional to shuffle volume
    total_items: int
    #: items in the largest partition (weighted)
    max_partition_items: int
    #: largest / mean partition item count (1.0 = perfectly balanced)
    imbalance: float
    #: fraction of all items held by the largest partition
    max_share: float

    def row(self) -> dict[str, object]:
        return {
            "Partitions": self.num_partitions,
            "Sequences": self.total_sequences,
            "Distinct": self.distinct_sequences,
            "Items": self.total_items,
            "Imbalance": round(self.imbalance, 2),
            "Max share (%)": round(100 * self.max_share, 1),
        }


def partition_statistics(
    partitions: Mapping[int, Partition],
) -> PartitionStats:
    """Measure a ``{pivot: partition}`` mapping (see
    :func:`repro.core.partition.build_partitions`)."""
    sizes: list[int] = []
    total_sequences = 0
    distinct_sequences = 0
    for partition in partitions.values():
        items = 0
        for seq, weight in partition.items():
            items += len(seq) * weight
            total_sequences += weight
            distinct_sequences += 1
        sizes.append(items)
    total_items = sum(sizes)
    largest = max(sizes, default=0)
    mean = total_items / len(sizes) if sizes else 0.0
    return PartitionStats(
        num_partitions=len(partitions),
        total_sequences=total_sequences,
        distinct_sequences=distinct_sequences,
        total_items=total_items,
        max_partition_items=largest,
        imbalance=(largest / mean) if mean else 0.0,
        max_share=(largest / total_items) if total_items else 0.0,
    )


def replication_factor(
    partitions: Mapping[int, Partition], num_input_sequences: int
) -> float:
    """Average number of partitions each input sequence was copied into."""
    if num_input_sequences <= 0:
        return 0.0
    stats = partition_statistics(partitions)
    return stats.total_sequences / num_input_sequences
