"""Mining results: patterns, frequencies, and execution measurements."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.core.params import MiningParams
from repro.hierarchy.vocabulary import Vocabulary
from repro.mapreduce.cluster import ClusterSpec, simulate_cluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import JobResult
from repro.mapreduce.metrics import JobMetrics, PhaseTimes
from repro.miners.base import ExplorationStats


@dataclass
class MiningResult:
    """Output of one GSM run (LASH or a baseline).

    ``patterns`` maps integer-coded sequences to frequencies; use
    :meth:`decoded` / :meth:`top` for human-readable views.  The attached
    :class:`JobResult` objects carry counters and per-task timings of the
    underlying MapReduce jobs.
    """

    patterns: dict[tuple[int, ...], int]
    vocabulary: Vocabulary
    params: MiningParams
    algorithm: str = "lash"
    preprocess_job: JobResult | None = None
    mining_job: JobResult | None = None
    local_stats: ExplorationStats = field(default_factory=ExplorationStats)

    # ------------------------------------------------------------------
    # pattern access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.patterns)

    def frequency(self, *names: str) -> int:
        """Frequency of a pattern given item names; 0 when absent."""
        key = tuple(self.vocabulary.id(n) for n in names)
        return self.patterns.get(key, 0)

    def decoded(self) -> dict[tuple[str, ...], int]:
        """``{("a", "B"): 3, ...}`` rendering of all patterns."""
        return {
            self.vocabulary.decode_sequence(seq): freq
            for seq, freq in self.patterns.items()
        }

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most frequent patterns, rendered, ties broken by text."""
        rendered = sorted(
            (self.vocabulary.render(seq), freq)
            for seq, freq in self.patterns.items()
        )
        rendered.sort(key=lambda pair: -pair[1])
        return rendered[:n]

    def to_file(self, path: str | Path) -> None:
        """Write ``pattern<TAB>frequency`` lines, most frequent first."""
        with open(path, "w", encoding="utf-8") as f:
            for pattern, freq in self.top(len(self.patterns)):
                f.write(f"{pattern}\t{freq}\n")

    def to_store(
        self,
        path: str | Path,
        shards: int | None = None,
        checksums: bool = True,
    ) -> None:
        """Export to a binary :class:`~repro.serve.store.PatternStore`
        for query serving (``lash serve``).  ``shards=N`` writes a
        sharded store directory instead of a single file — same
        answers, postings split across N mmaps.  The mined patterns
        stream straight into the store writers, so the export never
        builds a second in-memory copy of the result."""
        if shards is None:
            from repro.serve.writer import write_store

            write_store(path, self.patterns, self.vocabulary, checksums)
        else:
            from repro.serve.writer import write_sharded_store

            write_sharded_store(
                path, self.patterns, self.vocabulary, shards, checksums
            )

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    @property
    def counters(self) -> Counters:
        """Counters of the main (partitioning+mining) job."""
        if self.mining_job is None:
            return Counters()
        return self.mining_job.counters

    @property
    def metrics(self) -> JobMetrics:
        if self.mining_job is None:
            return JobMetrics()
        return self.mining_job.metrics

    def phase_times(self) -> PhaseTimes:
        """Serial (single-worker) phase times of the mining job."""
        return self.metrics.serial_phase_times()

    def cluster_times(self, cluster: ClusterSpec) -> PhaseTimes:
        """Phase makespans of the mining job on a simulated cluster."""
        return simulate_cluster(self.metrics, cluster)

    def total_metrics(self) -> JobMetrics:
        """Merged task profile of preprocessing + mining."""
        merged = JobMetrics(name=self.algorithm)
        if self.preprocess_job is not None:
            merged.merge(self.preprocess_job.metrics)
        if self.mining_job is not None:
            merged.merge(self.mining_job.metrics)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MiningResult(algorithm={self.algorithm!r}, "
            f"patterns={len(self.patterns)}, params={self.params.describe()})"
        )
