"""Pattern exploration: indexing and querying mined generalized sequences.

The paper motivates GSM with exploration applications — the Google n-gram
viewer and Netspeak for generalized n-grams, typed relational patterns for
information extraction (Sec. 1).  This package is that downstream consumer:
it indexes a mining result and answers Netspeak-style wildcard queries that
are aware of the item hierarchy.

>>> from repro.query import PatternIndex
>>> index = PatternIndex.from_result(result)
>>> index.search("the ? NOUN")        # ? = exactly one item
>>> index.search("^NOUN lives in *")  # ^x = x or any specialization
"""

from repro.query.tokens import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    Q,
    QueryToken,
    SpanToken,
    UnderToken,
    is_negation_only,
    normalize_query,
    parse_query,
)
from repro.query.base import PatternSearchBase
from repro.query.build import (
    code_patterns,
    merge_pattern_sets,
    merge_vocabularies,
)
from repro.query.index import PatternIndex, QueryMatch

__all__ = [
    "PatternSearchBase",
    "code_patterns",
    "merge_pattern_sets",
    "merge_vocabularies",
    "AnyToken",
    "FloorToken",
    "GapToken",
    "ItemToken",
    "NotToken",
    "OneOfToken",
    "PlusToken",
    "Q",
    "QueryToken",
    "SpanToken",
    "UnderToken",
    "is_negation_only",
    "normalize_query",
    "parse_query",
    "PatternIndex",
    "QueryMatch",
]
