"""Query tokens and the wildcard query language.

A query is a whitespace-separated list of tokens, one per matched region:

============  =====================================================
syntax        meaning
============  =====================================================
``name``      exactly this item
``^name``     this item or any of its hierarchy descendants
``?``         exactly one item, any item
``+``         one or more items
``*``         zero or more items
``*{m,n}``    between ``m`` and ``n`` arbitrary items (``*{m,}``:
              at least ``m``, unbounded above)
``(a|b|^C)``  one item drawn from any listed alternative: an exact
              item (``a``, ``b``) or a hierarchy subtree (``^C``)
``!token``    exactly one item that does *not* match ``token``
              (``token``: ``name``, ``^name`` or a disjunction)
``token@N``   the single item bound by ``token`` must have corpus
              frequency ≥ N (``token``: ``name``, ``^name``, ``?``,
              a disjunction or a negation)
============  =====================================================

``?``/``*``/``+`` follow Netspeak's conventions [2]; ``^`` adds the
hierarchy dimension that plain n-gram indexes lack.  ``(a|b)`` is a
single region, not a span: exactly one item is consumed, so floors
compose — ``(a|^B)@10`` matches one item that is ``a`` or under ``B``
*and* occurs at least 10 times in the corpus.  ``*@N``/``+@N`` are
rejected: a gap binds no single item to bound, and for the same reason
negation applies only to item-binding tokens — ``!?`` (matches
nothing), ``!*`` and ``!!a`` are rejected.  A floor *over* a negation
is allowed: ``!a@3`` matches one item that is not ``a`` and occurs at
least 3 times, which also makes the complement finite enough to prune
on (the floor selects the candidate set).  Negation consumes exactly one
item: ``a !b c`` requires some item between ``a`` and ``c``, it does
not merely forbid ``b`` there.  Items whose *name* is literally ``?``,
``*``, ``+``, starts with ``^``, ``(``, ``!`` or ``*{``, or ends with
``@digits`` cannot be written in the string syntax — build those
queries from :class:`Q` constructors instead.

>>> parse_query("the ^ADJ ?")
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
>>> (Q.item("the"), Q.under("ADJ"), Q.any())
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
>>> parse_query("(a|^B)@3 ?")
(FloorToken(OneOfToken(ItemToken('a'), UnderToken('B')), 3), AnyToken())
>>> (Q.floor(Q.oneof("a", Q.under("B")), 3), Q.any())
(FloorToken(OneOfToken(ItemToken('a'), UnderToken('B')), 3), AnyToken())
>>> parse_query("!^B *{1,3} a")
(NotToken(UnderToken('B')), GapToken(1, 3), ItemToken('a'))
>>> (Q.not_(Q.under("B")), Q.gap(1, 3), Q.item("a"))
(NotToken(UnderToken('B')), GapToken(1, 3), ItemToken('a'))
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: the ``*{m,n}`` / ``*{m,}`` bounded-gap spelling
_GAP_SYNTAX = re.compile(r"\*\{(\d+),(\d*)\}\Z")


class QueryToken:
    """Base class for the nine token kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class ItemToken(QueryToken):
    """Matches exactly one occurrence of exactly this item."""

    name: str

    def __repr__(self) -> str:
        return f"ItemToken({self.name!r})"


@dataclass(frozen=True)
class UnderToken(QueryToken):
    """Matches one occurrence of the item or any hierarchy descendant."""

    name: str

    def __repr__(self) -> str:
        return f"UnderToken({self.name!r})"


@dataclass(frozen=True)
class AnyToken(QueryToken):
    """Matches exactly one item, whatever it is (``?``)."""

    def __repr__(self) -> str:
        return "AnyToken()"


@dataclass(frozen=True)
class PlusToken(QueryToken):
    """Matches one or more items (``+``)."""

    def __repr__(self) -> str:
        return "PlusToken()"


@dataclass(frozen=True)
class SpanToken(QueryToken):
    """Matches zero or more items (``*``)."""

    def __repr__(self) -> str:
        return "SpanToken()"


@dataclass(frozen=True)
class GapToken(QueryToken):
    """Matches between ``min_items`` and ``max_items`` arbitrary items
    (``*{m,n}``); ``max_items=None`` means unbounded (``*{m,}``).

    Generalizes the classic gaps: ``*`` is ``{0,}``, ``+`` is ``{1,}``
    and ``?`` is ``{1,1}`` — :func:`normalize_query` rewrites those
    three spellings to the classic tokens, so a :class:`GapToken`
    surviving normalization always carries a bound the short forms
    cannot express.
    """

    min_items: int
    max_items: int | None

    def __post_init__(self) -> None:
        if not isinstance(self.min_items, int) or isinstance(
            self.min_items, bool
        ):
            raise InvalidParameterError(
                f"gap lower bound must be an integer, got {self.min_items!r}"
            )
        if self.max_items is not None and (
            not isinstance(self.max_items, int)
            or isinstance(self.max_items, bool)
        ):
            raise InvalidParameterError(
                f"gap upper bound must be an integer or None, "
                f"got {self.max_items!r}"
            )
        if self.min_items < 0:
            raise InvalidParameterError(
                f"gap lower bound must be >= 0, got {self.min_items}"
            )
        if self.max_items is not None and self.max_items < self.min_items:
            raise InvalidParameterError(
                f"gap upper bound {self.max_items} below lower bound "
                f"{self.min_items}"
            )

    def __repr__(self) -> str:
        return f"GapToken({self.min_items}, {self.max_items})"


@dataclass(frozen=True)
class NotToken(QueryToken):
    """Matches exactly one item that does *not* match ``inner``
    (``!name``, ``!^Cat``, ``!(a|b|^C)``).

    ``inner`` must be an item-binding token other than ``?`` —
    :class:`ItemToken`, :class:`UnderToken` or :class:`OneOfToken`.
    Gaps bind no item to negate, ``!?`` matches nothing, and nested
    negations / floors are rejected rather than silently simplified.
    """

    inner: QueryToken

    def __post_init__(self) -> None:
        if not isinstance(self.inner, (ItemToken, UnderToken, OneOfToken)):
            raise InvalidParameterError(
                f"negation requires an item, '^name' or disjunction "
                f"token, got {self.inner!r}"
            )

    def __repr__(self) -> str:
        return f"NotToken({self.inner!r})"


@dataclass(frozen=True)
class OneOfToken(QueryToken):
    """Matches one item drawn from any of the alternatives (``(a|b|^C)``).

    Each choice is an :class:`ItemToken` (exact item) or an
    :class:`UnderToken` (item or hierarchy descendant).  Choices are
    stored deduplicated and canonically ordered, so ``(a|b)`` and
    ``(b|a)`` compare (and cache) equal.
    """

    choices: tuple[QueryToken, ...]

    def __post_init__(self) -> None:
        for choice in self.choices:
            if not isinstance(choice, (ItemToken, UnderToken)):
                raise InvalidParameterError(
                    f"disjunction choice {choice!r} must be an item or "
                    "'^name' token"
                )
        if not self.choices:
            raise InvalidParameterError("disjunction needs at least one choice")
        canonical = tuple(
            sorted(
                set(self.choices),
                key=lambda c: (isinstance(c, UnderToken), c.name),
            )
        )
        object.__setattr__(self, "choices", canonical)

    def __repr__(self) -> str:
        inner = ", ".join(repr(choice) for choice in self.choices)
        return f"OneOfToken({inner})"


@dataclass(frozen=True)
class FloorToken(QueryToken):
    """Matches what ``inner`` matches, with the bound item's corpus
    frequency required to be ≥ ``floor`` (``token@N``).

    ``inner`` must bind exactly one item — ``name``, ``^name``, ``?``,
    a disjunction or a negation (``!a@3``: one item that is not ``a``
    and occurs ≥ 3 times); gaps (``*``/``+``) and nested floors are
    rejected.
    """

    inner: QueryToken
    floor: int

    def __post_init__(self) -> None:
        if not isinstance(
            self.inner,
            (ItemToken, UnderToken, AnyToken, OneOfToken, NotToken),
        ):
            raise InvalidParameterError(
                f"frequency floor requires a single-item token, "
                f"got {self.inner!r}"
            )
        if not isinstance(self.floor, int) or isinstance(self.floor, bool):
            raise InvalidParameterError(
                f"frequency floor must be an integer, got {self.floor!r}"
            )
        if self.floor < 0:
            raise InvalidParameterError(
                f"frequency floor must be >= 0, got {self.floor}"
            )

    def __repr__(self) -> str:
        return f"FloorToken({self.inner!r}, {self.floor})"


class Q:
    """Programmatic token constructors (escape hatch for odd item names)."""

    @staticmethod
    def item(name: str) -> ItemToken:
        return ItemToken(name)

    @staticmethod
    def under(name: str) -> UnderToken:
        return UnderToken(name)

    @staticmethod
    def any() -> AnyToken:
        return AnyToken()

    @staticmethod
    def plus() -> PlusToken:
        return PlusToken()

    @staticmethod
    def span() -> SpanToken:
        return SpanToken()

    @staticmethod
    def gap(min_items: int, max_items: int | None = None) -> GapToken:
        """Bounded gap: ``Q.gap(1, 3)`` is ``*{1,3}``; ``Q.gap(2)`` is
        ``*{2,}`` (no upper bound)."""
        return GapToken(min_items, max_items)

    @staticmethod
    def not_(inner: str | QueryToken) -> NotToken:
        """Negation over an item name (exact) or an item-binding token."""
        if isinstance(inner, str):
            inner = ItemToken(inner)
        return NotToken(inner)

    @staticmethod
    def oneof(*choices: str | QueryToken) -> OneOfToken:
        """Disjunction over item names (strings match exactly) and/or
        :class:`ItemToken`/:class:`UnderToken` instances."""
        return OneOfToken(
            tuple(
                ItemToken(c) if isinstance(c, str) else c for c in choices
            )
        )

    @staticmethod
    def floor(inner: str | QueryToken, floor: int) -> FloorToken:
        """Frequency floor over an item name (exact) or single-item token."""
        if isinstance(inner, str):
            inner = ItemToken(inner)
        return FloorToken(inner, floor)


def _parse_choice(raw: str, text: str) -> QueryToken:
    """One ``|``-separated alternative inside ``(...)``."""
    if not raw:
        raise InvalidParameterError(
            f"empty alternative in disjunction in query {text!r}"
        )
    if raw in ("?", "*", "+") or "(" in raw or ")" in raw:
        raise InvalidParameterError(
            f"disjunction alternative {raw!r} in query {text!r} must be "
            "'name' or '^name'"
        )
    if raw.startswith("!"):
        raise InvalidParameterError(
            f"negation is not allowed inside a disjunction in query "
            f"{text!r}: negate the whole disjunction instead (!(a|b))"
        )
    if raw.startswith("^"):
        name = raw[1:]
        if not name:
            raise InvalidParameterError(
                f"bare '^' in disjunction in query {text!r}: expected '^name'"
            )
        return UnderToken(name)
    return ItemToken(raw)


def _parse_token(raw: str, text: str) -> QueryToken:
    """One whitespace-separated token of the string syntax."""
    if "@" in raw:
        head, _, tail = raw.rpartition("@")
        # isascii() too: isdigit() alone admits characters like '³'
        # that int() rejects, which would escape as a bare ValueError
        if tail.isdigit() and tail.isascii():
            if not head:
                raise InvalidParameterError(
                    f"bare frequency floor {raw!r} in query {text!r}: "
                    "expected 'token@N'"
                )
            return FloorToken(_parse_token(head, text), int(tail))
    if raw == "?":
        return AnyToken()
    if raw == "*":
        return SpanToken()
    if raw == "+":
        return PlusToken()
    if raw.startswith("*{"):
        bounds = _GAP_SYNTAX.match(raw)
        if bounds is None:
            raise InvalidParameterError(
                f"malformed gap {raw!r} in query {text!r}: "
                "expected '*{m,n}' or '*{m,}'"
            )
        lower, upper = bounds.groups()
        return GapToken(int(lower), int(upper) if upper else None)
    if raw.startswith("!"):
        inner = raw[1:]
        if not inner:
            raise InvalidParameterError(
                f"bare '!' in query {text!r}: expected '!token'"
            )
        return NotToken(_parse_token(inner, text))
    if raw.startswith("("):
        if not raw.endswith(")") or len(raw) < 2:
            raise InvalidParameterError(
                f"malformed disjunction {raw!r} in query {text!r}: "
                "expected '(a|b|^C)'"
            )
        return OneOfToken(
            tuple(
                _parse_choice(part, text) for part in raw[1:-1].split("|")
            )
        )
    if raw.startswith("^"):
        name = raw[1:]
        if not name:
            raise InvalidParameterError(
                f"bare '^' in query {text!r}: expected '^name'"
            )
        return UnderToken(name)
    return ItemToken(raw)


def parse_query(text: str) -> tuple[QueryToken, ...]:
    """Parse the string syntax into a token tuple.

    Raises :class:`~repro.errors.InvalidParameterError` for an empty
    query or malformed tokens (a bare ``^``, an unbalanced or empty
    disjunction, a floor on a gap token, a bare ``@N``).
    """
    tokens = tuple(_parse_token(raw, text) for raw in text.split())
    if not tokens:
        raise InvalidParameterError("empty query")
    return tokens


def _canonical_token(token: QueryToken) -> QueryToken:
    """Drop no-op decorations so syntactic variants normalize equal.

    * A ``@0`` frequency floor admits every item (corpus frequencies
      are ≥ 0), so ``a@0`` *is* ``a``.
    * A disjunction choice ``x`` is implied by a ``^x`` choice in the
      same token (a subtree contains its root), so ``(a|^a|b)`` is
      ``(^a|b)``.  Only the name-level implication is decidable here:
      normalization is hierarchy-free by design, because the service
      keys its result cache on the normalized tuple *before* any
      vocabulary is in sight.
    * A single-choice disjunction is its choice: ``(a)`` is ``a``.
    * A gap expressible in the classic spellings becomes one:
      ``*{0,}`` is ``*``, ``*{1,}`` is ``+``, ``*{1,1}`` is ``?``.

    Rewrites recurse through ``!…`` and ``…@N`` wrappers, so e.g.
    ``!(a|^a)`` normalizes to ``!^a``.
    """
    if isinstance(token, FloorToken):
        inner = _canonical_token(token.inner)
        if token.floor == 0:
            return inner
        return FloorToken(inner, token.floor) if inner != token.inner else token
    if isinstance(token, NotToken):
        inner = _canonical_token(token.inner)
        return NotToken(inner) if inner != token.inner else token
    if isinstance(token, OneOfToken):
        subtrees = {
            c.name for c in token.choices if isinstance(c, UnderToken)
        }
        choices = tuple(
            c
            for c in token.choices
            if not (isinstance(c, ItemToken) and c.name in subtrees)
        )
        if len(choices) == 1:
            return choices[0]
        return OneOfToken(choices) if choices != token.choices else token
    if isinstance(token, GapToken):
        bounds = (token.min_items, token.max_items)
        if bounds == (0, None):
            return SpanToken()
        if bounds == (1, None):
            return PlusToken()
        if bounds == (1, 1):
            return AnyToken()
        return token
    return token


#: gap-family bounds: how many arbitrary items each token kind consumes.
#: ``AnyToken`` is in the family (it consumes one arbitrary item) but a
#: run of *only* anys is left alone — ``a ? ?`` keeps its per-slot
#: alignment for :meth:`~repro.query.base.PatternSearchBase.slot_fillers`.
def _gap_bounds(token: QueryToken) -> tuple[int, int | None] | None:
    if isinstance(token, SpanToken):
        return (0, None)
    if isinstance(token, PlusToken):
        return (1, None)
    if isinstance(token, GapToken):
        return (token.min_items, token.max_items)
    if isinstance(token, AnyToken):
        return (1, 1)
    return None


def _collapse_gap_runs(
    tokens: tuple[QueryToken, ...],
) -> tuple[QueryToken, ...]:
    """Collapse adjacent gap-family tokens into one equivalent gap.

    A maximal run of ``*``/``+``/``*{m,n}``/``?`` tokens matches any
    ``Σmin … Σmax`` arbitrary items, so it *is* the single gap with the
    summed bounds: ``* *`` is ``*``, ``+ *`` is ``+``, ``? *`` is ``+``
    and ``*{0,2} *{1,3}`` is ``*{1,5}``.  Runs consisting solely of
    ``?`` tokens are kept verbatim (they carry per-slot alignment); a
    run collapses only when it contains a true gap token.
    """
    out: list[QueryToken] = []
    run: list[tuple[int, int | None]] = []
    run_has_gap = False
    run_start: list[QueryToken] = []

    def flush() -> None:
        nonlocal run_has_gap
        if not run:
            return
        if run_has_gap and len(run) > 1:
            lower = sum(bounds[0] for bounds in run)
            upper = (
                None
                if any(bounds[1] is None for bounds in run)
                else sum(bounds[1] for bounds in run)  # type: ignore[misc]
            )
            out.append(_canonical_token(GapToken(lower, upper)))
        else:
            out.extend(run_start)
        run.clear()
        run_start.clear()
        run_has_gap = False

    for token in tokens:
        bounds = _gap_bounds(token)
        if bounds is None:
            flush()
            out.append(token)
        else:
            run.append(bounds)
            run_start.append(token)
            run_has_gap = run_has_gap or not isinstance(token, AnyToken)
    flush()
    return tuple(out)


def normalize_query(
    query: str | QueryToken | tuple | list,
) -> tuple[QueryToken, ...]:
    """Accept a query string, a single token, or a token sequence.

    The returned tuple is *canonical*: beyond parsing, semantic no-ops
    are rewritten away — ``@0`` floors dropped, single-choice and
    subtree-implied disjunction choices unwrapped, gaps folded into the
    shortest spelling and adjacent gap runs collapsed (see
    :func:`_canonical_token` and :func:`_collapse_gap_runs`) — so every
    equivalent spelling yields the same token tuple, the tuple the
    service keys its result cache on.

    Raises :class:`~repro.errors.InvalidParameterError` for an empty or
    whitespace-only string, an empty sequence, or sequence elements that
    are not tokens — every caller (index, store, HTTP) sees the same
    rejection.
    """
    if isinstance(query, str):
        if not query.strip():
            raise InvalidParameterError("empty query")
        tokens = parse_query(query)
    elif isinstance(query, QueryToken):
        tokens = (query,)
    else:
        tokens = tuple(query)
        if not tokens:
            raise InvalidParameterError("empty query")
        for token in tokens:
            if not isinstance(token, QueryToken):
                raise InvalidParameterError(
                    f"query element {token!r} is not a QueryToken"
                )
    return _collapse_gap_runs(
        tuple(_canonical_token(token) for token in tokens)
    )


def is_negation_only(tokens: tuple[QueryToken, ...]) -> bool:
    """True when the query negates but never *selects*: it contains a
    ``!token`` and no positive item-binding token (item, ``^name``,
    disjunction or floor).

    Such a query offers the candidate pruner no postings at all — every
    backend answers it through the length-group fallback, a scan over
    most of the store.  The serving tier rejects these (one request
    must not trigger an unbounded scan); local callers (the CLI, the
    Python API) run them fine.
    """
    return any(isinstance(t, NotToken) for t in tokens) and not any(
        isinstance(t, (ItemToken, UnderToken, OneOfToken, FloorToken))
        for t in tokens
    )


__all__ = [
    "QueryToken",
    "ItemToken",
    "UnderToken",
    "AnyToken",
    "PlusToken",
    "SpanToken",
    "GapToken",
    "NotToken",
    "OneOfToken",
    "FloorToken",
    "Q",
    "parse_query",
    "normalize_query",
    "is_negation_only",
]
