"""Query tokens and the wildcard query language.

A query is a whitespace-separated list of tokens, one per matched region:

============  =====================================================
syntax        meaning
============  =====================================================
``name``      exactly this item
``^name``     this item or any of its hierarchy descendants
``?``         exactly one item, any item
``+``         one or more items
``*``         zero or more items
``(a|b|^C)``  one item drawn from any listed alternative: an exact
              item (``a``, ``b``) or a hierarchy subtree (``^C``)
``token@N``   the single item bound by ``token`` must have corpus
              frequency ≥ N (``token``: ``name``, ``^name``, ``?``
              or a disjunction)
============  =====================================================

``?``/``*``/``+`` follow Netspeak's conventions [2]; ``^`` adds the
hierarchy dimension that plain n-gram indexes lack.  ``(a|b)`` is a
single region, not a span: exactly one item is consumed, so floors
compose — ``(a|^B)@10`` matches one item that is ``a`` or under ``B``
*and* occurs at least 10 times in the corpus.  ``*@N``/``+@N`` are
rejected: a gap binds no single item to bound.  Items whose *name* is
literally ``?``, ``*``, ``+``, starts with ``^`` or ``(``, or ends with
``@digits`` cannot be written in the string syntax — build those
queries from :class:`Q` constructors instead.

>>> parse_query("the ^ADJ ?")
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
>>> (Q.item("the"), Q.under("ADJ"), Q.any())
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
>>> parse_query("(a|^B)@3 ?")
(FloorToken(OneOfToken(ItemToken('a'), UnderToken('B')), 3), AnyToken())
>>> (Q.floor(Q.oneof("a", Q.under("B")), 3), Q.any())
(FloorToken(OneOfToken(ItemToken('a'), UnderToken('B')), 3), AnyToken())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


class QueryToken:
    """Base class for the seven token kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class ItemToken(QueryToken):
    """Matches exactly one occurrence of exactly this item."""

    name: str

    def __repr__(self) -> str:
        return f"ItemToken({self.name!r})"


@dataclass(frozen=True)
class UnderToken(QueryToken):
    """Matches one occurrence of the item or any hierarchy descendant."""

    name: str

    def __repr__(self) -> str:
        return f"UnderToken({self.name!r})"


@dataclass(frozen=True)
class AnyToken(QueryToken):
    """Matches exactly one item, whatever it is (``?``)."""

    def __repr__(self) -> str:
        return "AnyToken()"


@dataclass(frozen=True)
class PlusToken(QueryToken):
    """Matches one or more items (``+``)."""

    def __repr__(self) -> str:
        return "PlusToken()"


@dataclass(frozen=True)
class SpanToken(QueryToken):
    """Matches zero or more items (``*``)."""

    def __repr__(self) -> str:
        return "SpanToken()"


@dataclass(frozen=True)
class OneOfToken(QueryToken):
    """Matches one item drawn from any of the alternatives (``(a|b|^C)``).

    Each choice is an :class:`ItemToken` (exact item) or an
    :class:`UnderToken` (item or hierarchy descendant).  Choices are
    stored deduplicated and canonically ordered, so ``(a|b)`` and
    ``(b|a)`` compare (and cache) equal.
    """

    choices: tuple[QueryToken, ...]

    def __post_init__(self) -> None:
        for choice in self.choices:
            if not isinstance(choice, (ItemToken, UnderToken)):
                raise InvalidParameterError(
                    f"disjunction choice {choice!r} must be an item or "
                    "'^name' token"
                )
        if not self.choices:
            raise InvalidParameterError("disjunction needs at least one choice")
        canonical = tuple(
            sorted(
                set(self.choices),
                key=lambda c: (isinstance(c, UnderToken), c.name),
            )
        )
        object.__setattr__(self, "choices", canonical)

    def __repr__(self) -> str:
        inner = ", ".join(repr(choice) for choice in self.choices)
        return f"OneOfToken({inner})"


@dataclass(frozen=True)
class FloorToken(QueryToken):
    """Matches what ``inner`` matches, with the bound item's corpus
    frequency required to be ≥ ``floor`` (``token@N``).

    ``inner`` must bind exactly one item — ``name``, ``^name``, ``?`` or
    a disjunction; gaps (``*``/``+``) and nested floors are rejected.
    """

    inner: QueryToken
    floor: int

    def __post_init__(self) -> None:
        if not isinstance(
            self.inner, (ItemToken, UnderToken, AnyToken, OneOfToken)
        ):
            raise InvalidParameterError(
                f"frequency floor requires a single-item token, "
                f"got {self.inner!r}"
            )
        if not isinstance(self.floor, int) or isinstance(self.floor, bool):
            raise InvalidParameterError(
                f"frequency floor must be an integer, got {self.floor!r}"
            )
        if self.floor < 0:
            raise InvalidParameterError(
                f"frequency floor must be >= 0, got {self.floor}"
            )

    def __repr__(self) -> str:
        return f"FloorToken({self.inner!r}, {self.floor})"


class Q:
    """Programmatic token constructors (escape hatch for odd item names)."""

    @staticmethod
    def item(name: str) -> ItemToken:
        return ItemToken(name)

    @staticmethod
    def under(name: str) -> UnderToken:
        return UnderToken(name)

    @staticmethod
    def any() -> AnyToken:
        return AnyToken()

    @staticmethod
    def plus() -> PlusToken:
        return PlusToken()

    @staticmethod
    def span() -> SpanToken:
        return SpanToken()

    @staticmethod
    def oneof(*choices: str | QueryToken) -> OneOfToken:
        """Disjunction over item names (strings match exactly) and/or
        :class:`ItemToken`/:class:`UnderToken` instances."""
        return OneOfToken(
            tuple(
                ItemToken(c) if isinstance(c, str) else c for c in choices
            )
        )

    @staticmethod
    def floor(inner: str | QueryToken, floor: int) -> FloorToken:
        """Frequency floor over an item name (exact) or single-item token."""
        if isinstance(inner, str):
            inner = ItemToken(inner)
        return FloorToken(inner, floor)


def _parse_choice(raw: str, text: str) -> QueryToken:
    """One ``|``-separated alternative inside ``(...)``."""
    if not raw:
        raise InvalidParameterError(
            f"empty alternative in disjunction in query {text!r}"
        )
    if raw in ("?", "*", "+") or "(" in raw or ")" in raw:
        raise InvalidParameterError(
            f"disjunction alternative {raw!r} in query {text!r} must be "
            "'name' or '^name'"
        )
    if raw.startswith("^"):
        name = raw[1:]
        if not name:
            raise InvalidParameterError(
                f"bare '^' in disjunction in query {text!r}: expected '^name'"
            )
        return UnderToken(name)
    return ItemToken(raw)


def _parse_token(raw: str, text: str) -> QueryToken:
    """One whitespace-separated token of the string syntax."""
    if "@" in raw:
        head, _, tail = raw.rpartition("@")
        # isascii() too: isdigit() alone admits characters like '³'
        # that int() rejects, which would escape as a bare ValueError
        if tail.isdigit() and tail.isascii():
            if not head:
                raise InvalidParameterError(
                    f"bare frequency floor {raw!r} in query {text!r}: "
                    "expected 'token@N'"
                )
            return FloorToken(_parse_token(head, text), int(tail))
    if raw == "?":
        return AnyToken()
    if raw == "*":
        return SpanToken()
    if raw == "+":
        return PlusToken()
    if raw.startswith("("):
        if not raw.endswith(")") or len(raw) < 2:
            raise InvalidParameterError(
                f"malformed disjunction {raw!r} in query {text!r}: "
                "expected '(a|b|^C)'"
            )
        return OneOfToken(
            tuple(
                _parse_choice(part, text) for part in raw[1:-1].split("|")
            )
        )
    if raw.startswith("^"):
        name = raw[1:]
        if not name:
            raise InvalidParameterError(
                f"bare '^' in query {text!r}: expected '^name'"
            )
        return UnderToken(name)
    return ItemToken(raw)


def parse_query(text: str) -> tuple[QueryToken, ...]:
    """Parse the string syntax into a token tuple.

    Raises :class:`~repro.errors.InvalidParameterError` for an empty
    query or malformed tokens (a bare ``^``, an unbalanced or empty
    disjunction, a floor on a gap token, a bare ``@N``).
    """
    tokens = tuple(_parse_token(raw, text) for raw in text.split())
    if not tokens:
        raise InvalidParameterError("empty query")
    return tokens


def _canonical_token(token: QueryToken) -> QueryToken:
    """Drop no-op decorations so syntactic variants normalize equal.

    A ``@0`` frequency floor admits every item (corpus frequencies are
    ≥ 0), so ``a@0`` *is* ``a`` — rewriting it away here means ``a@0 *``
    and ``a *`` compile identically and share one result-cache entry.
    """
    if isinstance(token, FloorToken) and token.floor == 0:
        return token.inner
    return token


def normalize_query(
    query: str | QueryToken | tuple | list,
) -> tuple[QueryToken, ...]:
    """Accept a query string, a single token, or a token sequence.

    The returned tuple is *canonical*: beyond parsing, semantic no-ops
    (currently ``@0`` floors) are rewritten away, so every equivalent
    spelling yields the same token tuple — the tuple the service keys
    its result cache on.

    Raises :class:`~repro.errors.InvalidParameterError` for an empty or
    whitespace-only string, an empty sequence, or sequence elements that
    are not tokens — every caller (index, store, HTTP) sees the same
    rejection.
    """
    if isinstance(query, str):
        if not query.strip():
            raise InvalidParameterError("empty query")
        tokens = parse_query(query)
    elif isinstance(query, QueryToken):
        tokens = (query,)
    else:
        tokens = tuple(query)
        if not tokens:
            raise InvalidParameterError("empty query")
        for token in tokens:
            if not isinstance(token, QueryToken):
                raise InvalidParameterError(
                    f"query element {token!r} is not a QueryToken"
                )
    return tuple(_canonical_token(token) for token in tokens)


__all__ = [
    "QueryToken",
    "ItemToken",
    "UnderToken",
    "AnyToken",
    "PlusToken",
    "SpanToken",
    "OneOfToken",
    "FloorToken",
    "Q",
    "parse_query",
    "normalize_query",
]
