"""Query tokens and the wildcard query language.

A query is a whitespace-separated list of tokens, one per matched region:

=========  =====================================================
syntax     meaning
=========  =====================================================
``name``   exactly this item
``^name``  this item or any of its hierarchy descendants
``?``      exactly one item, any item
``+``      one or more items
``*``      zero or more items
=========  =====================================================

``?``/``*``/``+`` follow Netspeak's conventions [2]; ``^`` adds the
hierarchy dimension that plain n-gram indexes lack.  Items whose *name*
is literally ``?``, ``*``, ``+`` or starts with ``^`` cannot be written in
the string syntax — build those queries from :class:`Q` constructors
instead.

>>> parse_query("the ^ADJ ?")
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
>>> (Q.item("the"), Q.under("ADJ"), Q.any())
(ItemToken('the'), UnderToken('ADJ'), AnyToken())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


class QueryToken:
    """Base class for the five token kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class ItemToken(QueryToken):
    """Matches exactly one occurrence of exactly this item."""

    name: str

    def __repr__(self) -> str:
        return f"ItemToken({self.name!r})"


@dataclass(frozen=True)
class UnderToken(QueryToken):
    """Matches one occurrence of the item or any hierarchy descendant."""

    name: str

    def __repr__(self) -> str:
        return f"UnderToken({self.name!r})"


@dataclass(frozen=True)
class AnyToken(QueryToken):
    """Matches exactly one item, whatever it is (``?``)."""

    def __repr__(self) -> str:
        return "AnyToken()"


@dataclass(frozen=True)
class PlusToken(QueryToken):
    """Matches one or more items (``+``)."""

    def __repr__(self) -> str:
        return "PlusToken()"


@dataclass(frozen=True)
class SpanToken(QueryToken):
    """Matches zero or more items (``*``)."""

    def __repr__(self) -> str:
        return "SpanToken()"


class Q:
    """Programmatic token constructors (escape hatch for odd item names)."""

    @staticmethod
    def item(name: str) -> ItemToken:
        return ItemToken(name)

    @staticmethod
    def under(name: str) -> UnderToken:
        return UnderToken(name)

    @staticmethod
    def any() -> AnyToken:
        return AnyToken()

    @staticmethod
    def plus() -> PlusToken:
        return PlusToken()

    @staticmethod
    def span() -> SpanToken:
        return SpanToken()


def parse_query(text: str) -> tuple[QueryToken, ...]:
    """Parse the string syntax into a token tuple.

    Raises :class:`~repro.errors.InvalidParameterError` for an empty query
    or a bare ``^``.
    """
    tokens: list[QueryToken] = []
    for raw in text.split():
        if raw == "?":
            tokens.append(AnyToken())
        elif raw == "*":
            tokens.append(SpanToken())
        elif raw == "+":
            tokens.append(PlusToken())
        elif raw.startswith("^"):
            name = raw[1:]
            if not name:
                raise InvalidParameterError(
                    f"bare '^' in query {text!r}: expected '^name'"
                )
            tokens.append(UnderToken(name))
        else:
            tokens.append(ItemToken(raw))
    if not tokens:
        raise InvalidParameterError("empty query")
    return tuple(tokens)


def normalize_query(
    query: str | QueryToken | tuple | list,
) -> tuple[QueryToken, ...]:
    """Accept a query string, a single token, or a token sequence."""
    if isinstance(query, str):
        return parse_query(query)
    if isinstance(query, QueryToken):
        return (query,)
    tokens = tuple(query)
    if not tokens:
        raise InvalidParameterError("empty query")
    for token in tokens:
        if not isinstance(token, QueryToken):
            raise InvalidParameterError(
                f"query element {token!r} is not a QueryToken"
            )
    return tokens


__all__ = [
    "QueryToken",
    "ItemToken",
    "UnderToken",
    "AnyToken",
    "PlusToken",
    "SpanToken",
    "Q",
    "parse_query",
    "normalize_query",
]
