"""Backend-agnostic wildcard search over a set of mined patterns.

:class:`PatternSearchBase` holds everything about *matching* — query
compilation, the regex-style DP matcher, candidate pruning via postings,
hierarchy descendant expansion — and leaves *storage* to subclasses.
Two backends implement it:

* :class:`~repro.query.index.PatternIndex` — everything in memory, built
  directly from a mining result;
* :class:`~repro.serve.store.PatternStore` — a compact on-disk binary
  file, loaded lazily section by section.

Because both run the identical compiled matcher over the identical
candidate sets, their answers are byte-for-byte the same; the tests
assert this on randomized pattern sets.

A subclass provides the storage primitives:

``_vocabulary_instance()``
    The :class:`~repro.hierarchy.vocabulary.Vocabulary` the patterns are
    coded against (may be loaded lazily).
``_num_patterns()``
    Number of stored patterns.
``_pattern_at(idx)``
    ``(coded_pattern, frequency)`` of the pattern at ``idx``.  Index
    order is frequency-descending, ties by coded pattern ascending, so
    ascending indexes enumerate "most frequent first".
``_postings_for(item_id)``
    Ascending indexes of patterns containing the item.
``_length_groups()``
    Mapping ``pattern length -> ascending indexes``.

Every public read path is expressed over three rank-ordered generators
(:meth:`~PatternSearchBase._iter_ranked`,
:meth:`~PatternSearchBase._iter_search`,
:meth:`~PatternSearchBase._iter_itemwise`), so a composite backend —
:class:`~repro.serve.sharded.ShardedPatternStore` — can answer by k-way
merging the streams of its member stores without re-implementing any of
the matching or ranking logic.

Search itself runs through compiled :class:`~repro.query.plan.QueryPlan`
objects (cached per backend): backends exposing positional postings
(``_has_positions()``) answer chain queries exactly with bitmap algebra
and skip the DP entirely; backends without positions still prune
candidates with the plan's postings bitset and verify survivors with the
DP, so every path returns byte-identical answers.  Setting
``_accelerate = False`` restores the legacy selector + DP pipeline — the
reference the differential tests and benchmarks compare against.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import InvalidParameterError
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.cost import PLAN_ORDERS, PLAN_STRATEGIES, CostEstimate
from repro.query.plan import QueryPlan, iter_bit_indexes
from repro.query.tokens import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
    normalize_query,
)

Pattern = tuple[int, ...]

#: one compiled query token: ``(kind, payload)``.  ``kind`` is one of
#: ``item``/``under`` (payload: item id), ``any``/``plus``/``span``
#: (payload: -1), ``oneof`` (payload: frozenset of admissible item
#: ids — disjunctions and frequency floors both lower to this form),
#: ``notin`` (payload: frozenset of *excluded* item ids — negations
#: lower to this complement test), or ``gap`` (payload: ``(m, n)``
#: consumption bounds, ``n=None`` unbounded).
CompiledToken = tuple[str, "int | frozenset[int] | tuple"]


def rank_key(record: tuple[Pattern, int]) -> tuple[int, Pattern]:
    """Sort key of the canonical index order for one ``(pattern, freq)``
    record.  Shared by :func:`rank_patterns` and the sharded store's
    k-way merge, so a merged stream interleaves exactly as a single
    backend would have ranked the union."""
    return (-record[1], record[0])


def rank_patterns(patterns) -> list[tuple[Pattern, int]]:
    """The canonical index order every backend stores patterns in: most
    frequent first, ties by coded pattern ascending.  Both
    :class:`~repro.query.index.PatternIndex` and the on-disk store sort
    with this one function — their ranked answers are identical because
    the order is shared, not merely repeated."""
    return sorted(patterns.items(), key=rank_key)


@dataclass(frozen=True)
class QueryMatch:
    """One search hit: the decoded pattern and its mined frequency."""

    pattern: tuple[str, ...]
    frequency: int

    def render(self) -> str:
        return " ".join(self.pattern)

    def __repr__(self) -> str:
        return f"QueryMatch({self.render()!r}, {self.frequency})"


class PatternSearchBase:
    """Shared matching engine over any pattern storage backend."""

    #: compiled query plans retained per backend (plans hold bitmaps in
    #: this backend's pattern-index coordinates, so they cannot be
    #: shared across shards the way the vocabulary-pure caches are)
    _PLAN_CACHE_CAP = 256

    def __init__(self) -> None:
        self._children_map: dict[int, list[int]] | None = None
        self._descendants_cache: dict[int, tuple[int, ...]] = {}
        self._descendants_lock = threading.Lock()
        # vocabulary-pure memos (shared across shards, see
        # ShardedPatternStore._shard): token -> compiled form / id set
        self._compile_cache: dict[QueryToken, CompiledToken] = {}
        self._admissible_cache: dict[QueryToken, frozenset[int]] = {}
        # planner-statistics memo (postings sizes per node id set,
        # length stats, scan counts): per backend, never invalidated —
        # a backend instance is an immutable snapshot of one store
        self._cost_stat_cache: dict[tuple, object] = {}
        # per-backend plan machinery
        self._accelerate = True
        self._plan_lock = threading.Lock()
        self._plan_cache: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self._plan_hits = 0
        self._plan_compiles = 0
        self._plan_evictions = 0
        self._plan_paths = {
            "exact": 0,
            "pruned": 0,
            "scan": 0,
            "wildcard": 0,
            "legacy": 0,
        }
        # planner knobs: candidate-mask node ordering and a forced
        # execution strategy (None = the cost estimate decides); both
        # are part of the plan-cache key, so flipping them can never
        # serve a plan built under different rules
        self._plan_order = "cost"
        self._plan_strategy: str | None = None
        self._pos_space = None
        # a sharded handle installs a factory here so all its shards
        # slice one shared PositionSpace build; the counter feeds
        # plan_stats() so tests can pin "built exactly once"
        self._space_factory = None
        self._space_builds = 0

    # ------------------------------------------------------------------
    # storage primitives (subclass responsibility)
    # ------------------------------------------------------------------

    def _vocabulary_instance(self) -> Vocabulary:
        raise NotImplementedError

    def _num_patterns(self) -> int:
        raise NotImplementedError

    def _pattern_at(self, idx: int) -> tuple[Pattern, int]:
        raise NotImplementedError

    def _postings_for(self, item_id: int) -> Sequence[int]:
        raise NotImplementedError

    def _length_groups(self) -> dict[int, Sequence[int]]:
        raise NotImplementedError

    def _has_positions(self) -> bool:
        """Whether :meth:`_positional_postings_for` is available.  False
        for backends over version-1 store files — they still get bitset
        candidate pruning, just not exact positional matching."""
        return False

    def _positional_postings_for(
        self, item_id: int
    ) -> tuple[Sequence[int], Sequence[tuple[int, ...]]] | None:
        """Parallel ``(pattern indexes, per-pattern position tuples)``
        for one item, or ``None`` when the backend has no positions."""
        return None

    def _postings_size_estimate(self, item_id: int) -> int:
        """Estimated postings-list length for one item — the planner's
        per-node cost statistic.  The default reads the true length
        (O(1) for in-memory backends); on-disk stores override it with
        a byte-range estimate that never decodes a postings list."""
        return len(self._postings_for(item_id))

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary_instance()

    def __len__(self) -> int:
        return self._num_patterns()

    def __iter__(self) -> Iterator[QueryMatch]:
        vocabulary = self.vocabulary
        for pattern, frequency in self._iter_ranked():
            yield QueryMatch(vocabulary.decode_sequence(pattern), frequency)

    def __contains__(self, names: object) -> bool:
        try:
            coded = self.vocabulary.encode_sequence(tuple(names))  # type: ignore[arg-type]
        except Exception:
            return False
        return self._find_coded(coded) is not None

    def frequency(self, *names: str) -> int:
        """Mined frequency of an exact pattern; 0 when absent."""
        try:
            coded = self.vocabulary.encode_sequence(names)
        except Exception:
            return 0
        found = self._find_coded(coded)
        return 0 if found is None else found

    def _find_coded(self, coded: Pattern) -> int | None:
        """Frequency of an exactly-stored pattern, ``None`` when absent
        (membership and frequency stay distinct: a stored frequency-0
        pattern is still a member).  Default: exact lookup through the
        postings of the rarest item."""
        if not coded:
            return None
        best: Sequence[int] | None = None
        for item in set(coded):
            postings = self._postings_for(item)
            if best is None or len(postings) < len(best):
                best = postings
        for idx in best or ():
            pattern, freq = self._pattern_at(idx)
            if pattern == coded:
                return freq
        return None

    def top(self, n: int = 10) -> list[QueryMatch]:
        """The ``n`` most frequent patterns in the index."""
        vocabulary = self.vocabulary
        out: list[QueryMatch] = []
        for pattern, frequency in self._iter_ranked():
            if len(out) >= n:
                break
            out.append(
                QueryMatch(vocabulary.decode_sequence(pattern), frequency)
            )
        return out

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str | QueryToken | tuple | list,
        limit: int | None = None,
        min_freq: int | None = None,
    ) -> list[QueryMatch]:
        """All indexed patterns matching the query, most frequent first.

        ``query`` is a string in the wildcard syntax or a sequence of
        :class:`~repro.query.tokens.QueryToken`.  Unknown item names raise
        :class:`~repro.errors.UnknownItemError`.

        ``min_freq`` is the per-query σ override: only patterns whose
        *mined frequency* clears it are returned.  It is orthogonal to
        ``token@N`` floors (those bound an item's corpus frequency) and
        composes with them.  Because results stream in frequency-
        descending rank order, the filter is a prefix cut — iteration
        stops at the first pattern below the floor.
        """
        if min_freq is not None and (
            not isinstance(min_freq, int)
            or isinstance(min_freq, bool)
            or min_freq < 0
        ):
            raise InvalidParameterError(
                f"min_freq must be an integer >= 0 or None, got {min_freq!r}"
            )
        compiled = self._compile(normalize_query(query))
        vocabulary = self.vocabulary
        matches: list[QueryMatch] = []
        for pattern, frequency in self._iter_search(compiled):
            if min_freq is not None and frequency < min_freq:
                break  # rank order: everything after is below σ too
            matches.append(
                QueryMatch(vocabulary.decode_sequence(pattern), frequency)
            )
            if limit is not None and len(matches) >= limit:
                break
        return matches

    def count(self, query, min_freq: int | None = None) -> int:
        """Number of indexed patterns matching the query."""
        return len(self.search(query, min_freq=min_freq))

    def total_frequency(self, query, min_freq: int | None = None) -> int:
        """Sum of frequencies over all matches (n-gram-viewer style mass)."""
        return sum(
            match.frequency for match in self.search(query, min_freq=min_freq)
        )

    def slot_fillers(
        self, query, slot: int
    ) -> list[tuple[str, int]]:
        """Aggregate the items filling one wildcard slot of a fixed-length
        query, with their total frequency (most frequent first).

        Only queries without ``*``/``+`` have an unambiguous alignment, so
        span tokens are rejected.  Typical use: *which items appear after
        "NOUN lives in"?* → ``slot_fillers("NOUN lives in ?", 3)``.
        """
        tokens = normalize_query(query)
        if any(
            isinstance(t, (SpanToken, PlusToken, GapToken)) for t in tokens
        ):
            raise InvalidParameterError(
                "slot_fillers requires a fixed-length query "
                "(no '*'/'+'/'*{m,n}')"
            )
        if not 0 <= slot < len(tokens):
            raise InvalidParameterError(
                f"slot {slot} out of range for a {len(tokens)}-token query"
            )
        fillers: dict[str, int] = {}
        for match in self.search(tokens):
            name = match.pattern[slot]
            fillers[name] = fillers.get(name, 0) + match.frequency
        return sorted(fillers.items(), key=lambda kv: (-kv[1], kv[0]))

    # ------------------------------------------------------------------
    # hierarchy navigation
    # ------------------------------------------------------------------

    def generalizations_of(self, names) -> list[QueryMatch]:
        """Indexed patterns that are itemwise generalizations of ``names``
        (same length, each item an ancestor-or-self), including the pattern
        itself when indexed."""
        vocabulary = self.vocabulary
        coded = vocabulary.encode_sequence(tuple(names))
        return [
            QueryMatch(vocabulary.decode_sequence(pattern), frequency)
            for pattern, frequency in self._iter_itemwise(coded, upward=True)
        ]

    def specializations_of(self, names) -> list[QueryMatch]:
        """Indexed patterns that are itemwise specializations of ``names``
        (same length, each item a descendant-or-self), including the
        pattern itself when indexed."""
        vocabulary = self.vocabulary
        coded = vocabulary.encode_sequence(tuple(names))
        return [
            QueryMatch(vocabulary.decode_sequence(pattern), frequency)
            for pattern, frequency in self._iter_itemwise(coded, upward=False)
        ]

    # ------------------------------------------------------------------
    # rank-ordered streams (composite backends merge these)
    # ------------------------------------------------------------------

    def _iter_ranked(self) -> Iterator[tuple[Pattern, int]]:
        """All ``(pattern, frequency)`` records, most frequent first
        (ties by coded pattern): the backend's native index order."""
        for idx in range(self._num_patterns()):
            yield self._pattern_at(idx)

    def _iter_search(
        self, compiled: list[CompiledToken]
    ) -> Iterator[tuple[Pattern, int]]:
        """Records matching a compiled query, in rank order.  The
        compiled form is id-based, so it is only portable to another
        backend holding an identical vocabulary (shards do).

        Routing, cheapest-estimated first: wildcard-only queries are a
        pure length-range scan (no per-pattern work at all); for chain
        queries the plan's cost estimate picks a strategy —
        ``exact`` (positional bitmap propagation, no DP), ``pruned``
        (AND the cheap chain nodes' postings bitsets, DP-verify
        survivors; on positional backends the verified indexes are
        retained on the plan) or ``scan`` (length-filtered scan + DP,
        the union-vs-scan fallback for unselective chains); plans whose
        chain constrains nothing fall back to the legacy selector.
        Every path yields ascending pattern indexes — the rank order —
        so the choice of path is invisible downstream.
        """
        if not self._accelerate:
            yield from self._iter_search_dp(compiled, self._candidates(compiled))
            return
        plan = self._plan_for(compiled)
        if plan.unsatisfiable:
            return
        if not plan.chain:
            self._count_path("wildcard")
            for idx in plan.length_scan_indexes(self):
                yield self._pattern_at(idx)
            return
        strategy = plan.strategy(self)
        if strategy == "exact":
            self._count_path("exact")
            for idx in plan.match_indexes(self):
                yield self._pattern_at(idx)
            return
        if strategy == "scan":
            self._count_path("scan")
            yield from self._iter_search_dp(
                compiled, plan.length_scan_indexes(self)
            )
            return
        mask = plan.candidate_mask(self)
        if mask is None:
            self._count_path("legacy")
            yield from self._iter_search_dp(compiled, self._candidates(compiled))
            return
        self._count_path("pruned")
        if self._has_positions():
            # cost-routed around the exact path: few candidates, so
            # verify once and retain on the plan — repeats stay as
            # cheap as the exact path's retained match indexes
            for idx in plan.verified_indexes(self, compiled):
                yield self._pattern_at(idx)
            return
        yield from self._iter_search_dp(compiled, iter_bit_indexes(mask))

    def _iter_search_dp(
        self, compiled: list[CompiledToken], indexes
    ) -> Iterator[tuple[Pattern, int]]:
        """The verified path: run the reference DP over the given
        ascending candidate indexes."""
        for idx in indexes:
            pattern, frequency = self._pattern_at(idx)
            if self._matches(compiled, pattern):
                yield pattern, frequency

    def _iter_itemwise(
        self, coded: Pattern, upward: bool
    ) -> Iterator[tuple[Pattern, int]]:
        """Same-length patterns itemwise generalizing (``upward``) or
        specializing ``coded``, in rank order."""
        vocabulary = self.vocabulary
        for idx in self._length_groups().get(len(coded), ()):
            pattern, frequency = self._pattern_at(idx)
            if upward:
                ok = all(
                    vocabulary.generalizes_to(s, p)
                    for s, p in zip(coded, pattern)
                )
            else:
                ok = all(
                    vocabulary.generalizes_to(p, s)
                    for s, p in zip(coded, pattern)
                )
            if ok:
                yield pattern, frequency

    # ------------------------------------------------------------------
    # compiled query plans
    # ------------------------------------------------------------------

    def _plan_for(self, compiled: list[CompiledToken]) -> QueryPlan:
        """The cached :class:`~repro.query.plan.QueryPlan` for a
        compiled query, building (outside the lock) and inserting on
        miss.  LRU eviction at :data:`_PLAN_CACHE_CAP` entries — a hit
        promotes the plan to most-recent, so a hot plan survives cap
        churn (eviction used to be pure FIFO).  The planner knobs are
        part of the key: plans hold masks and strategies built under
        one (order, strategy) setting."""
        key = (self._plan_order, self._plan_strategy, tuple(compiled))
        with self._plan_lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_hits += 1
                self._plan_cache.move_to_end(key)
                return plan
        plan = QueryPlan(compiled, self)
        with self._plan_lock:
            existing = self._plan_cache.get(key)
            if existing is not None:
                self._plan_hits += 1
                self._plan_cache.move_to_end(key)
                return existing
            self._plan_compiles += 1
            if len(self._plan_cache) >= self._PLAN_CACHE_CAP:
                self._plan_cache.popitem(last=False)
                self._plan_evictions += 1
            self._plan_cache[key] = plan
        return plan

    def _count_path(self, path: str) -> None:
        with self._plan_lock:
            self._plan_paths[path] += 1

    def set_planner(
        self, order: str = "cost", strategy: str | None = None
    ) -> None:
        """Planner knobs: candidate-mask node ordering (one of
        :data:`~repro.query.cost.PLAN_ORDERS`) and a forced execution
        strategy (one of :data:`~repro.query.cost.PLAN_STRATEGIES`,
        ``None`` = the cost estimate decides).  Every combination
        answers byte-identically — the differential harness forces them
        all; benchmarks use ``("cardinality", "exact")`` as the
        pre-planner reference."""
        if order not in PLAN_ORDERS:
            raise InvalidParameterError(
                f"planner order must be one of {PLAN_ORDERS}, got {order!r}"
            )
        if strategy is not None and strategy not in PLAN_STRATEGIES:
            raise InvalidParameterError(
                f"planner strategy must be one of {PLAN_STRATEGIES} or "
                f"None, got {strategy!r}"
            )
        self._plan_order = order
        self._plan_strategy = strategy

    def estimate_cost(self, query) -> CostEstimate:
        """The cost estimate for a query against this backend — the
        admission-control currency (see :mod:`repro.query.cost`)."""
        compiled = self._compile(normalize_query(query))
        return self._plan_for(compiled).estimate(self)

    def explain(self, query) -> dict:
        """The compiled plan and its cost estimate, for ``lash query
        --explain`` and debugging: chain shape, windows, length bounds,
        the active planner knobs, the strategy that would run, and the
        full per-node estimate."""
        compiled = self._compile(normalize_query(query))
        plan = self._plan_for(compiled)
        estimate = plan.estimate(self)
        return {
            "chain": [
                {"kind": kind, "ids": len(ids)} for kind, ids in plan.chain
            ],
            "windows": [list(window) for window in plan.windows],
            "min_len": plan.min_len,
            "max_len": plan.max_len,
            "unsatisfiable": plan.unsatisfiable,
            "order": self._plan_order,
            "forced_strategy": self._plan_strategy,
            "strategy": (
                plan.strategy(self) if plan.chain else estimate.strategy
            ),
            "estimate": estimate.to_dict(),
        }

    def plan_stats(self) -> dict:
        """Plan-cache and execution-path counters (surfaced by the HTTP
        service's ``/stats``)."""
        with self._plan_lock:
            return {
                "entries": len(self._plan_cache),
                "capacity": self._PLAN_CACHE_CAP,
                "hits": self._plan_hits,
                "compiles": self._plan_compiles,
                "evictions": self._plan_evictions,
                "space_builds": self._space_builds,
                "paths": dict(self._plan_paths),
            }

    def _plan_candidate_indexes(
        self, compiled: list[CompiledToken]
    ) -> list[int] | None:
        """Ascending candidate indexes stage-1 plan pruning admits, or
        ``None`` when the plan constrains nothing (the property tests
        assert this set is a superset of the true matches)."""
        plan = self._plan_for(compiled)
        if plan.unsatisfiable:
            return []
        if not plan.chain:
            return plan.length_scan_indexes(self)
        mask = plan.candidate_mask(self)
        if mask is None:
            return None
        return list(iter_bit_indexes(mask))

    def _pattern_lengths(self) -> list[int]:
        """Length of every stored pattern, indexed by pattern index
        (derived from the length groups — no pattern decoding)."""
        lengths = [0] * self._num_patterns()
        for length, idxs in self._length_groups().items():
            for idx in idxs:
                lengths[idx] = length
        return lengths

    def _position_space(self):
        """The lazily-built positional coordinate system shared by every
        plan over this backend.  A sharded handle installs a
        ``_space_factory`` so its shards slice one shared build instead
        of each paying the full slot loop on first positional query."""
        space = self._pos_space
        if space is None:
            from repro.query.plan import PositionSpace

            with self._plan_lock:
                space = self._pos_space
                if space is None:
                    factory = self._space_factory
                    if factory is not None:
                        space = factory()
                    else:
                        space = PositionSpace(self._pattern_lengths())
                        self._space_builds += 1
                    self._pos_space = space
        return space

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _descendants_or_self(self, item_id: int) -> tuple[int, ...]:
        # lock-free fast path; build-and-insert under the lock so the
        # caches stay consistent across concurrent server threads
        cached = self._descendants_cache.get(item_id)
        if cached is not None:
            return cached
        with self._descendants_lock:
            cached = self._descendants_cache.get(item_id)
            if cached is not None:
                return cached
            if self._children_map is None:
                vocabulary = self.vocabulary
                children: dict[int, list[int]] = {
                    i: [] for i in range(len(vocabulary))
                }
                for child in range(len(vocabulary)):
                    for parent in vocabulary.parent_ids(child):
                        children[parent].append(child)
                self._children_map = children
            seen: set[int] = set()
            stack = [item_id]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self._children_map[current])
            result = tuple(sorted(seen))
            self._descendants_cache[item_id] = result
            return result

    def _compile(
        self, tokens: tuple[QueryToken, ...]
    ) -> list[CompiledToken]:
        """Resolve item names to ids once, validating the whole query
        upfront.  Compiled form: :data:`CompiledToken` pairs.

        Disjunctions expand to the union of their choices' id sets
        (``^name`` choices pull in the whole subtree) and frequency
        floors intersect the inner token's id set with the items whose
        corpus frequency clears the floor — so by the time matching
        runs, both token kinds are plain ``oneof`` id-set tests.
        Negations expand the *same* id set but compile to ``notin``
        (the complement test), keeping the excluded set small instead
        of materializing near-the-whole-vocabulary admissible sets.
        The id sets derive only from the vocabulary, so the compiled
        query stays portable across shards sharing that vocabulary.
        """
        vocabulary = self.vocabulary
        return [self._compile_token(token, vocabulary) for token in tokens]

    def _admissible_ids(
        self, token: QueryToken, vocabulary: Vocabulary
    ) -> frozenset[int]:
        """Id set an item/``^name``/disjunction token admits.  Memoized
        per token: the result derives only from the vocabulary, so the
        cache is shared across shards and never invalidates."""
        cached = self._admissible_cache.get(token)
        if cached is not None:
            return cached
        if isinstance(token, UnderToken):
            ids = frozenset(
                self._descendants_or_self(vocabulary.id(token.name))
            )
        elif isinstance(token, ItemToken):
            ids = frozenset((vocabulary.id(token.name),))
        else:
            union: set[int] = set()
            for choice in token.choices:
                union.update(self._admissible_ids(choice, vocabulary))
            ids = frozenset(union)
        self._admissible_cache[token] = ids
        return ids

    def _hoist_oneof(self, ids: frozenset[int]) -> CompiledToken:
        """Collapse an admissible id set to a cheaper token when its
        structure allows: a singleton is a plain ``item`` test, and a
        set covering exactly one hierarchy subtree is an ``under`` test
        rooted at its minimum id (ancestors always carry smaller ids
        than their descendants, so the root of any covered subtree must
        be the set's minimum).  Both rewrites give `_candidates` a
        directly-posted token and give plans a smaller chain node; the
        admitted items are identical by construction."""
        if not ids:
            return ("oneof", ids)
        root = min(ids)
        if len(ids) == 1:
            return ("item", root)
        subtree = self._descendants_or_self(root)
        if len(subtree) == len(ids) and all(item in ids for item in subtree):
            return ("under", root)
        return ("oneof", ids)

    def _compile_token(
        self, token: QueryToken, vocabulary: Vocabulary
    ) -> CompiledToken:
        """Memoized front of :meth:`_compile_token_uncached` (tokens are
        frozen dataclasses; compilation is vocabulary-pure)."""
        cached = self._compile_cache.get(token)
        if cached is not None:
            return cached
        compiled = self._compile_token_uncached(token, vocabulary)
        self._compile_cache[token] = compiled
        return compiled

    def _compile_token_uncached(
        self, token: QueryToken, vocabulary: Vocabulary
    ) -> CompiledToken:
        if isinstance(token, ItemToken):
            return ("item", vocabulary.id(token.name))
        if isinstance(token, UnderToken):
            return ("under", vocabulary.id(token.name))
        if isinstance(token, AnyToken):
            return ("any", -1)
        if isinstance(token, PlusToken):
            return ("plus", -1)
        if isinstance(token, SpanToken):
            return ("span", -1)
        if isinstance(token, GapToken):
            return ("gap", (token.min_items, token.max_items))
        if isinstance(token, NotToken):
            return ("notin", self._admissible_ids(token.inner, vocabulary))
        if isinstance(token, OneOfToken):
            # hierarchy-aware hoisting: [a|b|c] covering exactly the
            # subtree of their common root compiles as if the user had
            # written ^root
            return self._hoist_oneof(self._admissible_ids(token, vocabulary))
        if isinstance(token, FloorToken):
            kind, payload = self._compile_token(token.inner, vocabulary)
            if kind == "item":
                if vocabulary.frequency(payload) >= token.floor:
                    return ("item", payload)
                return ("oneof", frozenset())
            if kind == "under":
                candidates: Sequence[int] = self._descendants_or_self(payload)
            elif kind == "any":
                if token.floor == 0:
                    return ("any", -1)
                candidates = range(len(vocabulary))
            elif kind == "notin":
                # floor over a negation (!a@N): the floor turns the
                # near-whole-vocabulary complement into a concrete
                # id set, which also gives `_candidates` postings to
                # prune on — unlike a bare negation
                if token.floor == 0:
                    return ("notin", payload)
                candidates = [
                    item
                    for item in range(len(vocabulary))
                    if item not in payload
                ]
            else:  # oneof
                candidates = payload
            return self._hoist_oneof(
                frozenset(
                    item
                    for item in candidates
                    if vocabulary.frequency(item) >= token.floor
                )
            )
        raise InvalidParameterError(
            f"unsupported query token {token!r}"
        )  # pragma: no cover - normalize_query guards this

    def _candidates(self, compiled: list[CompiledToken]) -> list[int]:
        """Candidate pattern indexes, ascending (= frequency-descending),
        from the most selective *positive* concrete token's postings.
        ``oneof`` tokens consume exactly one item from their id set, so
        the union of those ids' postings is a complete candidate set —
        an empty id set (an unsatisfiable floor) yields no candidates
        at all.  ``notin`` tokens contribute **no** postings: their
        complement is nearly the whole vocabulary, so unioning it would
        degrade selection to a full scan while adding nothing — the
        negation is enforced by the matcher, like gaps.

        Single-item and subtree postings are sized up first; ``oneof``
        unions (potentially the whole vocabulary, e.g. ``?@N``) run
        last and abort as soon as they outgrow the best set so far —
        the chosen candidate set is identical either way, only the
        wasted union work goes.

        A query with no positive concrete token (wildcard-only, or
        all-negative like ``!a !^B``) falls back to scanning every
        length group whose length the query can consume — negations
        and ``?`` take exactly one item, ``*{m,n}`` between ``m`` and
        ``n``.  The serving tier refuses all-negative queries for this
        reason (:func:`~repro.query.tokens.is_negation_only`); embedded
        callers accept the scan.
        """
        best: Sequence[int] | None = None
        oneofs: list[frozenset[int]] = []
        for kind, item in compiled:
            if kind == "item":
                postings = self._postings_for(item)
            elif kind == "under":
                merged: set[int] = set()
                for descendant in self._descendants_or_self(item):
                    merged.update(self._postings_for(descendant))
                postings = sorted(merged)
            elif kind == "oneof":
                oneofs.append(item)
                continue
            else:
                continue
            if best is None or len(postings) < len(best):
                best = postings
        for ids in oneofs:
            if ids and len(ids) == len(self.vocabulary) and best is not None:
                continue  # unions to every pattern; cannot beat `best`
            merged = set()
            overflow = False
            for member in ids:
                merged.update(self._postings_for(member))
                if best is not None and len(merged) >= len(best):
                    overflow = True
                    break
            if not overflow:
                best = sorted(merged)
        if best is not None:
            return list(best)
        # no positive concrete token: filter by achievable lengths
        min_len = 0
        max_len: int | None = 0
        for kind, payload in compiled:
            if kind == "span":
                max_len = None
            elif kind == "plus":
                min_len += 1
                max_len = None
            elif kind == "gap":
                lower, upper = payload
                min_len += lower
                if upper is None:
                    max_len = None
                elif max_len is not None:
                    max_len += upper
            else:  # any / notin consume exactly one item
                min_len += 1
                if max_len is not None:
                    max_len += 1
        indexes: list[int] = []
        for length, idxs in self._length_groups().items():
            if length >= min_len and (max_len is None or length <= max_len):
                indexes.extend(idxs)
        return sorted(indexes)

    def _matches(
        self, compiled: list[CompiledToken], pattern: Pattern
    ) -> bool:
        """Regex-style DP over token positions × pattern positions."""
        vocabulary = self.vocabulary
        n_items = len(pattern)
        # reachable[j] = True if a prefix of tokens consumed pattern[:j]
        reachable = [True] + [False] * n_items
        for kind, target in compiled:
            nxt = [False] * (n_items + 1)
            if kind == "span":
                # zero or more: propagate the earliest reachable point right
                running = False
                for j in range(n_items + 1):
                    running = running or reachable[j]
                    nxt[j] = running
            elif kind == "plus":
                running = False
                for j in range(1, n_items + 1):
                    running = running or reachable[j - 1]
                    nxt[j] = running
            elif kind == "gap":
                # nxt[j] iff some reachable[j - d] with m <= d <= n
                lower, upper = target
                for j in range(lower, n_items + 1):
                    first = 0 if upper is None else max(0, j - upper)
                    nxt[j] = any(reachable[first : j - lower + 1])
            else:
                for j in range(n_items):
                    if not reachable[j]:
                        continue
                    item = pattern[j]
                    if kind == "any":
                        nxt[j + 1] = True
                    elif kind == "item":
                        if item == target:
                            nxt[j + 1] = True
                    elif kind == "oneof":
                        if item in target:
                            nxt[j + 1] = True
                    elif kind == "notin":
                        if item not in target:
                            nxt[j + 1] = True
                    else:  # under
                        if vocabulary.generalizes_to(item, target):
                            nxt[j + 1] = True
            reachable = nxt
            if not any(reachable):
                return False
        return reachable[n_items]


__all__ = [
    "PatternSearchBase",
    "QueryMatch",
    "Pattern",
    "CompiledToken",
    "rank_patterns",
    "rank_key",
]
