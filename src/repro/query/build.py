"""Turn a decoded pattern file into a queryable (coded, vocabulary) pair.

Both serving paths — the throwaway in-memory index of ``lash query`` and
the persistent :class:`~repro.serve.store.PatternStore` builder — need
the same warm-up: make sure every item mentioned by a pattern exists in
the hierarchy, derive a vocabulary, and integer-code the patterns.  This
helper does it once and in one pass (the CLI used to re-probe the
hierarchy item by item on every invocation).
"""

from __future__ import annotations

from typing import Mapping

from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary


def code_patterns(
    patterns: Mapping[tuple[str, ...], int],
    hierarchy: Hierarchy | None = None,
) -> tuple[dict[tuple[int, ...], int], Vocabulary]:
    """Vocabulary + integer-coded patterns for a decoded pattern mapping.

    ``hierarchy`` enables ``^name`` queries; when omitted, a flat
    hierarchy over the pattern items is used.  Items that appear in
    patterns but not in the hierarchy are registered as isolated roots
    — on a copy, so the caller's hierarchy is never mutated.  The
    patterns themselves serve as the ordering corpus: query answers
    depend only on the hierarchy edges, not on the exact item order.
    """
    from repro.hierarchy import build_vocabulary
    from repro.sequence import SequenceDatabase

    pattern_items = {item for pattern in patterns for item in pattern}
    if hierarchy is None:
        hierarchy = Hierarchy.flat(pattern_items)
    else:
        hierarchy = hierarchy.copy()
        for item in pattern_items:
            if item not in hierarchy:
                hierarchy.add_item(item)
    vocabulary = build_vocabulary(
        SequenceDatabase(list(patterns)), hierarchy
    )
    coded = {
        vocabulary.encode_sequence(pattern): freq
        for pattern, freq in patterns.items()
    }
    return coded, vocabulary


__all__ = ["code_patterns"]
