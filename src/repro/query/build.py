"""Turn a decoded pattern file into a queryable (coded, vocabulary) pair.

Both serving paths — the throwaway in-memory index of ``lash query`` and
the persistent :class:`~repro.serve.store.PatternStore` builder — need
the same warm-up: make sure every item mentioned by a pattern exists in
the hierarchy, derive a vocabulary, and integer-code the patterns.  This
helper does it once and in one pass (the CLI used to re-probe the
hierarchy item by item on every invocation).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import EncodingError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary


def code_patterns(
    patterns: Mapping[tuple[str, ...], int],
    hierarchy: Hierarchy | None = None,
) -> tuple[dict[tuple[int, ...], int], Vocabulary]:
    """Vocabulary + integer-coded patterns for a decoded pattern mapping.

    ``hierarchy`` enables ``^name`` queries; when omitted, a flat
    hierarchy over the pattern items is used.  Items that appear in
    patterns but not in the hierarchy are registered as isolated roots
    — on a copy, so the caller's hierarchy is never mutated.  The
    patterns themselves serve as the ordering corpus: query answers
    depend only on the hierarchy edges, not on the exact item order.
    """
    from repro.hierarchy import build_vocabulary
    from repro.sequence import SequenceDatabase

    pattern_items = {item for pattern in patterns for item in pattern}
    if hierarchy is None:
        hierarchy = Hierarchy.flat(pattern_items)
    else:
        hierarchy = hierarchy.copy()
        for item in pattern_items:
            if item not in hierarchy:
                hierarchy.add_item(item)
    vocabulary = build_vocabulary(
        SequenceDatabase(list(patterns)), hierarchy
    )
    coded = {
        vocabulary.encode_sequence(pattern): freq
        for pattern, freq in patterns.items()
    }
    return coded, vocabulary


def merge_vocabularies(
    vocabularies: Sequence[Vocabulary], signed: bool = False
) -> Vocabulary:
    """Union vocabularies into one merged vocabulary.

    The incremental-build core shared by the in-memory
    :func:`merge_pattern_sets` and the streaming
    :func:`~repro.serve.writer.merge_stores`: hierarchies are unioned
    edge by edge, item frequencies (the generalized f-list) are summed
    per name, and the LASH total order is recomputed over the merged
    f-list — giving every item the id a fresh build over the combined
    corpora would have assigned.

    ``signed=True`` is the delta-to-delta merge mode: the summed
    frequencies may be negative or transiently exceed what any real
    corpus yields (a decrement grouped away from its matching
    increment), which can invert the ancestor-outranks-descendant
    property the LASH frequency order relies on.  Items are then
    ordered by hierarchy depth alone (ties by name) — a frequency-free
    total order that always satisfies the ancestors-first invariant.
    The order of a *delta* store's vocabulary is internal plumbing: the
    final fold into a base store recomputes the LASH order from the
    (net-positive) summed f-list, so grouping deltas first changes no
    bytes of the compacted result.

    Hierarchies must agree where they overlap: an edge present in one
    source is adopted globally, and conflicting edges (a cycle between
    sources) raise :class:`~repro.errors.HierarchyError` from the union.
    """
    if not vocabularies:
        raise EncodingError("merge needs at least one vocabulary")
    merged_hierarchy = Hierarchy()
    frequencies: dict[str, int] = {}
    for vocabulary in vocabularies:
        hierarchy = vocabulary.hierarchy
        for item in hierarchy:
            merged_hierarchy.add_item(item)
            for parent in hierarchy.parents(item):
                merged_hierarchy.add_edge(item, parent)
        for item_id in range(len(vocabulary)):
            name = vocabulary.name(item_id)
            merged_hierarchy.add_item(name)
            frequencies[name] = (
                frequencies.get(name, 0) + vocabulary.frequency(item_id)
            )

    from repro.hierarchy import build_vocabulary

    # hierarchy-only items (possible when a source vocabulary predates
    # this library persisting frequency-0 items) still need an id
    for item in merged_hierarchy:
        frequencies.setdefault(item, 0)
    if signed:
        order = sorted(
            frequencies,
            key=lambda item: (
                merged_hierarchy.depth(item),
                item.casefold(),
                item,
            ),
        )
        return Vocabulary(
            order, merged_hierarchy, [frequencies[i] for i in order]
        )
    return build_vocabulary((), merged_hierarchy, frequencies=frequencies)


def negate_vocabulary(vocabulary: Vocabulary) -> Vocabulary:
    """The same vocabulary — identical names, ids, hierarchy — with every
    frequency negated.

    Used to build *retire* deltas: micro-mining the retired sequences
    yields their positive f-list and pattern supports; negating both
    turns the result into a subtraction, so merging (base ⊕ negated
    delta) leaves exactly the f-list and supports of the retained
    corpus.  The id order is preserved verbatim — the delta store's
    vocabulary section must decode back to these exact ids for the
    pattern records to mean the same items.
    """
    names = [vocabulary.name(i) for i in range(len(vocabulary))]
    return Vocabulary(
        names,
        vocabulary.hierarchy,
        [-vocabulary.frequency(i) for i in range(len(vocabulary))],
    )


def merge_pattern_sets(
    sources: Sequence[tuple[Mapping[tuple[str, ...], int], Vocabulary]],
) -> tuple[dict[tuple[int, ...], int], Vocabulary]:
    """Combine decoded pattern sets into one coded set + merged vocabulary.

    The in-memory face of :func:`merge_vocabularies`: every pattern is
    re-encoded against the merged ids — the "remap ids, union postings,
    sum frequencies" step of ``lash index merge``.  Frequencies of
    patterns appearing in several sources add, exactly as document
    support adds over a disjoint union of corpora; the output is
    therefore identical to what a fresh build over the combined runs
    would produce.  (``lash index merge`` itself now streams through
    :func:`~repro.serve.writer.merge_stores` instead of materializing
    sources through this helper.)
    """
    if not sources:
        raise EncodingError("merge needs at least one pattern set")
    merged_vocabulary = merge_vocabularies(
        [vocabulary for _, vocabulary in sources]
    )
    combined: dict[tuple[str, ...], int] = {}
    for patterns, _ in sources:
        for pattern, freq in patterns.items():
            combined[pattern] = combined.get(pattern, 0) + freq
    coded = {
        merged_vocabulary.encode_sequence(pattern): freq
        for pattern, freq in combined.items()
    }
    return coded, merged_vocabulary


__all__ = [
    "code_patterns",
    "merge_pattern_sets",
    "merge_vocabularies",
    "negate_vocabulary",
]
