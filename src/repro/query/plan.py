"""Compiled query plans: bitset candidate pruning + positional matching.

The DP matcher in :mod:`repro.query.base` re-interprets the compiled
token list for every candidate pattern.  This module lowers a compiled
query **once** into a :class:`QueryPlan` and answers it with big-integer
bitmap algebra instead — the sequence analog of DMR-XPath's numbering
scheme, where a precomputed coordinate system turns structural traversal
into range predicates:

* the **chain** of a query is its membership-testing tokens (``item`` /
  ``under`` / ``oneof`` / ``notin``), each holding the admissible (or
  excluded) item-id set;
* everything between chain nodes — ``?``/``+``/``*``/``*{m,n}`` — folds
  into **consumption windows** ``(lo, hi)``: how many items may separate
  two neighboring chain nodes (plus a prefix window before the first
  node and a tail window after the last);
* a :class:`PositionSpace` lays every stored pattern out as a *field* of
  bit slots inside one big Python integer, separated by enough zero
  padding that in-field shifts can never leak into a neighbor.  Item
  occurrences (the store's positional postings) become set bits; window
  checks become shift-and-OR sweeps; a query is answered by propagating
  a reachable-position bitmap through the chain and reading off which
  fields keep a live bit.

The propagation computes exactly the reachable-set of the reference DP
restricted to consuming tokens, so the surviving fields *are* the
matches — no verification needed when positions are available.  Backends
without positions (version-1 store files) still benefit from the plan's
stage-1 **candidate mask** — the cheapest-first AND of the concrete
chain nodes' postings bitsets — and drop the survivors into the DP, the
verified fallback that keeps answers byte-identical by construction.

Plans hold per-backend bitmaps (pattern indexes are shard-local), so
they are cached per backend instance; see
:meth:`~repro.query.base.PatternSearchBase._plan_for`.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterator, Sequence

from repro.query.cost import CostEstimator, order_mask_nodes

Window = tuple[int, "int | None"]


def iter_bit_indexes(mask: int) -> Iterator[int]:
    """Set-bit indexes of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class PositionSpace:
    """Global bit-slot coordinates for every position of every pattern.

    Pattern ``i`` of length ``L_i`` owns slots ``[offsets[i],
    offsets[i] + L_i)``; fields are separated by ``pad`` dead slots
    where ``pad`` is the maximum pattern length, so any single shift of
    at most ``pad`` slots followed by an AND with :attr:`valid` stays
    within fields.  :attr:`starts` and :attr:`ends` mark each field's
    first and last slot — the anchors for prefix and tail windows.
    """

    __slots__ = (
        "offsets", "valid", "starts", "ends", "max_len", "pad", "total",
    )

    def __init__(
        self, lengths: Sequence[int], pad: int | None = None
    ) -> None:
        max_len = 1
        for length in lengths:
            if length > max_len:
                max_len = length
        if pad is None:
            pad = max_len
        elif pad < max_len:
            raise ValueError(
                f"pad {pad} below the maximum pattern length {max_len}: "
                "in-field shifts could leak into a neighboring field"
            )
        offsets: list[int] = []
        offset = 0
        for length in lengths:
            offsets.append(offset)
            offset += length + pad
        nbytes = ((offset + 7) >> 3) or 1
        valid = bytearray(nbytes)
        starts = bytearray(nbytes)
        ends = bytearray(nbytes)
        for base, length in zip(offsets, lengths):
            starts[base >> 3] |= 1 << (base & 7)
            last = base + length - 1
            ends[last >> 3] |= 1 << (last & 7)
            for slot in range(base, base + length):
                valid[slot >> 3] |= 1 << (slot & 7)
        self.offsets = offsets
        self.valid = int.from_bytes(bytes(valid), "little")
        self.starts = int.from_bytes(bytes(starts), "little")
        self.ends = int.from_bytes(bytes(ends), "little")
        self.max_len = max_len
        self.pad = pad
        self.total = offset

    def slice_fields(self, first: int, count: int) -> "PositionSpace":
        """A view of ``count`` consecutive fields starting at field
        ``first``, rebased to its own coordinates.  Masks extract with
        two big-int shifts instead of re-running the per-slot build
        loop — this is how a sharded handle hands each shard its slice
        of one shared build.  ``pad`` and ``max_len`` stay global: a
        larger-than-necessary pad still separates fields, and a
        larger ``max_len`` only admits extra shift distances whose
        landing bits the AND with :attr:`valid` clears, so window
        algebra over a slice equals a direct build with the same pad."""
        view = object.__new__(PositionSpace)
        if count <= 0:
            view.offsets = []
            view.valid = view.starts = view.ends = 0
            view.max_len = self.max_len
            view.pad = self.pad
            view.total = 0
            return view
        offsets = self.offsets
        lo = offsets[first]
        end = first + count
        hi = offsets[end] if end < len(offsets) else self.total
        width_mask = (1 << (hi - lo)) - 1
        view.offsets = [base - lo for base in offsets[first:end]]
        view.valid = (self.valid >> lo) & width_mask
        view.starts = (self.starts >> lo) & width_mask
        view.ends = (self.ends >> lo) & width_mask
        view.max_len = self.max_len
        view.pad = self.pad
        view.total = hi - lo
        return view

    # ------------------------------------------------------------------
    # window algebra
    # ------------------------------------------------------------------

    def _spread_up(self, bits: int, width: int) -> int:
        """OR of ``bits`` shifted up by every distance in ``[0, width]``,
        confined to fields.  Doubling sweep: after covering contiguous
        distances ``[0, c]`` a further shift by ``s <= c + 1`` extends
        the coverage to ``[0, c + s]`` — and every intermediate landing
        slot of an in-field target is itself in-field, so the AND with
        :attr:`valid` never breaks coverage."""
        covered = 0
        valid = self.valid
        while covered < width and bits:
            step = min(covered + 1, width - covered, self.pad)
            bits |= (bits << step) & valid
            covered += step
        return bits

    def _spread_down(self, bits: int, width: int) -> int:
        covered = 0
        valid = self.valid
        while covered < width and bits:
            step = min(covered + 1, width - covered, self.pad)
            bits |= (bits >> step) & valid
            covered += step
        return bits

    def shift_window_up(self, bits: int, window: Window) -> int:
        """Slots reachable from ``bits`` by advancing ``d`` positions
        for any ``d`` in the window (``hi=None`` unbounded).  Distances
        beyond ``max_len - 1`` cannot stay inside any field, so they
        clamp away instead of shifting."""
        lo, hi = window
        max_d = self.max_len - 1
        if lo > max_d:
            return 0
        if lo:
            bits = (bits << lo) & self.valid
        hi = max_d if hi is None else min(hi, max_d)
        return self._spread_up(bits, hi - lo)

    def shift_window_down(self, bits: int, window: Window) -> int:
        lo, hi = window
        max_d = self.max_len - 1
        if lo > max_d:
            return 0
        if lo:
            bits = (bits >> lo) & self.valid
        hi = max_d if hi is None else min(hi, max_d)
        return self._spread_down(bits, hi - lo)

    def field_indexes(self, bits: int) -> list[int]:
        """Ascending pattern indexes whose field holds any set bit."""
        out: list[int] = []
        offsets = self.offsets
        last = -1
        for slot in iter_bit_indexes(bits):
            idx = bisect_right(offsets, slot) - 1
            if idx != last:
                out.append(idx)
                last = idx
        return out


class QueryPlan:
    """One compiled query lowered for bitmap execution.

    Construction resolves the chain/window structure and the admissible
    id tuples (``under`` expands through the backend's memoized
    descendant sets).  The per-backend bitmaps — stage-1 candidate mask
    and, when positions exist, the final match-index list — build
    lazily on first execution and are retained, so a cached plan
    answers repeats (different σ, different limits) with no bitmap work
    at all.
    """

    __slots__ = (
        "chain",
        "windows",
        "min_len",
        "max_len",
        "unsatisfiable",
        "_lock",
        "_mask_ready",
        "_mask",
        "_matches_idx",
        "_verified_idx",
        "_estimate",
        "_strategy",
    )

    def __init__(self, compiled: Sequence, backend) -> None:
        chain: list[tuple[str, tuple[int, ...]]] = []
        windows: list[list] = [[0, 0]]
        unsatisfiable = False
        for kind, payload in compiled:
            if kind == "item":
                chain.append(("in", (payload,)))
                windows.append([0, 0])
            elif kind == "under":
                chain.append(("in", backend._descendants_or_self(payload)))
                windows.append([0, 0])
            elif kind == "oneof":
                if not payload:
                    unsatisfiable = True  # e.g. an unsatisfiable floor
                chain.append(("in", tuple(sorted(payload))))
                windows.append([0, 0])
            elif kind == "notin":
                chain.append(("notin", tuple(sorted(payload))))
                windows.append([0, 0])
            else:
                if kind == "any":
                    lo, hi = 1, 1
                elif kind == "plus":
                    lo, hi = 1, None
                elif kind == "span":
                    lo, hi = 0, None
                else:  # gap
                    lo, hi = payload
                window = windows[-1]
                window[0] += lo
                if hi is None:
                    window[1] = None
                elif window[1] is not None:
                    window[1] += hi
        self.chain = chain
        self.windows: list[Window] = [(w[0], w[1]) for w in windows]
        min_len = len(chain)
        max_len: int | None = len(chain)
        for lo, hi in self.windows:
            min_len += lo
            if hi is None:
                max_len = None
            elif max_len is not None:
                max_len += hi
        self.min_len = min_len
        self.max_len = max_len
        self.unsatisfiable = unsatisfiable
        self._lock = threading.Lock()
        self._mask_ready = False
        self._mask: int | None = None
        self._matches_idx: list[int] | None = None
        self._verified_idx: list[int] | None = None
        self._estimate = None
        self._strategy: str | None = None

    # ------------------------------------------------------------------
    # cost estimation + strategy choice
    # ------------------------------------------------------------------

    def estimate(self, backend):
        """The plan's :class:`~repro.query.cost.CostEstimate` against
        this backend, computed once and retained (plans are per-backend,
        and the plan-cache key includes the planner knobs, so the
        estimate can never go stale under knob flips).

        Also memoized in the backend's ``_cost_stat_cache`` keyed by
        the plan's structure: a plan evicted from (or cleared out of)
        the plan cache and later recompiled picks its price back up
        instead of re-walking postings stats — estimates depend only on
        structure, the stat cache, and the plan-order knob, all of
        which live exactly as long as the backend."""
        est = self._estimate
        if est is None:
            key = (
                "estimate",
                tuple(self.chain),
                tuple(self.windows),
                getattr(backend, "_plan_order", "cost"),
                self.unsatisfiable,
            )
            cache = backend._cost_stat_cache
            est = cache.get(key)
            if est is None:
                est = CostEstimator(backend).estimate(self)
                cache[key] = est
            self._estimate = est
        return est

    def strategy(self, backend) -> str:
        """Execution strategy for a chain query: the estimate's pick,
        unless the backend forces one (``_plan_strategy``, a test and
        benchmark hook).  ``exact`` silently degrades to ``pruned``
        when the backend has no positions — every strategy answers
        identically, only the work profile differs."""
        chosen = self._strategy
        if chosen is None:
            forced = getattr(backend, "_plan_strategy", None)
            chosen = forced if forced is not None else self.estimate(
                backend
            ).strategy
            if chosen == "exact" and not backend._has_positions():
                chosen = "pruned"
            self._strategy = chosen
        return chosen

    def verified_indexes(self, backend, compiled) -> list[int]:
        """Ascending match indexes via mask-prune + DP-verify, retained
        on the plan.  The cost planner routes skewed queries here *on
        positional backends* — DP-verifying a rare node's few candidates
        beats decoding a ubiquitous node's every occurrence into the
        exact path's bitmaps — and memoizing keeps the steady-state
        profile as flat as the exact path's retained match indexes."""
        cached = self._verified_idx
        if cached is not None:
            return cached
        mask = self.candidate_mask(backend)
        verified = [
            idx
            for idx in iter_bit_indexes(mask or 0)
            if backend._matches(compiled, backend._pattern_at(idx)[0])
        ]
        self._verified_idx = verified
        return verified

    # ------------------------------------------------------------------
    # stage 1: bitset candidate pruning
    # ------------------------------------------------------------------

    def candidate_mask(self, backend) -> int | None:
        """Pattern-index bitmask of candidates surviving the AND of the
        concrete chain nodes' postings bitsets, cheapest (smallest
        *estimated postings volume*) first with an early exit at zero;
        nodes whose postings dwarf the cheapest node's are skipped
        entirely (the mask stays a verified superset — see
        :func:`~repro.query.cost.order_mask_nodes`).  ``None`` when no
        chain node restricts candidates (all-negative queries, or nodes
        admitting the whole vocabulary) — the caller falls back to a
        length-filtered scan, exactly like the legacy selector."""
        if self._mask_ready:
            return self._mask
        with self._lock:
            return self._candidate_mask_locked(backend)

    # ------------------------------------------------------------------
    # stage 2: exact positional matching
    # ------------------------------------------------------------------

    def _node_position_map(self, backend, space: PositionSpace, node) -> int:
        """Bitmap of slots whose item the chain node admits."""
        node_kind, ids = node
        if node_kind == "in" and len(ids) == len(backend.vocabulary):
            return space.valid  # every slot holds *some* item
        bits = bytearray((space.valid.bit_length() + 7) >> 3 or 1)
        offsets = space.offsets
        for item in ids:
            indexes, positions = backend._positional_postings_for(item)
            for idx, entry in zip(indexes, positions):
                base = offsets[idx]
                for position in entry:
                    slot = base + position
                    bits[slot >> 3] |= 1 << (slot & 7)
        mapped = int.from_bytes(bytes(bits), "little")
        if node_kind == "notin":
            return space.valid & ~mapped
        return mapped

    def match_indexes(self, backend) -> list[int]:
        """Ascending indexes of the patterns matching the query —
        computed once per (plan, backend) by chain propagation, exact
        for every token kind, then retained."""
        cached = self._matches_idx
        if cached is not None:
            return cached
        with self._lock:
            if self._matches_idx is None:
                self._matches_idx = self._compute_matches(backend)
        return self._matches_idx

    def _compute_matches(self, backend) -> list[int]:
        space = backend._position_space()
        if not space.offsets:
            return []
        mask = self._candidate_mask_locked(backend)
        if mask == 0:
            return []
        reach = 0
        for k, node in enumerate(self.chain):
            lo, hi = self.windows[k]
            if k == 0:
                source = space.shift_window_up(space.starts, (lo, hi))
            else:
                source = space.shift_window_up(
                    reach, (lo + 1, None if hi is None else hi + 1)
                )
            reach = source & self._node_position_map(backend, space, node)
            if not reach:
                return []
        anchor = space.shift_window_down(space.ends, self.windows[-1])
        return space.field_indexes(reach & anchor)

    def _candidate_mask_locked(self, backend) -> int | None:
        # Caller holds self._lock (which is not reentrant).
        if self._mask_ready:
            return self._mask
        vocab_size = len(backend.vocabulary)
        usable = [
            ids
            for node_kind, ids in self.chain
            if node_kind == "in" and len(ids) < vocab_size
        ]
        mask: int | None = None
        if usable:
            order = getattr(backend, "_plan_order", "cost")
            if order == "cardinality":
                # the legacy ordering: id-set size says nothing about
                # postings volume, kept as a forcible reference
                usable.sort(key=len)
                ordered = usable
            else:
                # node sizes are a property of the (immutable) backend,
                # not the plan — share the estimator's memo so cold
                # compiles don't re-sum hundreds of per-id estimates
                stat_cache = backend._cost_stat_cache
                sized = []
                for ids in usable:
                    size = stat_cache.get(("node", ids))
                    if size is None:
                        size = sum(
                            backend._postings_size_estimate(item)
                            for item in ids
                        )
                        stat_cache[("node", ids)] = size
                    sized.append((size, ids))
                ordered = [
                    ids for _, ids in order_mask_nodes(sized, order)[0]
                ]
            n_bytes = (backend._num_patterns() + 7) >> 3
            for ids in ordered:
                buf = bytearray(n_bytes)
                for item in ids:
                    for idx in backend._postings_for(item):
                        buf[idx >> 3] |= 1 << (idx & 7)
                node_mask = int.from_bytes(bytes(buf), "little")
                mask = node_mask if mask is None else mask & node_mask
                if not mask:
                    break
        self._mask = mask
        self._mask_ready = True
        return mask

    # ------------------------------------------------------------------
    # wildcard-only queries
    # ------------------------------------------------------------------

    def length_scan_indexes(self, backend) -> list[int]:
        """For an empty chain (wildcards and gaps only) matching is a
        pure length-range test: the per-token consumptions range over
        full integer intervals, so their sum covers ``[min_len,
        max_len]`` with no holes."""
        indexes: list[int] = []
        for length, group in backend._length_groups().items():
            if length >= self.min_len and (
                self.max_len is None or length <= self.max_len
            ):
                indexes.extend(group)
        indexes.sort()
        return indexes


__all__ = ["PositionSpace", "QueryPlan", "iter_bit_indexes"]
