"""The pattern index: hierarchy-aware wildcard search over mined patterns.

Built once from a :class:`~repro.core.result.MiningResult` (or a raw
pattern→frequency mapping plus its vocabulary), the index answers
Netspeak-style queries (see :mod:`repro.query.tokens`), ranked by
frequency.

Search is accelerated by an inverted index from item id to the patterns
containing it: the matcher only runs on the postings of the query's most
selective concrete token.  ``^name`` tokens union the postings of the
item's descendants; queries with no concrete token fall back to a
length-filtered scan.

The matching machinery itself lives in
:class:`~repro.query.base.PatternSearchBase` and is shared with the
on-disk :class:`~repro.serve.store.PatternStore`; this class is the
all-in-memory backend.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.hierarchy.vocabulary import Vocabulary
from repro.query.base import (
    Pattern,
    PatternSearchBase,
    QueryMatch,
    rank_patterns,
)


class PatternIndex(PatternSearchBase):
    """Immutable in-memory index over a set of mined generalized sequences.

    Parameters
    ----------
    patterns:
        Integer-coded pattern → frequency, as produced by any miner in
        this library.
    vocabulary:
        The vocabulary the patterns are coded against.

    Example
    -------
    >>> index = PatternIndex.from_result(result)
    >>> index.search("the ^ADJ ?", limit=5)
    >>> index.frequency("a", "B")
    3
    """

    def __init__(
        self, patterns: Mapping[Pattern, int], vocabulary: Vocabulary
    ) -> None:
        super().__init__()
        self._vocabulary = vocabulary
        self._patterns: list[tuple[Pattern, int]] = rank_patterns(patterns)
        self._frequencies: dict[Pattern, int] = dict(patterns)
        self._postings: dict[int, list[int]] = {}
        self._positions: dict[int, list[tuple[int, ...]]] = {}
        self._by_length: dict[int, list[int]] = {}
        for idx, (pattern, _) in enumerate(self._patterns):
            self._by_length.setdefault(len(pattern), []).append(idx)
            positions_by_item: dict[int, list[int]] = {}
            for position, item in enumerate(pattern):
                positions_by_item.setdefault(item, []).append(position)
            for item, positions in positions_by_item.items():
                self._postings.setdefault(item, []).append(idx)
                self._positions.setdefault(item, []).append(tuple(positions))

    @classmethod
    def from_result(cls, result) -> "PatternIndex":
        """Index a :class:`~repro.core.result.MiningResult`."""
        return cls(result.patterns, result.vocabulary)

    # ------------------------------------------------------------------
    # storage primitives (see PatternSearchBase)
    # ------------------------------------------------------------------

    def _vocabulary_instance(self) -> Vocabulary:
        return self._vocabulary

    def _num_patterns(self) -> int:
        return len(self._patterns)

    def _pattern_at(self, idx: int) -> tuple[Pattern, int]:
        return self._patterns[idx]

    def _postings_for(self, item_id: int) -> Sequence[int]:
        return self._postings.get(item_id, ())

    def _has_positions(self) -> bool:
        return True

    def _positional_postings_for(self, item_id: int):
        return (
            self._postings.get(item_id, ()),
            self._positions.get(item_id, ()),
        )

    def _length_groups(self) -> dict[int, Sequence[int]]:
        return self._by_length

    def _find_coded(self, coded: Pattern) -> int | None:
        # O(1) via the retained mapping instead of a postings scan.
        return self._frequencies.get(coded)


__all__ = ["PatternIndex", "QueryMatch"]
