"""The pattern index: hierarchy-aware wildcard search over mined patterns.

Built once from a :class:`~repro.core.result.MiningResult` (or a raw
pattern→frequency mapping plus its vocabulary), the index answers
Netspeak-style queries (see :mod:`repro.query.tokens`), ranked by
frequency.

Search is accelerated by an inverted index from item id to the patterns
containing it: the matcher only runs on the postings of the query's most
selective concrete token.  ``^name`` tokens union the postings of the
item's descendants; queries with no concrete token fall back to a
length-filtered scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import InvalidParameterError
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.tokens import (
    AnyToken,
    ItemToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
    normalize_query,
)

Pattern = tuple[int, ...]


@dataclass(frozen=True)
class QueryMatch:
    """One search hit: the decoded pattern and its mined frequency."""

    pattern: tuple[str, ...]
    frequency: int

    def render(self) -> str:
        return " ".join(self.pattern)

    def __repr__(self) -> str:
        return f"QueryMatch({self.render()!r}, {self.frequency})"


class PatternIndex:
    """Immutable index over a set of mined generalized sequences.

    Parameters
    ----------
    patterns:
        Integer-coded pattern → frequency, as produced by any miner in
        this library.
    vocabulary:
        The vocabulary the patterns are coded against.

    Example
    -------
    >>> index = PatternIndex.from_result(result)
    >>> index.search("the ^ADJ ?", limit=5)
    >>> index.frequency("a", "B")
    3
    """

    def __init__(
        self, patterns: Mapping[Pattern, int], vocabulary: Vocabulary
    ) -> None:
        self._vocabulary = vocabulary
        # deterministic order: most frequent first, ties by coded pattern
        self._patterns: list[tuple[Pattern, int]] = sorted(
            patterns.items(), key=lambda kv: (-kv[1], kv[0])
        )
        self._frequencies: dict[Pattern, int] = dict(patterns)
        self._postings: dict[int, list[int]] = {}
        self._by_length: dict[int, list[int]] = {}
        for idx, (pattern, _) in enumerate(self._patterns):
            self._by_length.setdefault(len(pattern), []).append(idx)
            for item in set(pattern):
                self._postings.setdefault(item, []).append(idx)
        self._children: dict[int, list[int]] = {
            i: [] for i in range(len(vocabulary))
        }
        for item_id in range(len(vocabulary)):
            for parent in vocabulary.parent_ids(item_id):
                self._children[parent].append(item_id)
        self._descendants_cache: dict[int, tuple[int, ...]] = {}

    @classmethod
    def from_result(cls, result) -> "PatternIndex":
        """Index a :class:`~repro.core.result.MiningResult`."""
        return cls(result.patterns, result.vocabulary)

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[QueryMatch]:
        vocabulary = self._vocabulary
        for pattern, frequency in self._patterns:
            yield QueryMatch(vocabulary.decode_sequence(pattern), frequency)

    def __contains__(self, names: object) -> bool:
        try:
            coded = self._vocabulary.encode_sequence(tuple(names))  # type: ignore[arg-type]
        except Exception:
            return False
        return coded in self._frequencies

    def frequency(self, *names: str) -> int:
        """Mined frequency of an exact pattern; 0 when absent."""
        try:
            coded = self._vocabulary.encode_sequence(names)
        except Exception:
            return 0
        return self._frequencies.get(coded, 0)

    def top(self, n: int = 10) -> list[QueryMatch]:
        """The ``n`` most frequent patterns in the index."""
        vocabulary = self._vocabulary
        return [
            QueryMatch(vocabulary.decode_sequence(p), f)
            for p, f in self._patterns[:n]
        ]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str | QueryToken | tuple | list,
        limit: int | None = None,
    ) -> list[QueryMatch]:
        """All indexed patterns matching the query, most frequent first.

        ``query`` is a string in the wildcard syntax or a sequence of
        :class:`~repro.query.tokens.QueryToken`.  Unknown item names raise
        :class:`~repro.errors.UnknownItemError`.
        """
        compiled = self._compile(normalize_query(query))
        candidates = self._candidates(compiled)
        vocabulary = self._vocabulary
        matches: list[QueryMatch] = []
        for idx in candidates:
            pattern, frequency = self._patterns[idx]
            if self._matches(compiled, pattern):
                matches.append(
                    QueryMatch(vocabulary.decode_sequence(pattern), frequency)
                )
                if limit is not None and len(matches) >= limit:
                    break
        return matches

    def count(self, query) -> int:
        """Number of indexed patterns matching the query."""
        return len(self.search(query))

    def total_frequency(self, query) -> int:
        """Sum of frequencies over all matches (n-gram-viewer style mass)."""
        return sum(match.frequency for match in self.search(query))

    def slot_fillers(
        self, query, slot: int
    ) -> list[tuple[str, int]]:
        """Aggregate the items filling one wildcard slot of a fixed-length
        query, with their total frequency (most frequent first).

        Only queries without ``*``/``+`` have an unambiguous alignment, so
        span tokens are rejected.  Typical use: *which items appear after
        "NOUN lives in"?* → ``slot_fillers("NOUN lives in ?", 3)``.
        """
        tokens = normalize_query(query)
        if any(isinstance(t, (SpanToken, PlusToken)) for t in tokens):
            raise InvalidParameterError(
                "slot_fillers requires a fixed-length query (no '*'/'+')"
            )
        if not 0 <= slot < len(tokens):
            raise InvalidParameterError(
                f"slot {slot} out of range for a {len(tokens)}-token query"
            )
        fillers: dict[str, int] = {}
        for match in self.search(tokens):
            name = match.pattern[slot]
            fillers[name] = fillers.get(name, 0) + match.frequency
        return sorted(fillers.items(), key=lambda kv: (-kv[1], kv[0]))

    # ------------------------------------------------------------------
    # hierarchy navigation
    # ------------------------------------------------------------------

    def generalizations_of(self, names) -> list[QueryMatch]:
        """Indexed patterns that are itemwise generalizations of ``names``
        (same length, each item an ancestor-or-self), including the pattern
        itself when indexed."""
        vocabulary = self._vocabulary
        coded = vocabulary.encode_sequence(tuple(names))
        hits: list[QueryMatch] = []
        for idx in self._by_length.get(len(coded), ()):
            pattern, frequency = self._patterns[idx]
            if all(
                vocabulary.generalizes_to(s, p)
                for s, p in zip(coded, pattern)
            ):
                hits.append(
                    QueryMatch(vocabulary.decode_sequence(pattern), frequency)
                )
        return hits

    def specializations_of(self, names) -> list[QueryMatch]:
        """Indexed patterns that are itemwise specializations of ``names``
        (same length, each item a descendant-or-self), including the
        pattern itself when indexed."""
        vocabulary = self._vocabulary
        coded = vocabulary.encode_sequence(tuple(names))
        hits: list[QueryMatch] = []
        for idx in self._by_length.get(len(coded), ()):
            pattern, frequency = self._patterns[idx]
            if all(
                vocabulary.generalizes_to(p, s)
                for s, p in zip(coded, pattern)
            ):
                hits.append(
                    QueryMatch(vocabulary.decode_sequence(pattern), frequency)
                )
        return hits

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _descendants_or_self(self, item_id: int) -> tuple[int, ...]:
        cached = self._descendants_cache.get(item_id)
        if cached is not None:
            return cached
        seen: set[int] = set()
        stack = [item_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children[current])
        result = tuple(sorted(seen))
        self._descendants_cache[item_id] = result
        return result

    def _compile(
        self, tokens: tuple[QueryToken, ...]
    ) -> list[tuple[str, int]]:
        """Resolve item names to ids once, validating the whole query
        upfront.  Compiled form: ``(kind, id-or--1)`` pairs."""
        compiled: list[tuple[str, int]] = []
        for token in tokens:
            if isinstance(token, ItemToken):
                compiled.append(("item", self._vocabulary.id(token.name)))
            elif isinstance(token, UnderToken):
                compiled.append(("under", self._vocabulary.id(token.name)))
            elif isinstance(token, AnyToken):
                compiled.append(("any", -1))
            elif isinstance(token, PlusToken):
                compiled.append(("plus", -1))
            else:
                compiled.append(("span", -1))
        return compiled

    def _candidates(self, compiled: list[tuple[str, int]]) -> list[int]:
        """Candidate pattern indexes, ascending (= frequency-descending),
        from the most selective concrete token's postings."""
        best: list[int] | None = None
        for kind, item in compiled:
            if kind == "item":
                postings = self._postings.get(item, [])
            elif kind == "under":
                merged: set[int] = set()
                for descendant in self._descendants_or_self(item):
                    merged.update(self._postings.get(descendant, ()))
                postings = sorted(merged)
            else:
                continue
            if best is None or len(postings) < len(best):
                best = postings
        if best is not None:
            return best
        # wildcard-only query: filter by achievable lengths
        fixed = sum(1 for kind, _ in compiled if kind != "span")
        elastic = any(kind in ("span", "plus") for kind, _ in compiled)
        indexes: list[int] = []
        for length, idxs in self._by_length.items():
            if length == fixed or (elastic and length >= fixed):
                indexes.extend(idxs)
        return sorted(indexes)

    def _matches(
        self, compiled: list[tuple[str, int]], pattern: Pattern
    ) -> bool:
        """Regex-style DP over token positions × pattern positions."""
        vocabulary = self._vocabulary
        n_items = len(pattern)
        # reachable[j] = True if a prefix of tokens consumed pattern[:j]
        reachable = [True] + [False] * n_items
        for kind, target in compiled:
            nxt = [False] * (n_items + 1)
            if kind == "span":
                # zero or more: propagate the earliest reachable point right
                running = False
                for j in range(n_items + 1):
                    running = running or reachable[j]
                    nxt[j] = running
            elif kind == "plus":
                running = False
                for j in range(1, n_items + 1):
                    running = running or reachable[j - 1]
                    nxt[j] = running
            else:
                for j in range(n_items):
                    if not reachable[j]:
                        continue
                    item = pattern[j]
                    if kind == "any":
                        nxt[j + 1] = True
                    elif kind == "item":
                        if item == target:
                            nxt[j + 1] = True
                    else:  # under
                        if vocabulary.generalizes_to(item, target):
                            nxt[j + 1] = True
            reachable = nxt
            if not any(reachable):
                return False
        return reachable[n_items]


__all__ = ["PatternIndex", "QueryMatch"]
