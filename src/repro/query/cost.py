"""Per-query cost estimation for the serving-side planner.

The candidate-selection machinery in :mod:`repro.query.plan` used to
order stage-1 postings intersections by raw id-set size — one id per
node tells you nothing about how many *patterns* that id posts to.  This
module prices a compiled :class:`~repro.query.plan.QueryPlan` against a
concrete backend using store statistics that are O(1) per item to read
(:meth:`~repro.query.base.PatternSearchBase._postings_size_estimate`):

* per chain node, the summed estimated postings size of its admissible
  (or, for negations, excluded) id set — the cost of AND-ing that node
  into the candidate mask, and the node ordering key;
* the pattern-length distribution — how many patterns a pure
  length-range scan would visit, and the size of the positional bitmap
  the exact path sweeps;
* a selectivity product over the intersected nodes — the expected
  number of candidates the DP verifier would have to check.

From those it picks the cheapest *correct* execution strategy:

``"exact"``
    positional bitmap propagation (positions required) — heavy when any
    chain node admits a high-frequency item (its every occurrence is
    decoded into the position map), near-free on repeats (match indexes
    are retained on the plan);
``"pruned"``
    AND the cheap nodes' postings bitsets, DP-verify survivors — wins
    when one node is rare and another ubiquitous: the ubiquitous node is
    skipped entirely instead of decoded;
``"scan"``
    length-filtered scan + DP — the fallback that beats building any
    mask when no node is selective (e.g. an ``?@N`` floor admitting
    most of the vocabulary on a position-less backend).

Every strategy yields byte-identical answers by construction (masks are
supersets, the DP verifies, the exact path is exact), so the estimate
can only change *speed*; the differential harness forces each strategy
and every node ordering to prove it.

The same estimate is the admission-control currency:
:class:`~repro.serve.service.QueryService` compares
:attr:`CostEstimate.cost` against its ceiling/budget thresholds, the
router scales its fan-out deadline with it, and the LRU weighs it when
choosing eviction victims.  Constants live in
:mod:`repro.analysis.costmodel` so all layers price work identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.costmodel import (
    COST_BITMAP_BYTE,
    COST_DP_CELL,
    COST_LENGTH_SCAN,
    COST_PATTERN_DECODE,
    COST_POSTINGS_ENTRY,
    NODE_SKIP_FACTOR,
)

#: candidate-mask node orderings the planner can be forced into (tests
#: and benchmarks flip these; answers must not change):
#: ``cost`` — ascending estimated postings size, oversized nodes
#: skipped; ``cardinality`` — the legacy ascending id-set size, nothing
#: skipped; ``worst`` — descending estimated postings size, nothing
#: skipped (the adversarial ordering).
PLAN_ORDERS = ("cost", "cardinality", "worst")

#: execution strategies a plan with a non-empty chain can be forced
#: into (``None`` lets the estimate decide)
PLAN_STRATEGIES = ("exact", "pruned", "scan")


@dataclass(frozen=True)
class CostEstimate:
    """One query's predicted execution price, in abstract work units.

    ``strategy`` is what the planner would run absent a forced
    override: ``exact``/``pruned``/``scan`` for chain queries,
    ``wildcard`` for chainless ones, ``unsatisfiable`` when the query
    can match nothing.  ``candidates`` is the expected DP-verification
    set size; ``nodes`` carries per-concrete-node postings estimates
    (``skipped`` marks nodes the cost ordering leaves out of the mask).
    """

    cost: float
    strategy: str
    candidates: int
    scan_candidates: int
    nodes: tuple[dict, ...] = ()
    shards: int = 1

    def to_dict(self) -> dict:
        return {
            "cost": round(self.cost, 1),
            "strategy": self.strategy,
            "candidates": self.candidates,
            "scan_candidates": self.scan_candidates,
            "nodes": [dict(node) for node in self.nodes],
            "shards": self.shards,
        }

    def to_wire(self) -> dict:
        """Integer-only projection for the socket protocol (the wire
        format has no float type; work units round to ints losslessly
        enough for admission thresholds)."""
        return {
            "cost": int(round(self.cost)),
            "strategy": self.strategy,
            "candidates": self.candidates,
            "scan_candidates": self.scan_candidates,
            "shards": self.shards,
        }


def combine_estimates(estimates) -> CostEstimate:
    """Fold per-shard estimates into one handle-level estimate: costs
    and candidate counts add (shards partition the patterns); the
    strategy is reported when the shards agree, ``"mixed"`` otherwise
    (per-shard statistics can legitimately pick different plans)."""
    estimates = [est for est in estimates if est is not None]
    if not estimates:
        return CostEstimate(
            cost=0.0, strategy="unsatisfiable", candidates=0,
            scan_candidates=0,
        )
    strategies = {est.strategy for est in estimates}
    nodes: tuple[dict, ...] = ()
    if estimates and all(
        len(est.nodes) == len(estimates[0].nodes) for est in estimates
    ):
        nodes = tuple(
            {
                "kind": group[0]["kind"],
                "ids": group[0]["ids"],
                "postings": sum(node["postings"] for node in group),
                "skipped": all(node["skipped"] for node in group),
            }
            for group in zip(*(est.nodes for est in estimates))
        )
    return CostEstimate(
        cost=sum(est.cost for est in estimates),
        strategy=strategies.pop() if len(strategies) == 1 else "mixed",
        candidates=sum(est.candidates for est in estimates),
        scan_candidates=sum(est.scan_candidates for est in estimates),
        nodes=nodes,
        shards=sum(est.shards for est in estimates),
    )


def order_mask_nodes(sized: list, order: str) -> tuple[list, list]:
    """Order ``(estimated postings, ids)`` pairs for mask intersection
    and split off the ones the ``cost`` ordering skips.  Returns
    ``(included, skipped)`` — both in intersection order.  Skipping is
    sound because the mask is an AND of postings supersets: any node
    subset still yields a superset of the true matches, which the DP
    (or the exact propagation) then verifies."""
    ranked = sorted(sized, key=lambda pair: (pair[0], len(pair[1])))
    if order == "worst":
        ranked.reverse()
        return ranked, []
    if order == "cardinality":
        return sorted(sized, key=lambda pair: len(pair[1])), []
    ceiling = NODE_SKIP_FACTOR * max(ranked[0][0], 1)
    included = [pair for pair in ranked if pair[0] <= ceiling]
    skipped = [pair for pair in ranked if pair[0] > ceiling]
    return included, skipped


class CostEstimator:
    """Prices a compiled plan against one backend's store statistics."""

    def __init__(self, backend) -> None:
        self._backend = backend

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def node_entries(self, ids) -> int:
        """Summed estimated postings size of a node's id set.

        Memoized per backend: pricing a ``^Category`` node sums
        hundreds of per-id estimates, and the sum is a property of the
        (immutable) store, not of the query."""
        backend = self._backend
        cache = backend._cost_stat_cache
        key = ("node", ids)
        size = cache.get(key)
        if size is None:
            size = sum(
                backend._postings_size_estimate(item) for item in ids
            )
            cache[key] = size
        return size

    def _length_stats(self) -> tuple[int, int, float]:
        """``(pattern count, max length, average length)``, memoized."""
        cache = self._backend._cost_stat_cache
        stats = cache.get(("lengths",))
        if stats is None:
            total = 0
            count = 0
            longest = 1
            for length, group in self._backend._length_groups().items():
                n = len(group)
                count += n
                total += length * n
                if length > longest:
                    longest = length
            stats = (count, longest, (total / count if count else 1.0))
            cache[("lengths",)] = stats
        return stats

    def _scan_count(self, plan) -> int:
        """Patterns a length-range scan for this plan would visit,
        memoized per (min, max) length window."""
        cache = self._backend._cost_stat_cache
        key = ("scan", plan.min_len, plan.max_len)
        count = cache.get(key)
        if count is None:
            count = 0
            for length, group in self._backend._length_groups().items():
                if length >= plan.min_len and (
                    plan.max_len is None or length <= plan.max_len
                ):
                    count += len(group)
            cache[key] = count
        return count

    # ------------------------------------------------------------------
    # the estimate
    # ------------------------------------------------------------------

    def estimate(self, plan) -> CostEstimate:
        if plan.unsatisfiable:
            return CostEstimate(
                cost=1.0, strategy="unsatisfiable", candidates=0,
                scan_candidates=0,
            )
        backend = self._backend
        n_patterns, max_len, avg_len = self._length_stats()
        scan_count = self._scan_count(plan)
        if not plan.chain:
            # chainless queries read length groups straight through —
            # no DP, no mask, just pattern decodes
            return CostEstimate(
                cost=1.0 + scan_count * COST_PATTERN_DECODE,
                strategy="wildcard",
                candidates=scan_count,
                scan_candidates=scan_count,
            )

        vocab_size = len(backend.vocabulary)
        node_stats: list[dict] = []
        sized: list[tuple[int, tuple[int, ...]]] = []
        exact_decode = 0  # postings entries the exact path decodes
        for node_kind, ids in plan.chain:
            whole = node_kind == "in" and len(ids) == vocab_size
            entries = 0 if whole else self.node_entries(ids)
            node_stats.append(
                {
                    "kind": node_kind,
                    "ids": len(ids),
                    "postings": entries,
                    "skipped": False,
                }
            )
            exact_decode += entries
            if node_kind == "in" and not whole:
                sized.append((entries, ids))

        order = getattr(backend, "_plan_order", "cost")
        candidates = float(scan_count)
        mask_cost = 0.0
        if sized:
            included, skipped = order_mask_nodes(sized, order)
            # mark skipped nodes in the per-node stats by their id
            # tuple (chain nodes can repeat an id set; marking all
            # occurrences is the conservative, readable choice)
            skipped_sets = {ids for _, ids in skipped}
            for stat, (node_kind, ids) in zip(node_stats, plan.chain):
                if node_kind == "in" and ids in skipped_sets:
                    stat["skipped"] = True
            mask_cost = (
                sum(entries for entries, _ in included) * COST_POSTINGS_ENTRY
            )
            candidates = float(min(entries for entries, _ in included))
            for entries, _ in included[1:]:
                candidates *= min(1.0, entries / max(1, n_patterns))
            candidates = min(candidates, float(scan_count))

        query_width = len(plan.chain) + len(plan.windows)
        dp_unit = (
            query_width * avg_len * COST_DP_CELL + COST_PATTERN_DECODE
        )
        pruned_cost = mask_cost + candidates * dp_unit
        scan_cost = 1.0 + scan_count * (
            dp_unit if plan.chain else COST_LENGTH_SCAN
        )

        if backend._has_positions():
            # the exact path decodes every chain node's positional
            # postings into slot bitmaps, then sweeps the whole position
            # space once per node (size memoized with the other stats)
            space_bytes = backend._cost_stat_cache.get(("space",))
            if space_bytes is None:
                space_bytes = (
                    sum(
                        (length + max_len) * len(group)
                        for length, group in backend._length_groups().items()
                    )
                    // 8
                ) or 1
                backend._cost_stat_cache[("space",)] = space_bytes
            exact_cost = (
                mask_cost
                + exact_decode * COST_POSTINGS_ENTRY
                + len(plan.chain) * space_bytes * COST_BITMAP_BYTE
            )
            # all three executions are correct here; ties prefer the
            # earlier option (exact: no per-candidate DP cliff)
            options = [("exact", exact_cost)]
            if sized:
                options.append(("pruned", pruned_cost))
            options.append(("scan", scan_cost))
            chosen, cost = min(options, key=lambda pair: pair[1])
        elif sized and pruned_cost <= scan_cost:
            chosen, cost = "pruned", pruned_cost
        else:
            chosen, cost = "scan", scan_cost

        return CostEstimate(
            cost=cost,
            strategy=chosen,
            candidates=int(candidates),
            scan_candidates=scan_count,
            nodes=tuple(node_stats),
        )


__all__ = [
    "CostEstimate",
    "CostEstimator",
    "combine_estimates",
    "order_mask_nodes",
    "PLAN_ORDERS",
    "PLAN_STRATEGIES",
]
