"""Command-line interface: ``lash generate | stats | flist | mine | compare``.

Examples
--------
Generate a synthetic corpus and mine it::

    lash generate text --sentences 2000 --out /tmp/nyt
    lash mine --db /tmp/nyt/corpus.txt --hierarchy /tmp/nyt/hierarchy-CLP.txt \
         --sigma 20 --gamma 0 --lam 3 --top 20

Persist the generalized f-list once, reuse it across parameter sweeps
(paper Sec. 3.4)::

    lash flist --db db.txt --hierarchy h.txt --out flist.tsv
    lash mine --db db.txt --hierarchy h.txt --flist flist.tsv --sigma 50

Compare two algorithms on the same input::

    lash mine --db db.txt --hierarchy h.txt --algorithm naive --out naive.tsv
    lash mine --db db.txt --hierarchy h.txt --algorithm lash  --out lash.tsv
    lash compare naive.tsv lash.tsv

Mine once, then serve queries over HTTP from a persistent binary store::

    lash mine --db db.txt --hierarchy h.txt --sigma 20 --out patterns.tsv
    lash index build --patterns patterns.tsv --hierarchy h.txt \
         --out patterns.store
    lash serve --store patterns.store --port 8080
    curl 'http://127.0.0.1:8080/query?q=the+%5EADJ+%3F'
    lash query --patterns patterns.tsv --hierarchy h.txt \
         '(big|small|^ADJ)@50 ?'      # disjunction + frequency floor
    lash query --patterns patterns.tsv --hierarchy h.txt \
         --min-freq 20 'the !^ADJ *{0,2} house'   # negation, bounded gap,
                                                  # per-query σ override

Shard large stores across files, and fold new mining runs into an
existing index without re-mining::

    lash index build --patterns patterns.tsv --out patterns.shards \
         --shards 8
    lash index merge patterns.shards new-run.store --out merged.shards \
         --shards 8
    lash serve --store merged.shards

Or compact deltas into the *live* shard set without restarting readers
(atomic manifest swap; ``lash serve --compact-spool DIR`` does the same
from a background thread)::

    lash index compact --store merged.shards new-run.store
    lash index compact --store merged.shards --shards 16   # rebalance

Serve one shard set from many processes — shard servers own slices,
the router fans out and merges (answers byte-identical to ``serve``)::

    lash shard-serve --store merged.shards --shards 0,1 --port 7601 \
         --http-port 7611
    lash shard-serve --store merged.shards --shards 2,3 --port 7602 \
         --http-port 7612
    lash route --cluster cluster.json --port 8080
    lash index info --store merged.shards --advise   # pick a shard count

All ``--db`` / ``--hierarchy`` / ``--out`` paths accept ``.gz``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis import filter_result
from repro.baselines import (
    GspAlgorithm,
    MgFsm,
    NaiveAlgorithm,
    SemiNaiveAlgorithm,
)
from repro.core import ClosedLash, Lash, MiningParams
from repro.datasets import (
    EventLogConfig,
    ProductDataConfig,
    TextCorpusConfig,
    generate_event_log,
    generate_product_data,
    generate_text_corpus,
    hierarchy_stats,
)
from repro.io import (
    read_database,
    read_hierarchy,
    read_patterns,
    read_vocabulary,
    write_patterns,
    write_vocabulary,
)


def _print_row(label: str, row: dict) -> None:
    cells = "  ".join(f"{k}={v}" for k, v in row.items())
    print(f"{label:<12} {cells}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.kind == "text":
        corpus = generate_text_corpus(
            TextCorpusConfig(num_sentences=args.sentences, seed=args.seed)
        )
        corpus.database.to_file(out / "corpus.txt")
        for variant, hierarchy in corpus.hierarchies.items():
            hierarchy.to_file(out / f"hierarchy-{variant}.txt")
        print(f"wrote {len(corpus.database)} sentences to {out}/corpus.txt")
        print(f"hierarchies: {', '.join(sorted(corpus.hierarchies))}")
    elif args.kind == "products":
        data = generate_product_data(
            ProductDataConfig(
                num_users=args.users,
                num_products=args.products,
                seed=args.seed,
            )
        )
        data.database.to_file(out / "sessions.txt")
        for levels in (2, 3, 4, 8):
            data.hierarchy(levels).to_file(out / f"hierarchy-h{levels}.txt")
        print(f"wrote {len(data.database)} sessions to {out}/sessions.txt")
        print("hierarchies: h2, h3, h4, h8")
    else:
        log = generate_event_log(
            EventLogConfig(num_machines=args.machines, seed=args.seed)
        )
        log.database.to_file(out / "logs.txt")
        log.hierarchy.to_file(out / "hierarchy.txt")
        print(f"wrote {len(log.database)} machine logs to {out}/logs.txt")
        print("planted cascades (class level):")
        for template in log.planted_patterns():
            print("  " + " -> ".join(template))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    database = read_database(args.db)
    _print_row("dataset", database.stats().row())
    if args.hierarchy:
        hierarchy = read_hierarchy(args.hierarchy)
        _print_row("hierarchy", hierarchy_stats(hierarchy).row())
    return 0


def cmd_flist(args: argparse.Namespace) -> int:
    """Compute the generalized f-list and persist it (paper Sec. 3.4)."""
    from repro.hierarchy import Hierarchy, build_vocabulary

    database = read_database(args.db)
    if args.hierarchy:
        hierarchy = read_hierarchy(args.hierarchy)
    else:
        hierarchy = Hierarchy.flat({item for seq in database for item in seq})
    vocabulary = build_vocabulary(database, hierarchy)
    write_vocabulary(vocabulary, args.out)
    print(f"wrote {len(vocabulary)} items to {args.out}")
    for item_id in range(min(args.top, len(vocabulary))):
        print(
            f"{vocabulary.frequency(item_id):>8}  {vocabulary.name(item_id)}"
        )
    return 0


def _build_algorithm(args: argparse.Namespace, params: MiningParams):
    if args.algorithm == "lash":
        return Lash(params, local_miner=args.miner)
    if args.algorithm == "closed-lash":
        return ClosedLash(
            params, mode=args.mode, local_miner=args.miner
        )
    if args.algorithm == "naive":
        return NaiveAlgorithm(params)
    if args.algorithm == "semi-naive":
        return SemiNaiveAlgorithm(params)
    if args.algorithm == "gsp":
        return GspAlgorithm(params)
    if args.algorithm == "mg-fsm":
        return MgFsm(params)
    raise SystemExit(f"unknown algorithm: {args.algorithm}")


def cmd_mine(args: argparse.Namespace) -> int:
    # flag validation first: don't load a multi-GB corpus to then die
    # on an inconsistent engine option
    gamma = None if args.gamma < 0 else args.gamma
    params = MiningParams(sigma=args.sigma, gamma=gamma, lam=args.lam)
    algorithm = _build_algorithm(args, params)
    if args.engine == "parallel":
        from repro.mapreduce.parallel import ParallelMapReduceEngine

        if not hasattr(algorithm, "engine"):
            raise SystemExit(
                f"--engine parallel is not supported for {args.algorithm}"
            )
        algorithm.engine = ParallelMapReduceEngine(
            max_workers=args.max_workers
        )
    elif args.max_workers is not None:
        raise SystemExit("--max-workers requires --engine parallel")
    if args.store_shards is not None and not args.store:
        raise SystemExit("--store-shards requires --store")

    database = read_database(args.db)
    hierarchy = read_hierarchy(args.hierarchy) if args.hierarchy else None

    vocabulary = None
    if args.flist:
        if hierarchy is None:
            raise SystemExit("--flist requires --hierarchy")
        vocabulary = read_vocabulary(args.flist, hierarchy)

    start = time.perf_counter()
    if isinstance(algorithm, MgFsm):
        result = algorithm.mine(database)
    elif vocabulary is not None:
        result = algorithm.mine(database, vocabulary=vocabulary)
    else:
        result = algorithm.mine(database, hierarchy)
    if args.filter:
        result = filter_result(result, args.filter)
    elapsed = time.perf_counter() - start

    print(
        f"{result.algorithm} {params.describe()}: {len(result)} patterns "
        f"in {elapsed:.2f}s"
    )
    times = result.phase_times()
    print(
        f"phases: map={times.map_s:.2f}s shuffle={times.shuffle_s:.2f}s "
        f"reduce={times.reduce_s:.2f}s | shuffled "
        f"{result.counters['SHUFFLE_BYTES']} bytes"
    )
    for pattern, freq in result.top(args.top):
        print(f"{freq:>8}  {pattern}")
    if args.out:
        write_patterns(result, args.out)
        print(f"wrote all patterns to {args.out}")
    if args.store:
        result.to_store(args.store, shards=args.store_shards)
        print(f"wrote pattern store to {args.store}")
    return 0


def _load_coded_patterns(patterns_path: str, hierarchy_path: str | None):
    """Patterns TSV (+ optional hierarchy) → ``(coded, vocabulary)``."""
    from repro.query import code_patterns

    patterns = read_patterns(patterns_path)
    hierarchy = read_hierarchy(hierarchy_path) if hierarchy_path else None
    return code_patterns(patterns, hierarchy)


def _load_query_index(patterns_path: str, hierarchy_path: str | None):
    """Patterns TSV (+ optional hierarchy) → in-memory ``PatternIndex``."""
    from repro.query import PatternIndex

    return PatternIndex(*_load_coded_patterns(patterns_path, hierarchy_path))


def _print_explain(plan: dict) -> None:
    """Render one query's compiled plan + cost estimate (`--explain`)."""
    estimate = plan["estimate"]
    forced = plan.get("forced_strategy")
    line = (
        f"  plan: strategy={plan['strategy']} order={plan['order']} "
        f"cost={estimate['cost']:g} candidates={estimate['candidates']} "
        f"scan={estimate['scan_candidates']}"
    )
    if forced:
        line += f" (forced={forced})"
    if plan.get("unsatisfiable"):
        line += " (unsatisfiable)"
    print(line)
    max_len = plan["max_len"] if plan["max_len"] is not None else "inf"
    print(f"  length range: [{plan['min_len']}, {max_len}]")
    for node in estimate.get("nodes", ()):
        skipped = "  [skipped: too many postings]" if node["skipped"] else ""
        print(
            f"  node {node['kind']:>5}: {node['ids']} ids, "
            f"~{node['postings']} postings{skipped}"
        )


def cmd_query(args: argparse.Namespace) -> int:
    """Wildcard search over a mined pattern file (Netspeak-style)."""
    index = _load_query_index(args.patterns, args.hierarchy)
    status = 0
    for query in args.queries:
        # one unlimited search yields the shown prefix, count and mass
        matches = index.search(query, min_freq=args.min_freq)
        mass = sum(match.frequency for match in matches)
        print(f"query: {query!r}  ({len(matches)} patterns, mass {mass})")
        if args.explain:
            _print_explain(index.explain(query))
        if not matches:
            status = 1
        for match in matches[: args.top]:
            print(f"{match.frequency:>9}  {match.render()}")
        print()
    return status


def _report_written_store(verb: str, out: str, start: float) -> None:
    """Print the one-line summary both index writers share.  The store
    was produced in-process moments ago, so the inspection open skips
    the checksum sweep — no second full read of a just-written file."""
    from repro.serve import open_store

    with open_store(out, verify_checksums=False) as store:
        info = store.describe()
    elapsed = time.perf_counter() - start
    layout = (
        f"{info['shards']} shards" if "shards" in info else "single file"
    )
    print(
        f"{verb} {info['patterns']} patterns / {info['items']} items "
        f"({info['file_bytes']} bytes, {layout}) at {out} in {elapsed:.2f}s"
    )


def cmd_index_build(args: argparse.Namespace) -> int:
    """Build a binary pattern store from a mined pattern file."""
    from repro.serve import write_sharded_store, write_store

    start = time.perf_counter()
    coded, vocabulary = _load_coded_patterns(args.patterns, args.hierarchy)
    checksums = not args.no_checksums
    if args.shards is None:
        write_store(args.out, coded, vocabulary, checksums=checksums)
    else:
        write_sharded_store(
            args.out, coded, vocabulary, args.shards, checksums=checksums
        )
    _report_written_store("wrote", args.out, start)
    return 0


def cmd_index_merge(args: argparse.Namespace) -> int:
    """Merge stores/shard sets into one store without re-mining."""
    from repro.serve import merge_stores

    start = time.perf_counter()
    merge_stores(
        args.sources,
        args.out,
        shards=args.shards,
        checksums=not args.no_checksums,
    )
    _report_written_store(
        f"merged {len(args.sources)} stores into", args.out, start
    )
    return 0


def cmd_index_info(args: argparse.Namespace) -> int:
    """Print store metadata (header-only, no section decoding)."""
    from repro.serve import open_store

    # metadata lives in the manifest and the fixed-size shard headers;
    # skipping the checksum sweep keeps `info` O(header) instead of
    # reading every shard body just to print counts
    with open_store(args.store, verify_checksums=False) as store:
        info = store.describe()
        shard_stats = info.pop("shard_stats", None)
        _print_row("store", info)
        for i, shard in enumerate(shard_stats or ()):
            _print_row(f"shard {i}", shard)
        if args.advise:
            from repro.serve.advisor import advise_shards

            report = advise_shards(
                store, target_bytes=args.target_bytes
            )
            print()
            print(
                f"routing groups: {report['groups']}  "
                f"(heaviest {report['heaviest_group_bytes']} bytes, "
                f"skew {report['skew']})"
            )
            for group in report["top_groups"]:
                print(f"  {group['bytes']:>10}  {group['item']}")
            for score in report["candidates"]:
                _print_row(f"n={score['shards']}", score)
            print(
                f"recommendation: --shards "
                f"{report['recommended_shards']} ({report['reason']})"
            )
    return 0


def cmd_shard_serve(args: argparse.Namespace) -> int:
    """Serve a shard slice of a sharded store over the socket protocol
    (plus the HTTP endpoints for health checks and metrics)."""
    from repro.serve.distributed import ShardServer, parse_shard_list

    shards = (
        parse_shard_list(args.shards) if args.shards is not None else None
    )
    server = ShardServer(
        args.store,
        shard_subset=shards,
        host=args.host,
        port=args.port,
        http_port=None if args.no_http else args.http_port,
        verify_checksums=not args.no_verify,
        quiet=not args.verbose,
        workers=args.workers,
        compress=args.compress,
        mux=not args.no_mux,
    )
    server.start()
    host, port = server.address
    owned = server.store.owned_shards
    print(
        f"shard server: {len(server.store)} patterns, shards "
        f"{list(owned)} of {server.store.num_shards} on {host}:{port}"
    )
    if server.http_address is not None:
        http_host, http_port = server.http_address
        print(f"health/metrics on http://{http_host}:{http_port}/healthz")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _admission_kwargs(args: argparse.Namespace) -> dict:
    """QueryService admission-control kwargs from the shared
    ``--max-cost``/``--budget-cost``/``--budget-matches`` flags."""
    kwargs: dict = {}
    if args.max_cost is not None:
        kwargs["max_cost"] = args.max_cost
    if args.budget_cost is not None:
        kwargs["budget_cost"] = args.budget_cost
    if args.budget_matches is not None:
        kwargs["match_budget"] = args.budget_matches
    return kwargs


def cmd_route(args: argparse.Namespace) -> int:
    """Run the query router over a cluster of shard servers."""
    from repro.serve import QueryService, create_server
    from repro.serve.http import run_server
    from repro.serve.router import ClusterMap, RouterBackend

    cluster = ClusterMap.load(args.cluster)
    # explicit flags beat the cluster map's optional defaults, which
    # beat the built-in sizing
    pipeline_depth = args.pipeline_depth
    if pipeline_depth is None:
        pipeline_depth = cluster.pipeline_depth or 32
    pool_size = args.pool_size
    if pool_size is None:
        pool_size = cluster.pool_size or 2
    fanout_workers = args.fanout_workers
    if fanout_workers is None:
        fanout_workers = cluster.fanout_workers
    backend = RouterBackend(
        cluster,
        deadline=args.deadline,
        health_timeout=args.health_timeout,
        pool_size=pool_size,
        pipeline_depth=pipeline_depth,
        compress=args.compress,
        fanout_workers=fanout_workers,
    )
    health = backend.check_health()
    backend.start_health_loop(args.health_interval)
    service = QueryService(
        backend, cache_size=args.cache_size, **_admission_kwargs(args)
    )
    server = create_server(
        service,
        args.host,
        args.port,
        quiet=not args.verbose,
        workers=args.workers,
        compress=args.compress,
    )
    host, port = server.server_address[:2]
    up = sum(1 for ok in health.values() if ok)
    print(
        f"routing {cluster.num_shards} shards over {len(cluster.servers)} "
        f"servers ({up} healthy) on http://{host}:{port}"
    )
    for shard, replicas in sorted(cluster.placement.items()):
        print(f"  shard {shard}: {', '.join(replicas)}")
    try:
        run_server(server)
    finally:
        backend.close()
    return 0


def cmd_index_compact(args: argparse.Namespace) -> int:
    """Fold delta stores into a live shard set (atomic manifest swap)."""
    from repro.serve import StoreCompactor

    compactor = StoreCompactor(
        args.store,
        checksums=not args.no_checksums,
        verify_checksums=not args.no_verify,
    )
    stats = compactor.compact(args.deltas, shards=args.shards)
    print(
        f"compacted {stats['deltas']} deltas into {args.store} "
        f"(generation {stats['generation']}, {stats['patterns']} patterns "
        f"/ {stats['items']} items across {stats['shards']} shards) "
        f"in {stats['seconds']:.2f}s"
    )
    return 0


def cmd_ingest_init(args: argparse.Namespace) -> int:
    """Create the live-ingestion state for a sharded store."""
    from repro.serve.ingest import Ingestor

    gamma = None if args.gamma < 0 else args.gamma
    Ingestor.init(
        args.state, args.store, args.spool, gamma=gamma, lam=args.lam
    )
    print(
        f"initialized ingest state in {args.state} "
        f"(store {args.store}, spool {args.spool}, "
        f"gamma={'inf' if gamma is None else gamma}, lam={args.lam})"
    )
    return 0


def _ingest_batch(args: argparse.Namespace) -> list[tuple[str, ...]]:
    """Sequences from positional args and/or ``--db`` (either alone ok)."""
    batch: list[tuple[str, ...]] = [
        tuple(seq.split()) for seq in args.sequences
    ]
    if args.db:
        batch.extend(tuple(seq) for seq in read_database(args.db))
    if not batch:
        raise SystemExit(
            "nothing to ingest: pass sequences as arguments "
            '("a b c" quoted per sequence) and/or --db FILE'
        )
    return batch


def cmd_ingest_add(args: argparse.Namespace) -> int:
    """Append sequences to the live corpus and publish their delta."""
    from repro.serve.ingest import Ingestor

    report = Ingestor.open(args.state).add(_ingest_batch(args))
    print(
        f"ingested {report['sequences']} sequences "
        f"(seq {report['from_seq']}..{report['through_seq'] - 1}) "
        f"as {report['published']}; "
        f"ingested_through={report['ingested_through']}"
    )
    return 0


def cmd_ingest_retire(args: argparse.Namespace) -> int:
    """Retire the oldest retained sequences (sliding-window retention)."""
    from repro.serve.ingest import Ingestor

    report = Ingestor.open(args.state).retire(args.count)
    print(
        f"retired {report['sequences']} sequences "
        f"(seq {report['from_seq']}..{report['through_seq'] - 1}) "
        f"as {report['published']}; "
        f"retained_from={report['retained_from']}"
    )
    return 0


def cmd_ingest_flush(args: argparse.Namespace) -> int:
    """Publish journaled-but-unpublished sequences (crash recovery)."""
    from repro.serve.ingest import Ingestor

    report = Ingestor.open(args.state).flush()
    if report["published"]:
        print(f"published {report['published']}")
    else:
        print("nothing pending")
    print(f"ingested_through={report['ingested_through']}")
    return 0


def cmd_ingest_status(args: argparse.Namespace) -> int:
    """Print the ingest watermarks and spool backlog."""
    from repro.serve.ingest import Ingestor

    status = Ingestor.open(args.state).status()
    pending = status.pop("spool_pending")
    _print_row("ingest", status)
    for name in pending:
        print(f"  pending: {name}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a pattern store (single file or shard set) over HTTP."""
    from repro.serve import QueryService, create_server, open_store
    from repro.serve.http import run_server

    store = open_store(args.store, verify_checksums=not args.no_verify)
    service = QueryService(
        store, cache_size=args.cache_size, **_admission_kwargs(args)
    )
    daemon = None
    if args.compact_spool is not None:
        from repro.serve import CompactionDaemon

        if not hasattr(store, "num_shards"):
            raise SystemExit(
                "--compact-spool requires a sharded store "
                "(build with --shards)"
            )
        daemon_kwargs = {}
        if args.applied_retain is not None:
            daemon_kwargs["applied_retain"] = args.applied_retain
        daemon = CompactionDaemon(
            service,
            args.store,
            args.compact_spool,
            interval=args.compact_interval,
            verify_checksums=not args.no_verify,
            **daemon_kwargs,
        )
    server = create_server(
        service,
        args.host,
        args.port,
        quiet=not args.verbose,
        workers=args.workers,
        compress=args.compress,
    )
    host, port = server.server_address[:2]
    shards = getattr(store, "num_shards", None)
    layout = f" across {shards} shards" if shards is not None else ""
    print(
        f"serving {len(store)} patterns{layout} on http://{host}:{port}"
    )
    print(
        "endpoints: /query?q=  /count?q=  /topk?n=  /batch (POST)  "
        "/stats  /metrics  /healthz"
    )
    if daemon is not None:
        print(
            f"compacting deltas from {args.compact_spool} every "
            f"{args.compact_interval:g}s"
        )
        daemon.start()
    try:
        run_server(server)
    finally:
        if daemon is not None:
            daemon.stop()
        # after compaction swaps, the live backend may no longer be the
        # store opened above; close whatever is currently served (close
        # is idempotent, so double-closing the original is harmless)
        service.backend.close()
        store.close()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    def load(path: str) -> dict[str, int]:
        return {
            " ".join(pattern): freq
            for pattern, freq in read_patterns(path).items()
        }

    left, right = load(args.left), load(args.right)
    missing = {p for p in left if p not in right}
    extra = {p for p in right if p not in left}
    mismatched = {
        p for p in left if p in right and left[p] != right[p]
    }
    if not (missing or extra or mismatched):
        print(f"results agree ({len(left)} patterns)")
        return 0
    print(
        f"results differ: missing={len(missing)} extra={len(extra)} "
        f"frequency mismatches={len(mismatched)}"
    )
    for p in sorted(missing)[: args.show]:
        print(f"  missing: {p} ({left[p]})")
    for p in sorted(extra)[: args.show]:
        print(f"  extra:   {p} ({right[p]})")
    for p in sorted(mismatched)[: args.show]:
        print(f"  freq:    {p} ({left[p]} vs {right[p]})")
    return 1


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lash",
        description="Generalized sequence mining with hierarchies (LASH).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("kind", choices=["text", "products", "events"])
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--sentences", type=int, default=5000)
    gen.add_argument("--users", type=int, default=2000)
    gen.add_argument("--products", type=int, default=800)
    gen.add_argument("--machines", type=int, default=1500)
    gen.add_argument("--seed", type=int, default=13)
    gen.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="dataset / hierarchy characteristics")
    stats.add_argument("--db", required=True)
    stats.add_argument("--hierarchy")
    stats.set_defaults(func=cmd_stats)

    flist = sub.add_parser(
        "flist", help="compute and persist the generalized f-list"
    )
    flist.add_argument("--db", required=True)
    flist.add_argument("--hierarchy")
    flist.add_argument("--out", required=True, help="f-list TSV output path")
    flist.add_argument("--top", type=int, default=10, help="items to print")
    flist.set_defaults(func=cmd_flist)

    minep = sub.add_parser("mine", help="mine frequent generalized sequences")
    minep.add_argument("--db", required=True)
    minep.add_argument("--hierarchy")
    minep.add_argument("--sigma", type=int, required=True)
    minep.add_argument(
        "--gamma", type=int, default=0,
        help="max gap; negative = unconstrained",
    )
    minep.add_argument("--lam", type=int, default=5, help="max length")
    minep.add_argument(
        "--algorithm",
        choices=["lash", "closed-lash", "naive", "semi-naive", "gsp",
                 "mg-fsm"],
        default="lash",
    )
    minep.add_argument(
        "--mode",
        choices=["closed", "maximal"],
        default="closed",
        help="redundancy mode (closed-lash only): mine closed or maximal "
        "patterns directly",
    )
    minep.add_argument(
        "--miner",
        choices=["psm", "psm-level", "psm-noindex", "bfs", "dfs", "spam"],
        default="psm",
        help="local miner (lash only)",
    )
    minep.add_argument(
        "--flist",
        help="reuse a persisted f-list instead of preprocessing "
        "(requires --hierarchy)",
    )
    minep.add_argument(
        "--filter",
        choices=["closed", "maximal"],
        help="keep only closed or maximal patterns",
    )
    minep.add_argument(
        "--engine",
        choices=["serial", "parallel"],
        default="serial",
        help="MapReduce engine: serial (simulated placement) or parallel "
        "(real worker processes)",
    )
    minep.add_argument(
        "--max-workers", type=int, default=None,
        help="worker processes for --engine parallel "
        "(default: CPU count capped by task counts)",
    )
    minep.add_argument("--top", type=int, default=10)
    minep.add_argument("--out", help="write all patterns to this TSV file")
    minep.add_argument(
        "--store", help="also export a binary pattern store for serving"
    )
    minep.add_argument(
        "--store-shards", type=int, default=None,
        help="shard the exported store directory across N shards (with "
        "--store); a sharded sigma=1 store is what `lash ingest` "
        "appends to, and unlike `index build` the export keeps the "
        "corpus f-list, so compacted deltas stay byte-identical to a "
        "full re-mine",
    )
    minep.set_defaults(func=cmd_mine)

    query = sub.add_parser(
        "query", help="wildcard search over a mined pattern file"
    )
    query.add_argument("--patterns", required=True, help="pattern TSV file")
    query.add_argument(
        "--hierarchy", help="hierarchy file enabling ^name tokens"
    )
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--min-freq", type=int, default=None,
        help="per-query sigma override: only report patterns with mined "
        "frequency >= N",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print each query's compiled plan: chosen execution "
        "strategy, node ordering, estimated cost and per-node postings "
        "statistics",
    )
    query.add_argument(
        "queries", nargs="+",
        help="queries: 'name', '^name', '?', '+', '*', '*{m,n}' bounded "
        "gap, '!token' negation, '(a|b|^C)' disjunction and 'token@N' "
        "frequency-floor tokens",
    )
    query.set_defaults(func=cmd_query)

    index = sub.add_parser(
        "index", help="build, merge or inspect binary pattern stores"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser(
        "build", help="compile a pattern TSV into a store file or shard set"
    )
    build.add_argument("--patterns", required=True, help="pattern TSV file")
    build.add_argument(
        "--hierarchy", help="hierarchy file enabling ^name queries"
    )
    build.add_argument("--out", required=True, help="store output path")
    build.add_argument(
        "--shards", type=int, default=None,
        help="write a sharded store directory with this many shard files",
    )
    build.add_argument(
        "--no-checksums", action="store_true",
        help="skip the per-section CRC-32 checksums",
    )
    build.set_defaults(func=cmd_index_build)
    merge = index_sub.add_parser(
        "merge",
        help="combine existing stores/shard sets (ids remapped, "
        "frequencies summed) without re-mining",
    )
    merge.add_argument(
        "sources", nargs="+", help="store files or shard directories"
    )
    merge.add_argument("--out", required=True, help="merged store path")
    merge.add_argument(
        "--shards", type=int, default=None,
        help="write the merged store as a shard set of this size",
    )
    merge.add_argument(
        "--no-checksums", action="store_true",
        help="skip the per-section CRC-32 checksums",
    )
    merge.set_defaults(func=cmd_index_merge)
    compact = index_sub.add_parser(
        "compact",
        help="fold delta stores into a live shard set (atomic manifest "
        "swap; concurrent readers keep serving)",
    )
    compact.add_argument(
        "--store", required=True, help="sharded store directory to compact"
    )
    compact.add_argument(
        "deltas", nargs="*",
        help="delta store files or shard directories to fold in "
        "(none = pure rebalance/rewrite)",
    )
    compact.add_argument(
        "--shards", type=int, default=None,
        help="re-route the compacted store across this many shards "
        "(default: keep the current count)",
    )
    compact.add_argument(
        "--no-checksums", action="store_true",
        help="skip the per-section CRC-32 checksums on the new generation",
    )
    compact.add_argument(
        "--no-verify", action="store_true",
        help="skip checksum verification of the sources",
    )
    compact.set_defaults(func=cmd_index_compact)
    info = index_sub.add_parser("info", help="print store metadata")
    info.add_argument(
        "--store", required=True, help="store file or shard directory"
    )
    info.add_argument(
        "--advise", action="store_true",
        help="measure first-item routing-group skew and recommend a "
        "shard count (reads every pattern record)",
    )
    info.add_argument(
        "--target-bytes", type=int, default=64 << 20,
        help="with --advise: target size of the largest shard",
    )
    info.set_defaults(func=cmd_index_info)

    ingest = sub.add_parser(
        "ingest",
        help="live ingestion: append/retire sequences against a live "
        "store by micro-mining just the delta (no full re-mine)",
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)

    ingest_init = ingest_sub.add_parser(
        "init", help="create the ingest state for a sharded store"
    )
    ingest_init.add_argument(
        "--store", required=True,
        help="live sharded store directory (build with --shards)",
    )
    ingest_init.add_argument(
        "--spool", required=True,
        help="compaction spool deltas are published into (the directory "
        "`lash serve --compact-spool` watches)",
    )
    ingest_init.add_argument(
        "--state", required=True,
        help="directory for the ingest journal and watermarks",
    )
    ingest_init.add_argument(
        "--gamma", type=int, default=0,
        help="gap constraint every micro-mine uses; must match the base "
        "mine (negative = unbounded)",
    )
    ingest_init.add_argument(
        "--lam", type=int, default=5,
        help="max pattern length; must match the base mine",
    )
    ingest_init.set_defaults(func=cmd_ingest_init)

    ingest_add = ingest_sub.add_parser(
        "add",
        help="journal sequences and publish their increment delta",
    )
    ingest_add.add_argument(
        "--state", required=True, help="ingest state directory"
    )
    ingest_add.add_argument(
        "--db", help="sequence database file to ingest"
    )
    ingest_add.add_argument(
        "sequences", nargs="*",
        help='inline sequences, one per argument ("a b c")',
    )
    ingest_add.set_defaults(func=cmd_ingest_add)

    ingest_retire = ingest_sub.add_parser(
        "retire",
        help="retire the oldest retained sequences by publishing a "
        "decrement delta (sliding-window retention)",
    )
    ingest_retire.add_argument(
        "--state", required=True, help="ingest state directory"
    )
    ingest_retire.add_argument(
        "--count", type=int, required=True,
        help="how many of the oldest retained sequences to retire",
    )
    ingest_retire.set_defaults(func=cmd_ingest_retire)

    ingest_flush = ingest_sub.add_parser(
        "flush",
        help="publish journaled-but-unpublished sequences "
        "(crash recovery; no-op when clean)",
    )
    ingest_flush.add_argument(
        "--state", required=True, help="ingest state directory"
    )
    ingest_flush.set_defaults(func=cmd_ingest_flush)

    ingest_status = ingest_sub.add_parser(
        "status", help="print watermarks and spool backlog"
    )
    ingest_status.add_argument(
        "--state", required=True, help="ingest state directory"
    )
    ingest_status.set_defaults(func=cmd_ingest_status)

    serve = sub.add_parser(
        "serve", help="serve a pattern store over HTTP (JSON endpoints)"
    )
    serve.add_argument(
        "--store", required=True, help="store file or shard directory"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU result-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--max-cost", type=float, default=None,
        help="admission ceiling in planner work units: cache misses "
        "estimated above it answer 429 instead of running",
    )
    serve.add_argument(
        "--budget-cost", type=float, default=None,
        help="soft cost threshold: pricier queries run under a bounded "
        "match budget and are flagged partial if it binds",
    )
    serve.add_argument(
        "--budget-matches", type=int, default=None,
        help="match-list cap for budgeted queries (with --budget-cost)",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip checksum verification on open",
    )
    serve.add_argument(
        "--compact-spool",
        help="watch this directory for delta stores and fold them into "
        "the served shard set in the background (sharded stores only)",
    )
    serve.add_argument(
        "--compact-interval", type=float, default=30.0,
        help="seconds between spool scans (with --compact-spool)",
    )
    serve.add_argument(
        "--applied-retain", type=int, default=None,
        help="applied-delta archive entries to keep; older ones are "
        "swept after each compaction (with --compact-spool; default 256)",
    )
    serve.add_argument(
        "--workers", type=int, default=8,
        help="HTTP worker threads; past 2x this many in-flight requests "
        "the server sheds load with 503 + Retry-After",
    )
    serve.add_argument(
        "--compress", action=argparse.BooleanOptionalAction, default=True,
        help="gzip responses above the size threshold for clients that "
        "accept it",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every request to stderr",
    )
    serve.set_defaults(func=cmd_serve)

    shard_serve = sub.add_parser(
        "shard-serve",
        help="serve a shard slice of a sharded store over the socket "
        "protocol (distributed tier)",
    )
    shard_serve.add_argument(
        "--store", required=True, help="sharded store directory"
    )
    shard_serve.add_argument(
        "--shards",
        help="comma-separated shard indexes to mount (default: all — a "
        "fully replicated server)",
    )
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument(
        "--port", type=int, default=0,
        help="socket port (0 picks an ephemeral port)",
    )
    shard_serve.add_argument(
        "--http-port", type=int, default=0,
        help="HTTP sidecar port for /healthz and /metrics (0 = ephemeral)",
    )
    shard_serve.add_argument(
        "--no-http", action="store_true",
        help="disable the HTTP sidecar (health checks fall back to "
        "socket pings)",
    )
    shard_serve.add_argument(
        "--no-verify", action="store_true",
        help="skip checksum verification on open",
    )
    shard_serve.add_argument(
        "--workers", type=int, default=8,
        help="request-execution worker threads; past 2x this many "
        "in-flight requests the server answers a retryable busy error",
    )
    shard_serve.add_argument(
        "--compress", action=argparse.BooleanOptionalAction, default=True,
        help="offer zlib frame compression in the protocol handshake",
    )
    shard_serve.add_argument(
        "--no-mux", action="store_true",
        help="disable protocol multiplexing (serve every connection in "
        "legacy one-request-at-a-time framing)",
    )
    shard_serve.add_argument(
        "--verbose", action="store_true",
        help="log sidecar HTTP requests to stderr",
    )
    shard_serve.set_defaults(func=cmd_shard_serve)

    route = sub.add_parser(
        "route",
        help="route queries across shard servers (fan-out + merge, "
        "same HTTP endpoints as `lash serve`)",
    )
    route.add_argument(
        "--cluster", required=True,
        help="cluster map JSON: {num_shards, replication, servers: "
        "[{host, port, http_port, shards?}]}",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=8080)
    route.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU result-cache entries (0 disables caching; partial "
        "answers are never cached)",
    )
    route.add_argument(
        "--max-cost", type=float, default=None,
        help="admission ceiling in planner work units: cache misses "
        "estimated above it answer 429 instead of fanning out",
    )
    route.add_argument(
        "--budget-cost", type=float, default=None,
        help="soft cost threshold: pricier queries run under a bounded "
        "match budget and are flagged partial if it binds",
    )
    route.add_argument(
        "--budget-matches", type=int, default=None,
        help="match-list cap for budgeted queries (with --budget-cost)",
    )
    route.add_argument(
        "--deadline", type=float, default=5.0,
        help="seconds budgeted per fan-out, retries included; a priced "
        "query's deadline scales down with its cost estimate",
    )
    route.add_argument(
        "--health-interval", type=float, default=2.0,
        help="seconds between /healthz probes of the shard servers",
    )
    route.add_argument(
        "--health-timeout", type=float, default=1.0,
        help="per-probe timeout in seconds",
    )
    route.add_argument(
        "--workers", type=int, default=8,
        help="HTTP worker threads; past 2x this many in-flight requests "
        "the router sheds load with 503 + Retry-After",
    )
    route.add_argument(
        "--compress", action=argparse.BooleanOptionalAction, default=True,
        help="request zlib frame compression from shard servers (and "
        "gzip HTTP responses)",
    )
    route.add_argument(
        "--pipeline-depth", type=int, default=None,
        help="in-flight requests per shard-server connection (default: "
        "the cluster map's pipeline_depth, else 32)",
    )
    route.add_argument(
        "--pool-size", type=int, default=None,
        help="legacy-mode connections pooled per shard server (default: "
        "the cluster map's pool_size, else 2)",
    )
    route.add_argument(
        "--fanout-workers", type=int, default=None,
        help="scatter worker threads shared by all fan-outs (default: "
        "the cluster map's fanout_workers, else scaled to the "
        "pipeline depth)",
    )
    route.add_argument(
        "--verbose", action="store_true",
        help="log every request to stderr",
    )
    route.set_defaults(func=cmd_route)

    cmp_ = sub.add_parser("compare", help="compare two pattern TSV files")
    cmp_.add_argument("left")
    cmp_.add_argument("right")
    cmp_.add_argument("--show", type=int, default=5)
    cmp_.set_defaults(func=cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
