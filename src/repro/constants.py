"""Shared constants for the LASH reproduction.

Items are represented as non-negative integer ids once encoded; the id space
is the rank of the item in the LASH total order (``0`` is the most frequent
item).  The *blank* placeholder introduced by ``w``-generalization is larger
than every item in the order, which we represent with a dedicated sentinel
that never collides with an item id.
"""

from __future__ import annotations

#: Sentinel item id for the blank placeholder ("_" in the paper).  The blank
#: is *larger* than every real item in the LASH total order and never matches
#: any pattern item.
BLANK: int = -1

#: Sentinel parent id for items at the root of the hierarchy.
NO_PARENT: int = -2

#: Display string used when rendering blanks.
BLANK_SYMBOL: str = "_"
