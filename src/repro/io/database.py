"""Sequence-database files: one sequence per line."""

from __future__ import annotations

from pathlib import Path

from repro.io.lines import open_text
from repro.sequence.database import SequenceDatabase


def read_database(
    path: str | Path, sep: str | None = None
) -> SequenceDatabase:
    """Read a database; items separated by ``sep`` (default: whitespace).

    Empty lines are skipped.  ``.gz`` paths are decompressed.
    """
    with open_text(path) as f:
        return SequenceDatabase.from_strings(f, sep)


def write_database(
    database: SequenceDatabase, path: str | Path, sep: str = " "
) -> None:
    """Write one line per sequence; ``.gz`` paths are compressed."""
    with open_text(path, "w") as f:
        for seq in database:
            f.write(sep.join(seq))
            f.write("\n")
