"""Varint / zigzag / delta primitives for the binary pattern store.

LEB128-style unsigned varints (7 bits per byte, high bit = continuation),
zigzag mapping for signed deltas, and delta coding for ascending integer
lists (postings).  Pure functions over ``bytes``-like buffers so they
work directly on a memory-mapped file without copying sections.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

from repro.errors import EncodingError


def write_uvarint(buf: bytearray, value: int) -> None:
    """Append an unsigned varint to ``buf``."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data, offset: int) -> tuple[int, int]:
    """Decode one unsigned varint at ``offset``; returns (value, end)."""
    value = 0
    shift = 0
    while True:
        try:
            byte = data[offset]
        except IndexError:
            raise EncodingError("truncated uvarint") from None
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise EncodingError("uvarint too long (corrupt store?)")


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one with small absolute values
    staying small: 0, -1, 1, -2, … → 0, 1, 2, 3, …"""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def write_sequence(buf: bytearray, items: Sequence[int]) -> None:
    """Append a length-prefixed item-id sequence, zigzag-delta coded.

    The first id is stored absolute, later ids as signed deltas from
    their predecessor — pattern items are drawn from a frequency-skewed
    vocabulary, so consecutive ids tend to be numerically close and the
    deltas pack into fewer bytes than the raw ids.
    """
    write_uvarint(buf, len(items))
    previous = 0
    for i, item in enumerate(items):
        if i == 0:
            write_uvarint(buf, item)
        else:
            write_uvarint(buf, zigzag_encode(item - previous))
        previous = item


def read_sequence(data, offset: int) -> tuple[tuple[int, ...], int]:
    """Decode one :func:`write_sequence` record; returns (items, end)."""
    n, offset = read_uvarint(data, offset)
    items: list[int] = []
    previous = 0
    for i in range(n):
        raw, offset = read_uvarint(data, offset)
        previous = raw if i == 0 else previous + zigzag_decode(raw)
        items.append(previous)
    return tuple(items), offset


def write_deltas(buf: bytearray, values: Iterable[int]) -> None:
    """Append an ascending integer list as first-absolute-then-gap varints
    (classic postings compression).  No length prefix: the caller bounds
    the record with section offsets."""
    previous = 0
    first = True
    for value in values:
        if first:
            write_uvarint(buf, value)
            first = False
        else:
            if value <= previous:
                raise EncodingError(
                    f"delta list not strictly ascending: {value} after "
                    f"{previous}"
                )
            write_uvarint(buf, value - previous)
        previous = value


def read_deltas(data, offset: int, end: int) -> list[int]:
    """Decode an ascending delta list occupying ``data[offset:end]``."""
    values: list[int] = []
    previous = 0
    first = True
    while offset < end:
        raw, offset = read_uvarint(data, offset)
        previous = raw if first else previous + raw
        first = False
        values.append(previous)
    return values


def write_positions(buf: bytearray, positions: Sequence[int]) -> None:
    """Append one position list: a count followed by the ascending
    positions, first absolute and the rest as gaps.  Used by the
    version-2 postings entries of the pattern store, where each pattern
    index carries the positions its item occupies inside the pattern."""
    write_uvarint(buf, len(positions))
    previous = 0
    for i, position in enumerate(positions):
        if i == 0:
            write_uvarint(buf, position)
        else:
            if position <= previous:
                raise EncodingError(
                    f"position list not strictly ascending: {position} "
                    f"after {previous}"
                )
            write_uvarint(buf, position - previous)
        previous = position


def read_positions(data, offset: int) -> tuple[tuple[int, ...], int]:
    """Decode one :func:`write_positions` record; returns (positions, end)."""
    n, offset = read_uvarint(data, offset)
    positions: list[int] = []
    previous = 0
    for i in range(n):
        raw, offset = read_uvarint(data, offset)
        previous = raw if i == 0 else previous + raw
        positions.append(previous)
    return tuple(positions), offset


def read_positional_postings(
    data, offset: int, end: int
) -> tuple[list[int], list[tuple[int, ...]]]:
    """Decode one item's version-2 postings record: a sequence of
    ``(pattern index, positions)`` entries with the indexes gap-coded
    like :func:`read_deltas` and each positions list coded by
    :func:`write_positions`.  Returns the ascending index list and the
    parallel list of position tuples."""
    indexes: list[int] = []
    positions: list[tuple[int, ...]] = []
    previous = 0
    first = True
    while offset < end:
        raw, offset = read_uvarint(data, offset)
        previous = raw if first else previous + raw
        first = False
        indexes.append(previous)
        entry, offset = read_positions(data, offset)
        positions.append(entry)
    return indexes, positions


def section_checksum(data, start: int = 0, end: int | None = None) -> int:
    """CRC-32 of ``data[start:end]`` as an unsigned 32-bit value.

    Used for the optional per-section checksums of the pattern store.
    Accepts any buffer (``bytes``, ``bytearray``, ``mmap``); the slice is
    taken through a :class:`memoryview` so mmapped sections are not
    copied before hashing.
    """
    view = memoryview(data)[start:len(data) if end is None else end]
    return zlib.crc32(view) & 0xFFFFFFFF


__all__ = [
    "write_uvarint",
    "read_uvarint",
    "zigzag_encode",
    "zigzag_decode",
    "write_sequence",
    "read_sequence",
    "write_deltas",
    "read_deltas",
    "write_positions",
    "read_positions",
    "read_positional_postings",
    "section_checksum",
]
