"""Hierarchy files: TSV edge lists or JSON parent maps.

TSV (the default, also produced by :meth:`Hierarchy.to_file`)::

    b1<TAB>B        # edge: b1 generalizes to B
    a               # bare line: root item

JSON (chosen for ``.json`` / ``.json.gz`` paths) maps every item to its
list of parents and so can express DAG hierarchies (paper footnote 2)::

    {"a": [], "b1": ["B"], "multi": ["B", "D"]}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import HierarchyError
from repro.hierarchy.hierarchy import Hierarchy
from repro.io.lines import open_text


def _is_json_path(path: Path) -> bool:
    suffixes = path.suffixes
    return ".json" in suffixes[-2:]


def read_hierarchy(path: str | Path) -> Hierarchy:
    """Read a hierarchy; format chosen by extension (see module doc)."""
    path = Path(path)
    if _is_json_path(path):
        with open_text(path) as f:
            try:
                parent_map = json.load(f)
            except json.JSONDecodeError as exc:
                raise HierarchyError(f"invalid hierarchy JSON: {exc}") from exc
        if not isinstance(parent_map, dict):
            raise HierarchyError(
                "hierarchy JSON must be an object mapping item -> parents"
            )
        h = Hierarchy()
        for item in parent_map:
            h.add_item(item)
        for item, parents in parent_map.items():
            if isinstance(parents, str):
                parents = [parents]
            if parents is None:
                parents = []
            for parent in parents:
                h.add_edge(item, parent)
        return h
    with open_text(path) as f:
        h = Hierarchy()
        for line in f:
            line = line.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) == 1 or not parts[1]:
                h.add_item(parts[0])
            else:
                h.add_edge(parts[0], parts[1])
        return h


def write_hierarchy(hierarchy: Hierarchy, path: str | Path) -> None:
    """Write a hierarchy; format chosen by extension (see module doc)."""
    path = Path(path)
    if _is_json_path(path):
        parent_map = {
            item: list(hierarchy.parents(item)) for item in hierarchy
        }
        with open_text(path, "w") as f:
            json.dump(parent_map, f, indent=2, sort_keys=True)
            f.write("\n")
        return
    with open_text(path, "w") as f:
        for item in hierarchy:
            parents = hierarchy.parents(item)
            if not parents:
                f.write(f"{item}\n")
            for parent in parents:
                f.write(f"{item}\t{parent}\n")
