"""Mined-pattern files: ``item item …<TAB>frequency`` lines."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.core.result import MiningResult
from repro.errors import EncodingError
from repro.io.lines import open_text

Patterns = dict[tuple[str, ...], int]


def write_patterns(
    patterns: MiningResult | Mapping[tuple[str, ...], int],
    path: str | Path,
) -> None:
    """Write patterns (a :class:`MiningResult` or a decoded mapping),
    most frequent first, ties in text order."""
    if isinstance(patterns, MiningResult):
        decoded = patterns.decoded()
    else:
        decoded = dict(patterns)
    rows = sorted(decoded.items(), key=lambda kv: (-kv[1], kv[0]))
    with open_text(path, "w") as f:
        for pattern, freq in rows:
            f.write(" ".join(pattern))
            f.write(f"\t{freq}\n")


def read_patterns(path: str | Path) -> Patterns:
    """Read a pattern file back into ``{(item, ...): frequency}``."""
    out: Patterns = {}
    with open_text(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            try:
                pattern, freq = line.rsplit("\t", 1)
                out[tuple(pattern.split(" "))] = int(freq)
            except ValueError as exc:
                raise EncodingError(
                    f"{path}:{lineno}: expected 'pattern<TAB>frequency', "
                    f"got {line!r}"
                ) from exc
    return out
