"""Text-file access with transparent gzip support."""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO


def open_text(path: str | Path, mode: str = "r") -> IO[str]:
    """Open a text file; paths ending in ``.gz`` are gzip-(de)compressed.

    ``mode`` is ``"r"`` or ``"w"``; encoding is always UTF-8.
    """
    if mode not in ("r", "w"):
        raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")
