"""Generalized f-list persistence.

The paper (Sec. 3.4): *"item frequencies and total order can be reused when
LASH is run with different parameters"*.  The f-list file stores one
``item<TAB>frequency`` line per vocabulary entry **in total-order rank
order**, so reading it back (together with the hierarchy) reconstructs the
exact :class:`~repro.hierarchy.vocabulary.Vocabulary` — ids, frequencies
and all — without re-running the preprocessing job.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import EncodingError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.io.lines import open_text


def write_vocabulary(vocabulary: Vocabulary, path: str | Path) -> None:
    """Write the generalized f-list in rank order."""
    with open_text(path, "w") as f:
        for item_id in range(len(vocabulary)):
            name = vocabulary.name(item_id)
            f.write(f"{name}\t{vocabulary.frequency(item_id)}\n")


def read_vocabulary(path: str | Path, hierarchy: Hierarchy) -> Vocabulary:
    """Rebuild a vocabulary from an f-list file and its hierarchy."""
    order: list[str] = []
    frequencies: list[int] = []
    with open_text(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            try:
                name, freq = line.rsplit("\t", 1)
                frequencies.append(int(freq))
            except ValueError as exc:
                raise EncodingError(
                    f"{path}:{lineno}: expected 'item<TAB>frequency', "
                    f"got {line!r}"
                ) from exc
            order.append(name)
    return Vocabulary(order, hierarchy, frequencies)
