"""File formats for databases, hierarchies, f-lists and mined patterns.

Every reader/writer accepts plain and gzip-compressed files (``.gz``
suffix).  Formats:

* **sequence database** — one sequence per line, whitespace- (or
  custom-) separated items (:mod:`repro.io.database`);
* **hierarchy** — ``child<TAB>parent`` lines, or a JSON object
  ``{"item": ["parent", ...]}`` for ``.json`` paths
  (:mod:`repro.io.hierarchy`);
* **generalized f-list** — ``item<TAB>frequency`` lines in total-order
  rank order; together with a hierarchy this reconstructs the
  :class:`~repro.hierarchy.vocabulary.Vocabulary`, so preprocessing can be
  reused across runs exactly as Sec. 3.4 describes (:mod:`repro.io.flist`);
* **patterns** — ``item item …<TAB>frequency`` lines
  (:mod:`repro.io.patterns`).

:mod:`repro.io.codec` holds the binary primitives (varint, zigzag,
delta lists) behind the pattern-store format of :mod:`repro.serve`.
"""

from repro.io.lines import open_text
from repro.io.database import read_database, write_database
from repro.io.hierarchy import read_hierarchy, write_hierarchy
from repro.io.flist import read_vocabulary, write_vocabulary
from repro.io.patterns import read_patterns, write_patterns

__all__ = [
    "open_text",
    "read_database",
    "write_database",
    "read_hierarchy",
    "write_hierarchy",
    "read_vocabulary",
    "write_vocabulary",
    "read_patterns",
    "write_patterns",
]
