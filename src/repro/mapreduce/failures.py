"""Deterministic task-failure injection for the MapReduce engine.

The paper relies on Hadoop's fault tolerance (*"The MapReduce runtime takes
care of execution and transparently handles failures in the cluster"*,
Sec. 3.1).  The in-process engine models it: a :class:`FailurePlan` makes
chosen task attempts die partway through, the engine discards the failed
attempt's partial output and counters — exactly like Hadoop throwing away a
failed attempt — and re-runs the task, up to ``max_attempts`` times.

A correct fault-tolerance implementation is *invisible* in the final
answer: mined patterns, frequencies, and logical counters
(``MAP_OUTPUT_RECORDS`` etc.) must be byte-identical to a failure-free run,
while only the failure bookkeeping (``FAILED_*`` counters, wasted seconds)
differs.  The test suite asserts exactly that.

Failures are deterministic functions of ``(phase, task_index, attempt,
seed)`` — re-running a plan reproduces the identical execution, including
the record index at which each doomed attempt dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ReproError


class TaskRetriesExceededError(ReproError):
    """A task failed on every allowed attempt; the job is lost."""

    def __init__(self, phase: str, task_index: int, attempts: int) -> None:
        super().__init__(
            f"{phase} task {task_index} failed {attempts} attempts in a row"
        )
        self.phase = phase
        self.task_index = task_index
        self.attempts = attempts


class _InjectedFailure(Exception):
    """Internal signal: the current task attempt just 'crashed'."""


@dataclass(frozen=True)
class FailurePlan:
    """Which task attempts die, and where.

    Parameters
    ----------
    map_failures / reduce_failures:
        ``task_index → n``: the task's first ``n`` attempts fail.
    probability:
        Additional per-attempt failure probability (deterministically
        derived from ``seed``), applied to attempts not already doomed by
        the explicit plans.
    seed:
        Drives both the random failures and each failure's crash point.
    max_attempts:
        Hadoop's ``mapreduce.map.maxattempts`` analogue (default 4).
    """

    map_failures: Mapping[int, int] = field(default_factory=dict)
    reduce_failures: Mapping[int, int] = field(default_factory=dict)
    probability: float = 0.0
    seed: int = 0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    # ------------------------------------------------------------------

    def _unit(self, phase: str, task_index: int, attempt: int, salt: str) -> float:
        """A deterministic uniform draw in [0, 1)."""
        from repro.mapreduce.engine import stable_hash

        h = stable_hash((salt, phase, task_index, attempt, self.seed))
        return (h % (1 << 53)) / float(1 << 53)

    def should_fail(self, phase: str, task_index: int, attempt: int) -> bool:
        """Whether this attempt (0-based) of the task dies."""
        planned = (
            self.map_failures if phase == "map" else self.reduce_failures
        ).get(task_index, 0)
        if attempt < planned:
            return True
        if self.probability:
            return self._unit(phase, task_index, attempt, "fail") < (
                self.probability
            )
        return False

    def crash_point(
        self, phase: str, task_index: int, attempt: int, num_records: int
    ) -> int:
        """How many input records the doomed attempt processes before dying."""
        if num_records <= 0:
            return 0
        fraction = self._unit(phase, task_index, attempt, "crash")
        return int(fraction * num_records)
