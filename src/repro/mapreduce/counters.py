"""Hadoop-style job counters.

The paper reports ``MAP_OUTPUT_BYTES`` ("total data transferred between map
and reduce task", Sec. 6.1); the engine additionally tracks record counts and
post-combine (materialized/shuffled) bytes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class C:
    """Counter name constants."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    #: serialized size of map emissions, before the combiner (Hadoop's
    #: MAP_OUTPUT_BYTES counter — what Fig. 4(b) reports)
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    #: serialized size after per-split combining — the bytes actually moved
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    #: failed task attempts (Hadoop's NUM_FAILED_MAPS / NUM_FAILED_REDUCES);
    #: partial output and counters of failed attempts are discarded
    FAILED_MAP_TASKS = "FAILED_MAP_TASKS"
    FAILED_REDUCE_TASKS = "FAILED_REDUCE_TASKS"


class Counters:
    """A mapping of counter name → non-negative integer."""

    def __init__(self) -> None:
        self._values: dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._values[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._values.get(name, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate another job's counters into this one (multi-job runs)."""
        for name, value in other._values.items():
            self._values[name] += value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
