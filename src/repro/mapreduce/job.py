"""Job definition: map / combine / reduce over key–value pairs."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class MapReduceJob:
    """Base class for MapReduce jobs.

    Subclasses override :meth:`map` and :meth:`reduce`; :meth:`combine` is
    optional pre-aggregation that the engine applies per input split (as
    Hadoop applies combiners per spill).  ``kv_size`` supplies serialized
    sizes for the byte counters; jobs shipping integer-coded sequences
    override it with real varint sizes.
    """

    #: descriptive name used in metrics and logs
    name: str = "job"

    def map(self, record: Any) -> Iterable[tuple[Any, Any]]:
        """Emit zero or more ``(key, value)`` pairs for one input record."""
        raise NotImplementedError

    def combine(self, key: Any, values: Sequence[Any]) -> Iterable[tuple[Any, Any]]:
        """Pre-aggregate map output within one split.

        The default is the identity combiner (no pre-aggregation).  A
        combiner must be algebraically safe: reducers see combined values.
        """
        return ((key, value) for value in values)

    #: set False to skip the combine stage entirely (identity semantics but
    #: without the per-key grouping cost)
    has_combiner: bool = False

    def reduce(self, key: Any, values: Sequence[Any]) -> Iterable[Any]:
        """Produce output records for one key group."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # serialization metering
    # ------------------------------------------------------------------

    def kv_size(self, key: Any, value: Any) -> int:
        """Serialized size in bytes of one emitted pair.

        The default estimates with a compact generic encoding; jobs that
        care about Fig. 4(b)-style measurements override this with their
        actual wire format.
        """
        return _generic_size(key) + _generic_size(value)


def _generic_size(obj: Any) -> int:
    """Rough serialized size of a generic Python value (fallback metering)."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return max(1, (obj.bit_length() + 7) // 7)
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return 1 + sum(_generic_size(x) for x in obj)
    if isinstance(obj, dict):
        return 1 + sum(
            _generic_size(k) + _generic_size(v) for k, v in obj.items()
        )
    return len(repr(obj))
