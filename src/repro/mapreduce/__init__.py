"""A deterministic, in-process MapReduce substrate.

The paper implements LASH on Hadoop (Sec. 3.1, 6.1).  This package provides
the equivalent execution model for a single machine:

* jobs are (map, combine, reduce) functions over key–value pairs,
* the engine runs map tasks over input splits, applies per-split combiners,
  shuffles by stable key hash into reduce partitions, and runs reducers over
  key groups in sorted key order,
* Hadoop-style counters (``MAP_OUTPUT_BYTES`` et al.) are maintained with
  job-provided serialized sizes,
* per-task wall-clock times are recorded, and a :class:`ClusterSpec`
  scheduler places them onto ``nodes × slots`` to obtain the phase makespans
  a real cluster would show (used for the scalability experiments, Fig. 6),
* task failures can be injected deterministically (:class:`FailurePlan`);
  failed attempts are discarded and retried exactly like Hadoop does,
* the shuffle can run through disk (``spill_dir``): map outputs are sorted
  into run files and reducers stream a merge of their partition's runs,
  exactly like Hadoop's sort/spill/merge pipeline
  (:mod:`repro.mapreduce.spill`).

Only task *placement* is simulated; all data movement, skew, and compute are
real, measured quantities.
"""

from repro.mapreduce.counters import Counters, C
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics, PhaseTimes
from repro.mapreduce.engine import MapReduceEngine, JobResult, stable_hash
from repro.mapreduce.parallel import ParallelMapReduceEngine
from repro.mapreduce.failures import FailurePlan, TaskRetriesExceededError
from repro.mapreduce.cluster import ClusterSpec, schedule_makespan, simulate_cluster
from repro.mapreduce.spill import (
    MERGED_RUNS,
    SPILL_BYTES,
    SPILLED_RECORDS,
    MergedPartition,
    SpillRun,
    spill_map_output,
)

__all__ = [
    "Counters",
    "C",
    "MapReduceJob",
    "JobMetrics",
    "PhaseTimes",
    "MapReduceEngine",
    "ParallelMapReduceEngine",
    "JobResult",
    "stable_hash",
    "FailurePlan",
    "TaskRetriesExceededError",
    "ClusterSpec",
    "schedule_makespan",
    "simulate_cluster",
    "MERGED_RUNS",
    "SPILL_BYTES",
    "SPILLED_RECORDS",
    "MergedPartition",
    "SpillRun",
    "spill_map_output",
]
