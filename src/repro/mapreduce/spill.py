"""Disk-backed shuffle: sort, spill, and merge (Hadoop's external shuffle).

The in-memory shuffle of :class:`~repro.mapreduce.engine.MapReduceEngine`
assumes every map output fits in RAM at once.  Real MapReduce does not:
each map task sorts its output by (partition, key) and *spills* it to
local disk; every reduce task then streams a merge of the sorted runs that
belong to its partition.  This module reproduces that pipeline so the
engine can shuffle datasets larger than memory and so spill/merge costs
become measurable:

* :func:`spill_map_output` — partition one map task's pairs, sort each
  partition by key, and write one run file per non-empty partition.
* :class:`MergedPartition` — a lazy reduce-side view over all run files of
  one partition: keys are merged in sorted order and each key's values are
  read from disk only when the reducer asks for them.

Records are serialized with :mod:`pickle` (framed, streamed one group at a
time); byte counters continue to use the jobs' own wire-format metering,
so spilling never changes ``MAP_OUTPUT_BYTES``/``SHUFFLE_BYTES``.

Keys within one job must be mutually comparable (ints, strings, or tuples
thereof — true for every job in this library); the merge relies on the
same Python ordering the in-memory engine uses, so both shuffles hand
reducers identical group sequences.
"""

from __future__ import annotations

import heapq
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: counter names (extends repro.mapreduce.counters.C)
SPILLED_RECORDS = "SPILLED_RECORDS"
SPILL_BYTES = "SPILL_BYTES"
MERGED_RUNS = "MERGED_RUNS"


@dataclass
class SpillRun:
    """One sorted run file produced by one map task for one partition."""

    path: Path
    partition: int
    records: int
    bytes: int

    def read_groups(self) -> Iterator[tuple[Any, list[Any]]]:
        """Stream the ``(key, values)`` groups back in key order."""
        with open(self.path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return


def spill_map_output(
    pairs: list[tuple[Any, Any]],
    num_partitions: int,
    partitioner,
    directory: Path,
    task_id: int,
) -> list[SpillRun]:
    """Sort one map task's output and write one run file per partition.

    ``partitioner`` maps a key to its reduce partition (the engine passes
    its stable hash).  Values of equal keys are grouped inside the run, so
    the merge only compares keys.
    """
    directory.mkdir(parents=True, exist_ok=True)
    buckets: dict[int, dict[Any, list[Any]]] = {}
    for key, value in pairs:
        bucket = buckets.setdefault(partitioner(key), {})
        bucket.setdefault(key, []).append(value)
    runs: list[SpillRun] = []
    for partition, groups in sorted(buckets.items()):
        path = directory / f"spill-m{task_id:05d}-p{partition:05d}.run"
        records = 0
        with open(path, "wb") as handle:
            for key in sorted(groups):
                values = groups[key]
                pickle.dump((key, values), handle)
                records += len(values)
        runs.append(
            SpillRun(
                path=path,
                partition=partition,
                records=records,
                bytes=path.stat().st_size,
            )
        )
    return runs


@dataclass
class MergedPartition:
    """Reduce-side view of one partition: a streaming merge of sorted runs.

    Mimics the mapping interface the engine's reduce loop uses —
    ``sorted(partition)`` for the key order and ``partition[key]`` for the
    values — while reading values from disk on demand.  Out-of-order
    access falls back to a buffer, so correctness never depends on the
    caller's discipline.
    """

    runs: list[SpillRun]
    _keys: list[Any] | None = None
    _stream: Iterator[tuple[Any, list[Any]]] | None = None
    _buffer: dict[Any, list[Any]] = field(default_factory=dict)

    def _merged_groups(self) -> Iterator[tuple[Any, list[Any]]]:
        """Merge the runs by key, concatenating values of equal keys."""
        streams = [run.read_groups() for run in self.runs]
        merged = heapq.merge(*streams, key=lambda group: group[0])
        current_key: Any = None
        current_values: list[Any] = []
        have_current = False
        for key, values in merged:
            if have_current and key == current_key:
                current_values.extend(values)
            else:
                if have_current:
                    yield current_key, current_values
                current_key, current_values = key, list(values)
                have_current = True
        if have_current:
            yield current_key, current_values

    def keys(self) -> list[Any]:
        """All keys of the partition, sorted (cheap: keys only)."""
        if self._keys is None:
            merged: set[Any] = set()
            for run in self.runs:
                for key, _ in run.read_groups():
                    merged.add(key)
            self._keys = sorted(merged)
        return self._keys

    def __iter__(self) -> Iterator[Any]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def __getitem__(self, key: Any) -> list[Any]:
        if key in self._buffer:
            return self._buffer.pop(key)
        if self._stream is None:
            self._stream = self._merged_groups()
        for current_key, values in self._stream:
            if current_key == key:
                return values
            self._buffer[current_key] = values
        # Stream exhausted without finding the key: the caller went back to
        # an earlier key (e.g. a failed task attempt being retried).
        # Re-merge from disk once — exactly what a re-launched Hadoop
        # reducer does when it re-fetches its inputs.
        self._stream = self._merged_groups()
        for current_key, values in self._stream:
            if current_key == key:
                return values
            self._buffer[current_key] = values
        raise KeyError(key)


def total_spill_stats(runs: list[SpillRun]) -> tuple[int, int]:
    """``(records, bytes)`` across a list of runs."""
    return (
        sum(run.records for run in runs),
        sum(run.bytes for run in runs),
    )


__all__ = [
    "SPILLED_RECORDS",
    "SPILL_BYTES",
    "MERGED_RUNS",
    "SpillRun",
    "spill_map_output",
    "MergedPartition",
    "total_spill_stats",
]
