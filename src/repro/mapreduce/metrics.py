"""Per-task timing metrics and phase summaries."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseTimes:
    """Elapsed seconds per MapReduce phase (the paper's Fig. 5/6 breakdown)."""

    map_s: float
    shuffle_s: float
    reduce_s: float

    @property
    def total_s(self) -> float:
        return self.map_s + self.shuffle_s + self.reduce_s

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            self.map_s + other.map_s,
            self.shuffle_s + other.shuffle_s,
            self.reduce_s + other.reduce_s,
        )

    def row(self) -> dict[str, float]:
        return {
            "Map": round(self.map_s, 4),
            "Shuffle": round(self.shuffle_s, 4),
            "Reduce": round(self.reduce_s, 4),
            "Total": round(self.total_s, 4),
        }


@dataclass
class JobMetrics:
    """Measured execution profile of one job run.

    ``map_task_s`` / ``reduce_task_s`` hold one wall-clock entry per task;
    ``shuffle_s`` is the measured grouping/partitioning time.  The raw task
    vectors feed the cluster scheduler in :mod:`repro.mapreduce.cluster`.
    """

    name: str = "job"
    map_task_s: list[float] = field(default_factory=list)
    reduce_task_s: list[float] = field(default_factory=list)
    shuffle_s: float = 0.0
    shuffle_bytes: int = 0
    #: durations of failed (discarded) task attempts — work the cluster did
    #: but Hadoop threw away
    failed_map_task_s: list[float] = field(default_factory=list)
    failed_reduce_task_s: list[float] = field(default_factory=list)

    def serial_phase_times(self) -> PhaseTimes:
        """Phase times when every task runs back-to-back on one worker.

        Failed attempts are excluded: they model work whose *slot time* is
        wasted, tracked separately by :meth:`wasted_s`.
        """
        return PhaseTimes(
            map_s=sum(self.map_task_s),
            shuffle_s=self.shuffle_s,
            reduce_s=sum(self.reduce_task_s),
        )

    def wasted_s(self) -> float:
        """Seconds burned by failed task attempts."""
        return sum(self.failed_map_task_s) + sum(self.failed_reduce_task_s)

    def merge(self, other: "JobMetrics") -> "JobMetrics":
        """Concatenate task profiles of a multi-job pipeline."""
        self.map_task_s.extend(other.map_task_s)
        self.reduce_task_s.extend(other.reduce_task_s)
        self.shuffle_s += other.shuffle_s
        self.shuffle_bytes += other.shuffle_bytes
        self.failed_map_task_s.extend(other.failed_map_task_s)
        self.failed_reduce_task_s.extend(other.failed_reduce_task_s)
        return self
