"""The in-process MapReduce engine.

Execution model (mirrors Hadoop's semantics):

1. The input is partitioned into *splits*; each split becomes one map task.
2. A map task applies ``job.map`` to each record, meters the raw emissions
   (``MAP_OUTPUT_BYTES``), then applies ``job.combine`` per key within the
   split and meters the combined emissions (``SHUFFLE_BYTES``).
3. The shuffle groups pairs by key and assigns keys to ``num_reduce_tasks``
   partitions via a *stable* hash (Python's randomized string hashing would
   break reproducibility).
4. Each reduce task processes its keys in sorted order and collects
   ``job.reduce`` outputs.

Fault tolerance mirrors Hadoop's as well: with a
:class:`~repro.mapreduce.failures.FailurePlan` installed, chosen task
attempts crash partway through; the engine discards their partial output
and counters and retries, so the job's logical result and counters are
identical to a failure-free run (only ``FAILED_*`` counters and the wasted
attempt times differ).

Everything runs sequentially and deterministically; per-task wall-clock
times are recorded so a cluster layout can be simulated afterwards
(:mod:`repro.mapreduce.cluster`).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.mapreduce.counters import C, Counters
from repro.mapreduce.failures import (
    FailurePlan,
    TaskRetriesExceededError,
    _InjectedFailure,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.spill import (
    MERGED_RUNS,
    SPILL_BYTES,
    SPILLED_RECORDS,
    MergedPartition,
    spill_map_output,
    total_spill_stats,
)

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv(data: bytes, state: int = _FNV_OFFSET) -> int:
    for byte in data:
        state ^= byte
        state = (state * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return state


def stable_hash(key: Any) -> int:
    """A deterministic 64-bit hash (unlike ``hash(str)`` under PYTHONHASHSEED)."""
    if isinstance(key, int):
        return _fnv(key.to_bytes(8, "little", signed=True))
    if isinstance(key, str):
        return _fnv(key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv(key)
    if isinstance(key, tuple):
        state = _FNV_OFFSET
        for part in key:
            state = _fnv(stable_hash(part).to_bytes(8, "little"), state)
        return state
    raise TypeError(f"unhashable shuffle key type: {type(key).__name__}")


@dataclass
class JobResult:
    """Output records plus counters and timing of one job run."""

    output: list[Any]
    counters: Counters
    metrics: JobMetrics


class MapReduceEngine:
    """Runs :class:`MapReduceJob` instances over in-memory records.

    Parameters
    ----------
    num_map_tasks:
        Number of input splits (map tasks).  Records are dealt into splits
        round-robin so skew spreads evenly, as a cluster's block placement
        would.
    num_reduce_tasks:
        Number of reduce partitions.
    failure_plan:
        Optional deterministic task-failure injection (see
        :mod:`repro.mapreduce.failures`).
    spill_dir:
        When set, shuffle through disk instead of memory: every map task's
        output is sorted and spilled to run files under this directory and
        each reduce task streams a merge of its partition's runs
        (:mod:`repro.mapreduce.spill`).  Results and byte counters are
        identical to the in-memory shuffle; ``SPILLED_RECORDS``,
        ``SPILL_BYTES`` and ``MERGED_RUNS`` meter the extra disk traffic.
        Run files live in a per-job temporary subdirectory and are removed
        when the job finishes.
    """

    def __init__(
        self,
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
        failure_plan: FailurePlan | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        if num_map_tasks < 1 or num_reduce_tasks < 1:
            raise ValueError("task counts must be >= 1")
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.failure_plan = failure_plan
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None

    # ------------------------------------------------------------------

    def run(self, job: MapReduceJob, records: Sequence[Any]) -> JobResult:
        counters = Counters()
        metrics = JobMetrics(name=job.name)

        splits = self._split(records)
        map_outputs: list[list[tuple[Any, Any]]] = []
        for index, split in enumerate(splits):
            pairs = self._attempt_task(
                "map", index, split, job, counters, metrics,
                self._run_map_task,
            )
            map_outputs.append(pairs)

        job_dir: Path | None = None
        try:
            start = time.perf_counter()
            if self.spill_dir is None:
                partitions: Sequence[Any] = self._shuffle(map_outputs)
            else:
                job_dir = Path(
                    tempfile.mkdtemp(prefix=f"{job.name}-", dir=self._spill_root())
                )
                partitions = self._shuffle_external(
                    map_outputs, job_dir, counters
                )
            metrics.shuffle_s = time.perf_counter() - start
            metrics.shuffle_bytes = counters[C.SHUFFLE_BYTES]

            output: list[Any] = []
            for index, partition in enumerate(partitions):
                output.extend(
                    self._attempt_task(
                        "reduce", index, partition, job, counters, metrics,
                        self._run_reduce_task,
                    )
                )
        finally:
            if job_dir is not None:
                shutil.rmtree(job_dir, ignore_errors=True)

        return JobResult(output=output, counters=counters, metrics=metrics)

    def _spill_root(self) -> Path:
        assert self.spill_dir is not None
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        return self.spill_dir

    # ------------------------------------------------------------------
    # fault-tolerant task execution
    # ------------------------------------------------------------------

    def _attempt_task(
        self, phase, index, payload, job, counters, metrics, runner
    ):
        """Run one task with retries; merge counters only on success."""
        plan = self.failure_plan
        max_attempts = plan.max_attempts if plan else 1
        attempt = 0
        while True:
            crash_after = None
            if plan is not None and plan.should_fail(phase, index, attempt):
                crash_after = plan.crash_point(
                    phase, index, attempt, len(payload)
                )
            attempt_counters = Counters()
            start = time.perf_counter()
            try:
                result = runner(job, payload, attempt_counters, crash_after)
            except _InjectedFailure:
                elapsed = time.perf_counter() - start
                failed = (
                    metrics.failed_map_task_s
                    if phase == "map"
                    else metrics.failed_reduce_task_s
                )
                failed.append(elapsed)
                counters.increment(
                    C.FAILED_MAP_TASKS
                    if phase == "map"
                    else C.FAILED_REDUCE_TASKS
                )
                attempt += 1
                if attempt >= max_attempts:
                    raise TaskRetriesExceededError(phase, index, attempt)
                continue
            elapsed = time.perf_counter() - start
            (
                metrics.map_task_s
                if phase == "map"
                else metrics.reduce_task_s
            ).append(elapsed)
            counters.merge(attempt_counters)
            return result

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _split(self, records: Sequence[Any]) -> list[list[Any]]:
        n_tasks = min(self.num_map_tasks, max(1, len(records)))
        splits: list[list[Any]] = [[] for _ in range(n_tasks)]
        for i, record in enumerate(records):
            splits[i % n_tasks].append(record)
        return splits

    def _run_map_task(
        self,
        job: MapReduceJob,
        split: Sequence[Any],
        counters: Counters,
        crash_after: int | None = None,
    ) -> list[tuple[Any, Any]]:
        return run_map_task(job, split, counters, crash_after)

    def _shuffle_external(
        self,
        map_outputs: list[list[tuple[Any, Any]]],
        job_dir: Path,
        counters: Counters,
    ) -> list[MergedPartition]:
        """Sort/spill each map output to disk, merge runs per partition."""
        partitioner = lambda key: (  # noqa: E731 - tiny closure
            stable_hash(key) % self.num_reduce_tasks
        )
        by_partition: list[list] = [[] for _ in range(self.num_reduce_tasks)]
        for task_id, pairs in enumerate(map_outputs):
            runs = spill_map_output(
                pairs, self.num_reduce_tasks, partitioner, job_dir, task_id
            )
            records, spill_bytes = total_spill_stats(runs)
            counters.increment(SPILLED_RECORDS, records)
            counters.increment(SPILL_BYTES, spill_bytes)
            for run in runs:
                by_partition[run.partition].append(run)
        counters.increment(
            MERGED_RUNS, sum(len(runs) for runs in by_partition)
        )
        return [MergedPartition(runs=runs) for runs in by_partition]

    def _shuffle(
        self, map_outputs: list[list[tuple[Any, Any]]]
    ) -> list[dict[Any, list[Any]]]:
        partitions: list[dict[Any, list[Any]]] = [
            {} for _ in range(self.num_reduce_tasks)
        ]
        for pairs in map_outputs:
            for key, value in pairs:
                bucket = partitions[stable_hash(key) % self.num_reduce_tasks]
                bucket.setdefault(key, []).append(value)
        return partitions

    def _run_reduce_task(
        self,
        job: MapReduceJob,
        partition: dict[Any, list[Any]],
        counters: Counters,
        crash_after: int | None = None,
    ) -> list[Any]:
        return run_reduce_task(job, partition, counters, crash_after)


def run_map_task(
    job: MapReduceJob,
    split: Sequence[Any],
    counters: Counters,
    crash_after: int | None = None,
) -> list[tuple[Any, Any]]:
    """One map task: apply ``job.map`` to a split, then the combiner.

    Module-level so both the serial engine and the process-parallel
    executor (:mod:`repro.mapreduce.parallel`) run the identical code.
    """
    raw: list[tuple[Any, Any]] = []
    for position, record in enumerate(split):
        if crash_after is not None and position >= crash_after:
            raise _InjectedFailure()
        counters.increment(C.MAP_INPUT_RECORDS)
        for key, value in job.map(record):
            raw.append((key, value))
            counters.increment(C.MAP_OUTPUT_RECORDS)
            counters.increment(C.MAP_OUTPUT_BYTES, job.kv_size(key, value))
    if crash_after is not None:
        # crash point beyond the split: die right before task commit
        raise _InjectedFailure()
    if not job.has_combiner:
        for key, value in raw:
            counters.increment(C.SHUFFLE_BYTES, job.kv_size(key, value))
        return raw
    grouped: dict[Any, list[Any]] = {}
    for key, value in raw:
        grouped.setdefault(key, []).append(value)
    combined: list[tuple[Any, Any]] = []
    for key, values in grouped.items():
        counters.increment(C.COMBINE_INPUT_RECORDS, len(values))
        for out_key, out_value in job.combine(key, values):
            combined.append((out_key, out_value))
            counters.increment(C.COMBINE_OUTPUT_RECORDS)
            counters.increment(
                C.SHUFFLE_BYTES, job.kv_size(out_key, out_value)
            )
    return combined


def run_reduce_task(
    job: MapReduceJob,
    partition: dict[Any, list[Any]],
    counters: Counters,
    crash_after: int | None = None,
) -> list[Any]:
    """One reduce task: ``job.reduce`` over the partition's sorted keys."""
    output: list[Any] = []
    for position, key in enumerate(sorted(partition)):
        if crash_after is not None and position >= crash_after:
            raise _InjectedFailure()
        values = partition[key]
        counters.increment(C.REDUCE_INPUT_GROUPS)
        counters.increment(C.REDUCE_INPUT_RECORDS, len(values))
        for out in job.reduce(key, values):
            output.append(out)
            counters.increment(C.REDUCE_OUTPUT_RECORDS)
    if crash_after is not None:
        raise _InjectedFailure()
    return output
