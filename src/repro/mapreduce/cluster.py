"""Cluster placement simulation for scalability experiments (Fig. 6).

The engine measures one wall-clock time per map/reduce task.  Given a
:class:`ClusterSpec` (the paper uses 10 worker nodes with 8 concurrent task
slots each, 10 GbE), :func:`simulate_cluster` schedules those measured task
times greedily onto the available slots — longest task first, earliest slot
first — and reports the *makespan* of each phase.  Shuffle time combines the
measured grouping cost with a network-transfer model
``bytes / aggregate bandwidth``.

This keeps every data-dependent quantity real (task durations, bytes, skew)
and only simulates task placement, which is what adding machines changes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

from repro.mapreduce.metrics import JobMetrics, PhaseTimes


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: paper defaults are nodes=10, slots=8, 10 GbE."""

    nodes: int = 10
    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 8
    network_gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 1:
            raise ValueError("each node needs at least one slot")
        if self.network_gbps <= 0:
            raise ValueError("network bandwidth must be positive")

    @property
    def map_slots(self) -> int:
        return self.nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.nodes * self.reduce_slots_per_node

    def network_seconds(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` across the aggregate bisection."""
        bytes_per_second = self.network_gbps * 1e9 / 8 * self.nodes
        return num_bytes / bytes_per_second


def schedule_makespan(task_seconds: Iterable[float], slots: int) -> float:
    """Makespan of greedy LPT scheduling of tasks onto identical slots."""
    if slots < 1:
        raise ValueError("slots must be >= 1")
    tasks = sorted(task_seconds, reverse=True)
    if not tasks:
        return 0.0
    heap = [0.0] * min(slots, len(tasks))
    heapq.heapify(heap)
    for task in tasks:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + task)
    return max(heap)


def simulate_cluster(metrics: JobMetrics, cluster: ClusterSpec) -> PhaseTimes:
    """Phase makespans of the measured job on the given cluster layout."""
    map_s = schedule_makespan(metrics.map_task_s, cluster.map_slots)
    reduce_s = schedule_makespan(metrics.reduce_task_s, cluster.reduce_slots)
    shuffle_s = metrics.shuffle_s / cluster.nodes + cluster.network_seconds(
        metrics.shuffle_bytes
    )
    return PhaseTimes(map_s=map_s, shuffle_s=shuffle_s, reduce_s=reduce_s)
