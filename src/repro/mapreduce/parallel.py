"""Process-parallel execution of MapReduce jobs.

The serial engine runs tasks one after another and *simulates* cluster
placement from the measured profile.  This module actually runs map and
reduce tasks concurrently in worker processes — on a multi-core machine
the wall-clock speedup is real.  Semantics are identical: each task runs
the same :func:`~repro.mapreduce.engine.run_map_task` /
:func:`~repro.mapreduce.engine.run_reduce_task` code the serial engine
uses, per-task counters and timings are shipped back and merged, and the
shuffle is the same stable-hash grouping.

Scope notes (documented limitations, not surprises):

* Jobs are pickled to workers, so a job must be picklable — true for
  every job in this library (they hold vocabularies, params and miners,
  all plain data).
* Mutations a job makes to itself inside a worker stay in the worker —
  with one deliberate exception: a local miner's ``ExplorationStats``
  are measured per reduce task, shipped back with the task output, and
  merged into the driver-side miner, so Fig. 4(d)-style search-space
  measurements read identically under either engine.
* Failure injection and the disk-backed shuffle are features of the
  serial engine; combining them with process parallelism is rejected
  rather than half-supported.

>>> engine = ParallelMapReduceEngine(num_map_tasks=8, num_reduce_tasks=8,
...                                  max_workers=4)
>>> lash = Lash(params)
>>> lash.engine = engine          # drop-in replacement
>>> result = lash.mine(database, hierarchy)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.errors import InvalidParameterError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.engine import (
    JobResult,
    MapReduceEngine,
    run_map_task,
    run_reduce_task,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.miners.base import ExplorationStats

#: payloads are (job, task input); results are (records, counters, seconds)
_TaskResult = tuple[list, Counters, float]
#: reduce results additionally carry the task's local-miner stats delta
_ReduceResult = tuple[list, Counters, float, ExplorationStats | None]


def _map_worker(payload: tuple[MapReduceJob, Sequence[Any]]) -> _TaskResult:
    job, split = payload
    counters = Counters()
    start = time.perf_counter()
    pairs = run_map_task(job, split, counters)
    return pairs, counters, time.perf_counter() - start


def _reduce_worker(
    payload: tuple[MapReduceJob, dict[Any, list[Any]]]
) -> _ReduceResult:
    job, partition = payload
    # the job arrived by pickle, so its miner may carry stats accumulated
    # before shipping; zero the worker-local copy to measure this task's
    # delta alone — the driver merges deltas, never absolute counts
    miner = getattr(job, "miner", None)
    stats: ExplorationStats | None = getattr(miner, "stats", None)
    if stats is not None and hasattr(miner, "reset_stats"):
        miner.reset_stats()
    counters = Counters()
    start = time.perf_counter()
    output = run_reduce_task(job, partition, counters)
    stats = getattr(miner, "stats", None)
    return output, counters, time.perf_counter() - start, stats


class ParallelMapReduceEngine(MapReduceEngine):
    """A drop-in engine that runs tasks in a process pool.

    Parameters
    ----------
    num_map_tasks / num_reduce_tasks:
        As in :class:`~repro.mapreduce.engine.MapReduceEngine`.
    max_workers:
        Worker processes; defaults to the machine's CPU count capped by
        the task counts.
    """

    def __init__(
        self,
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
        max_workers: int | None = None,
    ) -> None:
        super().__init__(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        )
        if max_workers is None:
            max_workers = max(
                1,
                min(os.cpu_count() or 1, num_map_tasks, num_reduce_tasks),
            )
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    def run(self, job: MapReduceJob, records: Sequence[Any]) -> JobResult:
        counters = Counters()
        metrics = JobMetrics(name=job.name)
        splits = self._split(records)

        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            map_results = list(
                pool.map(_map_worker, [(job, split) for split in splits])
            )
            map_outputs = []
            for pairs, task_counters, elapsed in map_results:
                map_outputs.append(pairs)
                counters.merge(task_counters)
                metrics.map_task_s.append(elapsed)

            start = time.perf_counter()
            partitions = self._shuffle(map_outputs)
            metrics.shuffle_s = time.perf_counter() - start
            metrics.shuffle_bytes = counters[C.SHUFFLE_BYTES]

            reduce_results = list(
                pool.map(
                    _reduce_worker,
                    [(job, partition) for partition in partitions],
                )
            )
        output: list[Any] = []
        driver_miner = getattr(job, "miner", None)
        for records_out, task_counters, elapsed, task_stats in reduce_results:
            output.extend(records_out)
            counters.merge(task_counters)
            metrics.reduce_task_s.append(elapsed)
            if task_stats is not None and driver_miner is not None:
                # fold each worker's search-space delta into the driver's
                # miner, matching the serial engine's in-place accounting
                driver_miner.stats.merge(task_stats)
        return JobResult(output=output, counters=counters, metrics=metrics)


__all__ = ["ParallelMapReduceEngine"]
