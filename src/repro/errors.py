"""Exception types raised by the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class HierarchyError(ReproError):
    """Raised for structurally invalid hierarchies (cycles, bad parents)."""


class UnknownItemError(ReproError, KeyError):
    """Raised when an item name or id is not present in a vocabulary."""

    def __init__(self, item: object):
        super().__init__(f"unknown item: {item!r}")
        self.item = item


class InvalidParameterError(ReproError, ValueError):
    """Raised when mining parameters are out of their legal range."""


class QueryRejectedError(ReproError):
    """Raised by admission control when a query's estimated execution
    cost exceeds the service ceiling.  Carries the numbers the client
    needs to retry sensibly (HTTP maps this to 429): the estimate in
    abstract work units and the ceiling it crossed."""

    def __init__(self, message: str, estimated_cost: float, max_cost: float):
        super().__init__(message)
        self.estimated_cost = estimated_cost
        self.max_cost = max_cost


class ServerBusyError(ReproError):
    """Raised when a serving front end is at its in-flight capacity and
    sheds the request instead of queueing it (HTTP maps this to 503
    with ``Retry-After``).  The router treats it like a transport
    failure: the request fails over to a replica instead of surfacing
    as a client error."""

    def __init__(self, message: str = "server busy", retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class EncodingError(ReproError):
    """Raised when (de)serialization of sequences or key-value pairs fails."""


class StoreCorruptError(EncodingError):
    """Raised when a pattern store file fails integrity validation —
    truncation or a per-section checksum mismatch.  Subclasses
    :class:`EncodingError` so callers handling decode failures keep
    working; catch this type to distinguish bit-rot from format bugs."""
