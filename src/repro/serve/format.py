"""On-disk format of the pattern store: layout constants and helpers.

One store *file* (written by :mod:`repro.serve.writer`, read by
:mod:`repro.serve.store`) is laid out as::

    magic "RPROPST1"                                          8 bytes
    header: version, flags, n_items, n_patterns,
            total_frequency, max_length                       28 bytes
    section table: 7 × u64 absolute offsets                   56 bytes
    [vocab]     per item: name, frequency, parent ids         varint
    [lengths]   per pattern: its length                       varint
    [pat_offs]  (n_patterns+1) × u64, relative to [patterns]  fixed
    [patterns]  per pattern: frequency + zigzag-delta items   varint
    [post_offs] (n_items+1) × u64, relative to [postings]     fixed
    [postings]  per item: ascending pattern indexes, gap-coded;
                version >= 2 interleaves each index with the
                gap-coded positions of the item in that pattern
    [checksums] 6 × u32 CRC-32, one per section               optional

The trailing checksum section exists iff :data:`FLAG_CHECKSUMS` is set
in the header flags; the section table's final offset always marks the
end of the postings, so readers locate the checksums (and validate the
file size) from the flag alone.

A *sharded* store is a directory of store files plus a JSON manifest
(:data:`MANIFEST_NAME`).  Patterns are routed to shards by
:func:`shard_of` — a stable FNV-1a hash of the pattern's **first item
name** (names, not ids, so the routing survives vocabulary remaps when
stores are merged).  Every shard file carries the full shared
vocabulary, making each one a valid standalone store.
"""

from __future__ import annotations

import json
import re
import struct
from pathlib import Path
from typing import Sequence

from repro.errors import EncodingError, StoreCorruptError
from repro.mapreduce.engine import stable_hash

MAGIC = b"RPROPST1"
#: current store version, the one every writer emits.  Version 2 added
#: positional postings: each ``(item, pattern index)`` entry carries the
#: gap-coded positions the item occupies inside the pattern, feeding the
#: compiled-query-plan accelerator.  Version-1 files (index-only
#: postings) still open read-only; ``lash index compact`` or ``lash
#: index merge`` rewrites them to the current version.
VERSION = 2
#: the positional-postings encoding starts at this version
VERSION_POSITIONAL = 2
#: versions readers accept
SUPPORTED_VERSIONS = (1, 2)

#: header flag: a 6 × u32 CRC-32 section trails the postings
FLAG_CHECKSUMS = 0x1
#: header flag: the store is a *signed delta*.  Every frequency — the
#: header's total, each vocabulary entry's, each pattern record's — is
#: zigzag-encoded and may be negative; a negative record is a
#: *decrement* emitted by ``lash ingest`` when sequences are retired.
#: Delta stores exist only in the compaction spool: ``merge_stores``
#: consumes them and the fold drops any pattern whose summed frequency
#: falls below the minimum, so a served store never carries the flag.
FLAG_DELTA = 0x2

HEADER_STRUCT = struct.Struct("<HHIQQI")
SECTIONS_STRUCT = struct.Struct("<7Q")
U64 = struct.Struct("<Q")
CHECKSUMS_STRUCT = struct.Struct("<6I")
#: bytes read by :meth:`PatternStore.open` before any query arrives
HEADER_SIZE = len(MAGIC) + HEADER_STRUCT.size + SECTIONS_STRUCT.size

#: data sections, in file order, as named by error messages
SECTION_NAMES = (
    "vocabulary",
    "lengths",
    "pattern offsets",
    "patterns",
    "posting offsets",
    "postings",
)

# ----------------------------------------------------------------------
# sharded-store manifest
# ----------------------------------------------------------------------

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-sharded-pattern-store"
MANIFEST_VERSION = 1
#: routing function recorded in the manifest so a future format change
#: cannot silently misroute lookups against old shard sets
PARTITIONER = "fnv64(first-item-name)"


def shard_of(first_item: str, num_shards: int) -> int:
    """Shard index owning every pattern whose first item is ``first_item``.

    Keyed on the item *name* through the engine's
    :func:`~repro.mapreduce.engine.stable_hash` so the assignment is
    reproducible across processes, Python versions, and — critically —
    across merges that renumber item ids.
    """
    return stable_hash(first_item) % num_shards


#: any generation's shard file name (used to validate directory
#: contents before deletion and to sweep retired generations)
SHARD_FILE_RE = re.compile(r"shard-\d{5}-of-\d{5}(-g\d{6})?\.store")


def shard_filename(index: int, num_shards: int, generation: int = 0) -> str:
    """Name of one shard file.

    Generation 0 (a fresh build) keeps the historical name; online
    compaction writes generation ``g+1`` files next to the live
    generation ``g`` set, so the tag keeps the two sets from colliding
    until the manifest swap retires the old one.
    """
    base = f"shard-{index:05d}-of-{num_shards:05d}"
    if generation:
        base += f"-g{generation:06d}"
    return base + ".store"


def write_manifest(directory: Path, shard_files: Sequence[str], meta: dict) -> None:
    """Atomically write the shard-set manifest (its presence marks the
    directory as a complete sharded store)."""
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "partitioner": PARTITIONER,
        "shards": len(shard_files),
        "shard_files": list(shard_files),
        **meta,
    }
    path = directory / MANIFEST_NAME
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def read_manifest(directory: Path) -> dict:
    """Load and validate a shard-set manifest."""
    path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise EncodingError(
            f"{directory}: not a sharded pattern store (no {MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as exc:
        raise StoreCorruptError(f"{path}: invalid manifest: {exc}") from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise EncodingError(
            f"{path}: not a sharded pattern store manifest "
            f"(format {manifest.get('format')!r})"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise EncodingError(
            f"{path}: unsupported manifest version "
            f"{manifest.get('version')!r} (expected {MANIFEST_VERSION})"
        )
    if manifest.get("partitioner") != PARTITIONER:
        raise EncodingError(
            f"{path}: unknown shard partitioner "
            f"{manifest.get('partitioner')!r} (expected {PARTITIONER!r})"
        )
    files = manifest.get("shard_files")
    if not isinstance(files, list) or not files or not all(
        isinstance(f, str) for f in files
    ):
        raise StoreCorruptError(f"{path}: manifest lists no shard files")
    generation = manifest.setdefault("generation", 0)
    if not isinstance(generation, int) or isinstance(generation, bool):
        raise StoreCorruptError(
            f"{path}: manifest generation {generation!r} is not an integer"
        )
    return manifest


def is_sharded_store(path: str | Path) -> bool:
    """True when ``path`` is a sharded-store directory (has a manifest)."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


# ----------------------------------------------------------------------
# delta sidecar metadata
# ----------------------------------------------------------------------

#: suffix of the JSON sidecar published next to each ingest delta.  The
#: sidecar is written (tmp + rename) *before* the delta file itself is
#: renamed into place, so a ``.store`` file with a sidecar is complete
#: by construction; a ``.store`` without one is a legacy spool delta
#: that carries no watermark.
DELTA_META_SUFFIX = ".meta.json"


def delta_meta_path(delta: Path) -> Path:
    """Sidecar path for a spool delta file."""
    return delta.with_name(delta.name + DELTA_META_SUFFIX)


def write_delta_meta(
    delta: Path, meta: dict, source: Path | None = None
) -> Path:
    """Atomically publish ``meta`` as the sidecar of ``delta``.

    The caller supplies the semantic fields (kind, sequence range,
    watermark); the payload integrity fields — byte size and CRC-32 of
    the delta file as it exists *right now* — are stamped here so the
    sidecar can never describe bytes it has not seen.  ``source`` reads
    the bytes from a staging path while the sidecar is still named for
    the final ``delta`` location (the publish protocol renames the
    sidecar into place *before* the delta itself).
    """
    import zlib

    data = (delta if source is None else source).read_bytes()
    payload = {
        "format": "repro-ingest-delta",
        "bytes": len(data),
        "crc32": zlib.crc32(data) & 0xFFFFFFFF,
        **meta,
    }
    path = delta_meta_path(delta)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def read_delta_meta(delta: Path) -> dict | None:
    """Load the sidecar of ``delta``, or ``None`` when it has none.

    A present-but-unreadable sidecar raises :class:`StoreCorruptError`
    so the daemon quarantines the pair instead of applying a delta
    whose provenance cannot be checked.
    """
    path = delta_meta_path(delta)
    try:
        meta = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, OSError) as exc:
        raise StoreCorruptError(f"{path}: invalid delta sidecar: {exc}") from None
    if not isinstance(meta, dict) or meta.get("format") != "repro-ingest-delta":
        raise StoreCorruptError(f"{path}: not an ingest-delta sidecar")
    return meta


def verify_delta_meta(delta: Path, meta: dict) -> bool:
    """True iff the delta's bytes match the size + CRC-32 in ``meta``."""
    import zlib

    try:
        data = delta.read_bytes()
    except OSError:
        return False
    return len(data) == meta.get("bytes") and (
        zlib.crc32(data) & 0xFFFFFFFF
    ) == meta.get("crc32")


__all__ = [
    "MAGIC",
    "VERSION",
    "VERSION_POSITIONAL",
    "SUPPORTED_VERSIONS",
    "FLAG_CHECKSUMS",
    "FLAG_DELTA",
    "HEADER_STRUCT",
    "SECTIONS_STRUCT",
    "U64",
    "CHECKSUMS_STRUCT",
    "HEADER_SIZE",
    "SECTION_NAMES",
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "PARTITIONER",
    "SHARD_FILE_RE",
    "shard_of",
    "shard_filename",
    "write_manifest",
    "read_manifest",
    "is_sharded_store",
    "DELTA_META_SUFFIX",
    "delta_meta_path",
    "write_delta_meta",
    "read_delta_meta",
    "verify_delta_meta",
]
