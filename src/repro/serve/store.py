"""The pattern store reader: a memory-mapped binary index of mined patterns.

``lash mine`` is the expensive, run-once half of the paper's exploration
story; this module is the cheap, run-many half.  A store file is built
once (:mod:`repro.serve.writer`) from a mining result or a patterns TSV
and then serves wildcard queries directly from disk: opening it reads
only a fixed-size header, the file is memory-mapped, and every section —
vocabulary, pattern records, postings — is decoded lazily on first use.
A server process is answering its first query microseconds after
``open()`` instead of re-deriving a vocabulary and inverted index from
text.

The byte layout lives in :mod:`repro.serve.format`; patterns are stored
most-frequent-first (ties by coded pattern), the exact order
:class:`~repro.query.index.PatternIndex` uses, so the two backends
return identical ranked results.  The fixed-width offset tables give
O(1) random access into the varint sections — the store never has to
decode records it does not touch.  For stores written with per-section
checksums, ``open()`` verifies every section's CRC-32 and raises
:class:`~repro.errors.StoreCorruptError` on a mismatch (skippable with
``verify_checksums=False`` when O(header) startup matters more than
bit-rot detection).
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import EncodingError, StoreCorruptError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.base import Pattern, PatternSearchBase
from repro.io.codec import (
    read_deltas,
    read_positional_postings,
    read_sequence,
    read_uvarint,
    section_checksum,
    zigzag_decode,
)
from repro.serve.format import (
    CHECKSUMS_STRUCT,
    FLAG_CHECKSUMS,
    FLAG_DELTA,
    HEADER_SIZE,
    HEADER_STRUCT,
    MAGIC,
    SECTION_NAMES,
    SECTIONS_STRUCT,
    SUPPORTED_VERSIONS,
    U64,
    VERSION,
    VERSION_POSITIONAL,
)
from repro.serve.writer import write_store


class PatternStore(PatternSearchBase):
    """Lazily loaded, memory-mapped pattern store.

    Opening is O(header) plus, for checksummed files, one CRC-32 sweep
    (disable with ``verify_checksums=False``): the constructor validates
    the magic, reads the section table and maps the file.  The
    vocabulary, pattern records, postings lists and length groups are
    each decoded on first access and cached, so a process that only ever
    runs selective queries never pays for the sections those queries
    skip.

    Thread-safe for concurrent reads (the HTTP server runs one thread
    per request): one-time section builds (vocabulary, length groups)
    are lock-guarded; per-record decodes are lock-free pure reads of
    the immutable map with locked cache inserts, so cold-cache misses
    proceed in parallel.

    Decoded records are memoized up to ``pattern_cache_size`` patterns
    and ``postings_cache_size`` postings lists; past the caps, decodes
    still answer but are not retained, so a single broad scan cannot
    pin the whole decoded store in memory.

    Use as a context manager or call :meth:`close` to release the map.
    """

    def __init__(
        self,
        path: str | Path,
        pattern_cache_size: int = 1 << 16,
        postings_cache_size: int = 1 << 12,
        verify_checksums: bool = True,
        vocabulary: Vocabulary | None = None,
        fileobj=None,
    ) -> None:
        """``vocabulary`` pre-supplies the decoded vocabulary, skipping
        the vocab-section decode entirely.  The caller asserts it equals
        the file's own section — the sharded store passes the one copy
        all its shards share instead of letting each shard re-decode the
        identical bytes.

        ``fileobj`` supplies an already-open binary handle for ``path``
        (ownership transfers; it is closed with the store).  The sharded
        store opens one per shard at mount time, so a shard file
        unlinked later — e.g. a generation retired by online compaction
        — can still be lazily mapped through the pinned inode."""
        super().__init__()
        self._pattern_cache_size = pattern_cache_size
        self._postings_cache_size = postings_cache_size
        self._path = Path(path)
        self._file = open(self._path, "rb") if fileobj is None else fileobj
        try:
            head = self._file.read(HEADER_SIZE)
            if len(head) < HEADER_SIZE or not head.startswith(MAGIC):
                raise EncodingError(
                    f"{self._path}: not a pattern store (bad magic)"
                )
            (
                self._version,
                self._flags,
                self._n_items,
                self._n_patterns,
                self._total_frequency,
                self._max_length,
            ) = HEADER_STRUCT.unpack_from(head, len(MAGIC))
            if self._version not in SUPPORTED_VERSIONS:
                raise EncodingError(
                    f"{self._path}: unsupported store version "
                    f"{self._version} (supported: {SUPPORTED_VERSIONS})"
                )
            # version 1 files carry index-only postings: they still
            # serve every query, but without positions the accelerated
            # matcher degrades to bitset pruning + DP verification
            self._positional = self._version >= VERSION_POSITIONAL
            (
                self._off_vocab,
                self._off_lengths,
                self._off_pat_offsets,
                self._off_patterns,
                self._off_post_offsets,
                self._off_postings,
                self._off_end,
            ) = SECTIONS_STRUCT.unpack_from(head, len(MAGIC) + HEADER_STRUCT.size)
            self._checksummed = bool(self._flags & FLAG_CHECKSUMS)
            # a signed delta store (spool-only): every frequency is
            # zigzag-coded and decrements come out negative
            self._delta = bool(self._flags & FLAG_DELTA)
            if self._delta:
                self._total_frequency = zigzag_decode(self._total_frequency)
            expected_size = self._off_end + (
                CHECKSUMS_STRUCT.size if self._checksummed else 0
            )
            if expected_size != os.fstat(self._file.fileno()).st_size:
                raise StoreCorruptError(
                    f"{self._path}: truncated pattern store"
                )
            self._data = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            if self._checksummed and verify_checksums:
                self._verify_checksums()
        except Exception:
            self._file.close()
            raise
        self._lock = threading.RLock()
        self._vocab: Vocabulary | None = vocabulary
        self._pattern_cache: dict[int, tuple[Pattern, int]] = {}
        self._postings_cache: dict[int, list[int]] = {}
        # parallel to _postings_cache for version >= 2 files: per entry,
        # the positions the item occupies inside that pattern
        self._positions_cache: dict[int, list[tuple[int, ...]]] = {}
        self._by_length: dict[int, list[int]] | None = None

    def _verify_checksums(self) -> None:
        """CRC-check every section against the trailing checksum block."""
        stored = CHECKSUMS_STRUCT.unpack_from(self._data, self._off_end)
        bounds = (
            self._off_vocab,
            self._off_lengths,
            self._off_pat_offsets,
            self._off_patterns,
            self._off_post_offsets,
            self._off_postings,
            self._off_end,
        )
        for i, name in enumerate(SECTION_NAMES):
            actual = section_checksum(self._data, bounds[i], bounds[i + 1])
            if actual != stored[i]:
                raise StoreCorruptError(
                    f"{self._path}: checksum mismatch in {name} section "
                    f"(stored {stored[i]:#010x}, computed {actual:#010x})"
                )

    @classmethod
    def open(
        cls, path: str | Path, verify_checksums: bool = True
    ) -> "PatternStore":
        return cls(path, verify_checksums=verify_checksums)

    @classmethod
    def build(
        cls,
        path: str | Path,
        patterns: Mapping[Pattern, int],
        vocabulary: Vocabulary,
        checksums: bool = True,
    ) -> "PatternStore":
        """Write a store file and open it."""
        write_store(path, patterns, vocabulary, checksums=checksums)
        return cls(path)

    def close(self) -> None:
        self._data.close()
        self._file.close()

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # header-only metadata
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    def describe(self) -> dict:
        """Store metadata; available without decoding any section."""
        return {
            "path": str(self._path),
            "version": self._version,
            "items": self._n_items,
            "patterns": self._n_patterns,
            "total_frequency": self._total_frequency,
            "max_length": self._max_length,
            "file_bytes": self._off_end
            + (CHECKSUMS_STRUCT.size if self._checksummed else 0),
            "checksums": self._checksummed,
            "positional": self._positional,
            "delta": self._delta,
        }

    # ------------------------------------------------------------------
    # storage primitives (see PatternSearchBase)
    # ------------------------------------------------------------------

    def _vocabulary_instance(self) -> Vocabulary:
        if self._vocab is None:
            with self._lock:
                if self._vocab is None:
                    self._vocab = self._decode_vocabulary()
        return self._vocab

    def _decode_vocabulary(self) -> Vocabulary:
        data = self._data
        offset = self._off_vocab
        names: list[str] = []
        frequencies: list[int] = []
        parent_lists: list[tuple[int, ...]] = []
        for _ in range(self._n_items):
            n, offset = read_uvarint(data, offset)
            names.append(data[offset:offset + n].decode("utf-8"))
            offset += n
            freq, offset = read_uvarint(data, offset)
            frequencies.append(zigzag_decode(freq) if self._delta else freq)
            n_parents, offset = read_uvarint(data, offset)
            parents = []
            for _ in range(n_parents):
                parent, offset = read_uvarint(data, offset)
                parents.append(parent)
            parent_lists.append(tuple(parents))
        hierarchy = Hierarchy()
        for name in names:
            hierarchy.add_item(name)
        for name, parents in zip(names, parent_lists):
            for parent in parents:
                hierarchy.add_edge(name, names[parent])
        return Vocabulary(names, hierarchy, frequencies)

    def _num_patterns(self) -> int:
        return self._n_patterns

    def _pattern_at(self, idx: int) -> tuple[Pattern, int]:
        # per-record decodes are pure reads of the immutable mmap, so
        # concurrent cold misses decode in parallel (worst case: two
        # threads build the same record); only the insert takes the lock
        cached = self._pattern_cache.get(idx)
        if cached is not None:
            return cached
        if not 0 <= idx < self._n_patterns:
            raise IndexError(f"pattern index {idx} out of range")
        base = self._off_pat_offsets + U64.size * idx
        start = U64.unpack_from(self._data, base)[0] + self._off_patterns
        freq, offset = read_uvarint(self._data, start)
        if self._delta:
            freq = zigzag_decode(freq)
        pattern, _ = read_sequence(self._data, offset)
        record = (pattern, freq)
        with self._lock:
            if len(self._pattern_cache) < self._pattern_cache_size:
                self._pattern_cache[idx] = record
        return record

    def _decode_postings(
        self, item_id: int
    ) -> tuple[list[int], list[tuple[int, ...]] | None]:
        base = self._off_post_offsets + U64.size * item_id
        start, end = struct.unpack_from("<2Q", self._data, base)
        start += self._off_postings
        end += self._off_postings
        if self._positional:
            return read_positional_postings(self._data, start, end)
        return read_deltas(self._data, start, end), None

    def _postings_for(self, item_id: int) -> Sequence[int]:
        cached = self._postings_cache.get(item_id)
        if cached is not None:
            return cached
        if not 0 <= item_id < self._n_items:
            return ()
        postings, positions = self._decode_postings(item_id)
        with self._lock:
            if len(self._postings_cache) < self._postings_cache_size:
                self._postings_cache[item_id] = postings
                if positions is not None:
                    self._positions_cache[item_id] = positions
        return postings

    def _postings_size_estimate(self, item_id: int) -> int:
        """O(1) postings-size estimate for the query planner: the
        postings byte range out of the offset table, divided by a rough
        bytes-per-entry (a positional entry is an index delta varint
        plus a position count plus gap-coded positions, ≥3 bytes; a
        version-1 entry a bare delta varint).  Never decodes — ordering
        and skip decisions only need relative magnitudes."""
        cached = self._postings_cache.get(item_id)
        if cached is not None:
            return len(cached)
        if not 0 <= item_id < self._n_items:
            return 0
        base = self._off_post_offsets + U64.size * item_id
        start, end = struct.unpack_from("<2Q", self._data, base)
        span = end - start
        if not span:
            return 0
        return max(1, span // 3) if self._positional else span

    def _has_positions(self) -> bool:
        return self._positional

    def _positional_postings_for(self, item_id: int):
        if not self._positional:
            return None
        if not 0 <= item_id < self._n_items:
            return [], []
        postings = self._postings_cache.get(item_id)
        positions = self._positions_cache.get(item_id)
        if postings is None or positions is None:
            postings, positions = self._decode_postings(item_id)
            with self._lock:
                if len(self._postings_cache) < self._postings_cache_size:
                    self._postings_cache[item_id] = postings
                    self._positions_cache[item_id] = positions
        return postings, positions

    def _length_groups(self) -> dict[int, Sequence[int]]:
        if self._by_length is None:
            with self._lock:
                if self._by_length is None:
                    groups: dict[int, list[int]] = {}
                    offset = self._off_lengths
                    for idx in range(self._n_patterns):
                        length, offset = read_uvarint(self._data, offset)
                        groups.setdefault(length, []).append(idx)
                    self._by_length = groups
        return self._by_length


#: re-exported for the pre-split import path ``repro.serve.store.HEADER_SIZE``
__all__ = ["PatternStore", "write_store", "HEADER_SIZE", "MAGIC", "VERSION"]
