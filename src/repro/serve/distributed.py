"""Shard servers: one process serving a slice of a sharded store.

One :class:`ShardServer` mounts a subset of the shards named by a
:class:`~repro.serve.sharded.ShardedPatternStore` manifest and answers
**rank-ordered partial results** over the socket protocol of
:mod:`repro.serve.protocol`.  The records it returns carry the *coded*
pattern alongside the decoded names, so the router can k-way merge
partial streams from many servers with the exact
:func:`~repro.query.base.rank_key` order a single-process store uses —
the distributed answer is byte-identical to the in-process one.

Each server optionally runs the existing HTTP layer
(:mod:`repro.serve.http`) on a second port, scoped to its shard slice:
that is where the router's health checks (``/healthz``) and per-server
``/metrics`` live, unchanged from single-process serving.

The socket protocol is request/response over a persistent connection —
one request at a time in legacy framing, many in flight (out-of-order
responses, optional zlib) once the ``hello`` handshake upgrades the
connection to multiplexed framing (see :mod:`repro.serve.protocol`):

====================  ==================================================
op                    answer
====================  ==================================================
``ping``              ``{"ok": True, "patterns": N}`` — liveness
``hello``             capability handshake; the connection switches to
                      mux framing after the response
``status``            generation + per-shard pattern counts + front-end
                      gauges (workers, in-flight, rejected) + wire stats
``describe``          the subset store's :meth:`describe` dict
``search``            rank-ordered records for ``tokens`` over the
                      requested ``shards`` (default: all mounted),
                      honoring ``min_freq`` (σ prefix cut) and ``limit``
``multi_search``      many searches in one frame (the router's batched
                      scatter): per-query ``{"records"}`` or
                      ``{"error"}`` entries under ``"results"``
``top``               rank-ordered top-``n`` records
``estimate``          the slice's combined planner cost estimate for
                      ``tokens`` (integer work units; the router scales
                      its fan-out deadline and admission gate with it)
====================  ==================================================

Every record is ``[coded_ids, frequency, names]``; errors come back as
``{"error": {"type", "message"}}`` and re-raise client-side with their
original :mod:`repro.errors` type.

Request execution is bounded by a sized worker pool: past the
in-flight cap the server answers :class:`ServerBusyError` immediately
instead of queueing without bound — the router fails the request over
to a replica, and a direct client sees a typed, retryable error.
"""

from __future__ import annotations

import heapq
import json
import socket
import socketserver
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.errors import InvalidParameterError, ReproError, ServerBusyError
from repro.query.base import rank_key
from repro.query.tokens import is_negation_only, normalize_query
from repro.serve.protocol import (
    ALL_FEATURES,
    DEFAULT_COMPRESS_THRESHOLD,
    FEATURE_MULTI,
    FEATURE_MUX,
    FEATURE_ZLIB,
    PROTOCOL_VERSION,
    WireStats,
    decode_tokens,
    encode_error,
    hello_response,
    negotiate_features,
    recv_message,
    recv_mux,
    send_message,
    send_mux,
)
from repro.serve.sharded import ShardedPatternStore


def parse_shard_list(raw: str) -> tuple[int, ...]:
    """``"0,2,5"`` → ``(0, 2, 5)`` (the CLI's ``--shards`` argument)."""
    try:
        shards = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise InvalidParameterError(
            f"shard list {raw!r} must be comma-separated integers"
        ) from None
    if not shards:
        raise InvalidParameterError(f"shard list {raw!r} names no shards")
    return shards


# ----------------------------------------------------------------------
# partial (per-shard-slice) reads — the same machinery ShardedPatternStore
# uses in-process, restricted to an explicit shard set
# ----------------------------------------------------------------------


def partial_search(
    store: ShardedPatternStore,
    tokens,
    shard_ids: Sequence[int] | None = None,
    limit: int | None = None,
    min_freq: int | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Rank-ordered ``(coded, frequency)`` matches over a shard slice.

    Compiles once, k-way merges the selected shards' rank-ordered
    streams with the shared :func:`rank_key`, and applies the σ prefix
    cut and limit exactly as :meth:`PatternSearchBase.search` does —
    so concatenating/merging slices reproduces the whole store's
    answer byte for byte.
    """
    tokens = normalize_query(tokens)
    compiled = store._compile(tokens)
    shards = [
        store._shard(i)
        for i in (store.owned_shards if shard_ids is None else shard_ids)
    ]
    stream = heapq.merge(
        *(shard._iter_search(compiled) for shard in shards), key=rank_key
    )
    records: list[tuple[tuple[int, ...], int]] = []
    for pattern, frequency in stream:
        if min_freq is not None and frequency < min_freq:
            break  # rank order: everything after is below σ too
        records.append((pattern, frequency))
        if limit is not None and len(records) >= limit:
            break
    return records


def partial_top(
    store: ShardedPatternStore,
    n: int,
    shard_ids: Sequence[int] | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Rank-ordered top-``n`` ``(coded, frequency)`` over a shard slice."""
    shards = [
        store._shard(i)
        for i in (store.owned_shards if shard_ids is None else shard_ids)
    ]
    stream = heapq.merge(
        *(shard._iter_ranked() for shard in shards), key=rank_key
    )
    records: list[tuple[tuple[int, ...], int]] = []
    for record in stream:
        if len(records) >= n:
            break
        records.append(record)
    return records


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------


class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # legacy-mode clients dial a fresh connection whenever their small
    # pool runs dry, so a burst of concurrent callers can park far more
    # than socketserver's default backlog of 5 in the SYN queue —
    # refused dials there read as server failures, not backpressure
    request_queue_size = 128

    def __init__(self, address, owner: "ShardServer") -> None:
        super().__init__(address, _ShardRequestHandler)
        self.owner = owner
        # open connections, tracked so stop() can break their blocked
        # recv()s: clients must see a *transport* failure from a killed
        # server (and fail over), never a served error response
        self.connections: set = set()
        self.connections_lock = threading.Lock()

    def abort_connections(self) -> None:
        with self.connections_lock:
            conns = list(self.connections)
        for conn in conns:
            try:
                conn.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of legacy frames until the client hangs
    up — or, after a ``hello`` handshake, a multiplexed loop where
    frames are executed on the owner's worker pool and answered out of
    order under a per-connection send lock."""

    def setup(self) -> None:
        # response frames can be small (errors, pings); don't let
        # Nagle delay them behind the previous large frame's ACK
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self.server.connections_lock:
            self.server.connections.add(self.request)

    def finish(self) -> None:
        with self.server.connections_lock:
            self.server.connections.discard(self.request)

    def handle(self) -> None:
        owner = self.server.owner
        while True:
            try:
                request = recv_message(self.request)
            except EOFError:
                return  # orderly close between frames
            except (ConnectionError, OSError, ReproError):
                return  # client died or sent garbage; drop the link
            if (
                isinstance(request, dict)
                and request.get("op") == "hello"
                and request.get("v", PROTOCOL_VERSION) == PROTOCOL_VERSION
                and owner.mux_enabled
                and isinstance(request.get("features"), list)
            ):
                features = negotiate_features(
                    request["features"], owner.offered_features()
                )
                try:
                    send_message(
                        self.request,
                        hello_response(features, owner.compress_threshold),
                    )
                except OSError:
                    return
                if features:
                    self._serve_mux(features)
                    return
                continue  # no common ground: stay in legacy framing
            response = owner.execute(request)
            if response is None:
                return  # server stopping: hang up, don't answer
            try:
                send_message(self.request, response)
            except OSError:
                return

    def _serve_mux(self, features) -> None:
        owner = self.server.owner
        sock = self.request
        send_lock = threading.Lock()
        threshold = (
            owner.compress_threshold
            if FEATURE_ZLIB in features
            else None
        )
        stats = owner.wire_stats

        def reply(request_id: int, response: dict) -> None:
            try:
                with send_lock:
                    send_mux(sock, request_id, response, threshold, stats)
            except OSError:
                pass  # client went away; the read loop will notice

        while True:
            try:
                request_id, request = recv_mux(sock, stats)
            except EOFError:
                return
            except (ConnectionError, OSError, ReproError):
                return
            if not owner.submit(request_id, request, reply):
                return  # server stopping: hang up mid-pipeline


class ShardServer:
    """Serve a shard slice of one manifest over sockets (plus HTTP).

    Parameters
    ----------
    store_path:
        Sharded-store directory (the manifest names the shard files).
    shard_subset:
        Shard indexes to mount; ``None`` mounts all of them (a fully
        replicated server).
    port / http_port:
        ``0`` binds an ephemeral port; ``http_port=None`` disables the
        HTTP sidecar (health checks then fall back to socket pings).
    workers / max_in_flight:
        Size of the request-execution worker pool, and the in-flight
        cap (default ``2 * workers`` — a bounded queue's worth of
        headroom) past which requests answer :class:`ServerBusyError`
        instead of queueing silently.
    compress:
        Offer per-frame zlib compression in the handshake (clients
        still have to ask for it).
    mux:
        Speak the multiplexing extension at all; ``False`` makes this
        server behave exactly like a pre-extension build (the
        mixed-version compatibility switch used by tests and the
        benchmark's baseline mode).
    """

    def __init__(
        self,
        store_path: str | Path,
        shard_subset: Sequence[int] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: int | None = 0,
        verify_checksums: bool = True,
        quiet: bool = True,
        workers: int = 8,
        max_in_flight: int | None = None,
        compress: bool = True,
        compress_threshold: int = DEFAULT_COMPRESS_THRESHOLD,
        mux: bool = True,
        result_cache: int = 256,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers}"
            )
        if max_in_flight is not None and max_in_flight < 1:
            raise InvalidParameterError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self._store_path = Path(store_path)
        self._subset = (
            None if shard_subset is None else tuple(sorted(set(shard_subset)))
        )
        self._host = host
        self._port = port
        self._http_port = http_port
        self._verify_checksums = verify_checksums
        self._quiet = quiet
        self._workers = workers
        self._max_in_flight = (
            max_in_flight if max_in_flight is not None else 2 * workers
        )
        self._compress = compress
        self.compress_threshold = compress_threshold
        self.mux_enabled = mux
        self.wire_stats = WireStats()
        self._store: ShardedPatternStore | None = None
        self._tcp: _ShardTCPServer | None = None
        self._http = None
        self._pool: ThreadPoolExecutor | None = None
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._in_flight = 0
        self._rejected = 0
        self._stopping = False
        # rendered-result LRU: repeated identical searches (hot
        # dashboards, the router's batched scatter fan-out) skip
        # compile + k-way merge + render entirely.  Stores are
        # immutable once mounted, so the generation in the key is the
        # only invalidation needed.
        self._result_cache_size = max(0, result_cache)
        self._result_cache: OrderedDict[str, list] = OrderedDict()
        self._result_cache_lock = threading.Lock()
        self._cache_hits = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def store(self) -> ShardedPatternStore:
        if self._store is None:
            raise RuntimeError("shard server is not started")
        return self._store

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the socket endpoint (after :meth:`start`)."""
        assert self._tcp is not None, "shard server is not started"
        return self._tcp.server_address[:2]

    @property
    def http_address(self) -> tuple[str, int] | None:
        if self._http is None:
            return None
        return self._http.server_address[:2]

    def start(self) -> "ShardServer":
        """Mount the shard slice and serve both endpoints from
        background threads; returns self for chaining."""
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="shard-worker"
        )
        self._store = ShardedPatternStore(
            self._store_path,
            verify_checksums=self._verify_checksums,
            shard_subset=self._subset,
        )
        self._tcp = _ShardTCPServer((self._host, self._port), self)
        thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="shard-serve-tcp",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        if self._http_port is not None:
            from repro.serve.http import create_server
            from repro.serve.service import QueryService

            self._service = QueryService(self._store)
            self._http = create_server(
                self._service, self._host, self._http_port, quiet=self._quiet
            )
            thread = threading.Thread(
                target=self._http.serve_forever,
                name="shard-serve-http",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Stop serving and release the store (idempotent, and safe to
        call from several threads at once — each resource is claimed
        atomically so racing stops never double-close).

        Open connections are aborted, not drained: a client mid-query
        sees the connection die (and fails over to a replica), which is
        exactly what a crashed server would look like."""
        self._stopping = True
        with self._lock:
            tcp, self._tcp = self._tcp, None
            http, self._http = self._http, None
            pool, self._pool = self._pool, None
            threads, self._threads = self._threads, []
            store, self._store = self._store, None
        if tcp is not None:
            tcp.abort_connections()
            tcp.shutdown()
            tcp.server_close()
        if http is not None:
            http.shutdown()
            http.server_close()
        if pool is not None:
            pool.shutdown(wait=False)
        for thread in threads:
            thread.join(timeout=5)
        if store is not None:
            store.close()

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # front end: capability handshake + bounded-concurrency execution
    # ------------------------------------------------------------------

    def offered_features(self) -> tuple[str, ...]:
        if not self.mux_enabled:
            return ()
        if self._compress:
            return ALL_FEATURES
        return (FEATURE_MUX, FEATURE_MULTI)

    def _acquire_slot(self) -> bool:
        with self._lock:
            if self._in_flight >= self._max_in_flight:
                self._rejected += 1
                return False
            self._in_flight += 1
            return True

    def _release_slot(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def _busy_response(self) -> dict:
        return {
            "error": encode_error(
                ServerBusyError(
                    f"server at in-flight capacity ({self._max_in_flight})"
                )
            )
        }

    def execute(self, request) -> dict | None:
        """Run one legacy-framing request inline under the in-flight
        gate.  Saturation answers :class:`ServerBusyError` instead of
        queueing; ``None`` means the server is stopping (hang up)."""
        if self._stopping or self._store is None:
            return None
        if not self._acquire_slot():
            return self._busy_response()
        try:
            return self.dispatch(request)
        finally:
            self._release_slot()

    def submit(self, request_id: int, request, reply) -> bool:
        """Queue one multiplexed request onto the worker pool; ``reply``
        is called with ``(request_id, response)`` from the worker.
        Returns ``False`` when the server is stopping — the caller then
        hangs the connection up so clients fail over."""
        pool = self._pool
        if self._stopping or pool is None:
            return False
        if not self._acquire_slot():
            reply(request_id, self._busy_response())
            return True

        def run() -> None:
            try:
                response = self.dispatch(request)
            finally:
                self._release_slot()
            if response is not None:
                reply(request_id, response)

        try:
            pool.submit(run)
        except RuntimeError:  # pool shut down under us
            self._release_slot()
            return False
        return True

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request) -> dict | None:
        """Answer one decoded request frame (never raises: errors become
        ``{"error": ...}`` responses so the connection survives a bad
        query).  Returns ``None`` while stopping — the handler then
        hangs up so the client fails over instead of reading an
        in-teardown error."""
        if self._stopping or self._store is None:
            return None
        with self._lock:
            self._requests += 1
        try:
            if not isinstance(request, dict):
                raise InvalidParameterError(
                    f"request must be a dict, got {type(request).__name__}"
                )
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise InvalidParameterError(
                    f"unsupported protocol version {version!r} "
                    f"(expected {PROTOCOL_VERSION})"
                )
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "patterns": len(self.store)}
            if op == "status":
                return self._status()
            if op == "describe":
                return {"describe": self.store.describe()}
            if op == "search":
                return {"records": self._search(request)}
            if op == "multi_search":
                return {"results": self._multi_search(request)}
            if op == "top":
                return {"records": self._top(request)}
            if op == "estimate":
                return {"estimate": self._estimate(request)}
            raise InvalidParameterError(f"unknown op {op!r}")
        except ReproError as exc:
            if self._stopping:
                return None  # failure caused by teardown, not the query
            with self._lock:
                self._errors += 1
            return {"error": encode_error(exc)}
        except Exception as exc:  # noqa: BLE001 - keep the link alive
            if self._stopping:
                return None  # failure caused by teardown, not the query
            with self._lock:
                self._errors += 1
            return {
                "error": {
                    "type": "ReproError",
                    "message": f"internal error: {type(exc).__name__}",
                }
            }

    def _status(self) -> dict:
        store = self.store
        counts = {}
        for index in store.owned_shards:
            counts[str(index)] = store._shard(index)._num_patterns()
        with self._lock:
            requests, errors = self._requests, self._errors
            in_flight, rejected = self._in_flight, self._rejected
        with self._result_cache_lock:
            cache = {
                "size": len(self._result_cache),
                "capacity": self._result_cache_size,
                "hits": self._cache_hits,
            }
        return {
            "result_cache": cache,
            "generation": store.generation,
            "num_shards": store.num_shards,
            "owned": list(store.owned_shards),
            "patterns_by_shard": counts,
            "requests": requests,
            "errors": errors,
            "frontend": {
                "workers": self._workers,
                "max_in_flight": self._max_in_flight,
                "in_flight": in_flight,
                "rejected": rejected,
            },
            "wire": self.wire_stats.snapshot(),
        }

    def _shard_ids(self, request) -> list[int] | None:
        shards = request.get("shards")
        if shards is None:
            return None
        if not isinstance(shards, list) or not all(
            isinstance(s, int) for s in shards
        ):
            raise InvalidParameterError(
                f"'shards' must be a list of shard indexes, got {shards!r}"
            )
        return shards

    def _result_cache_key(self, request) -> str | None:
        if not self._result_cache_size:
            return None
        try:
            return json.dumps(
                [
                    self.store.generation,
                    request.get("tokens"),
                    request.get("shards"),
                    request.get("limit"),
                    request.get("min_freq"),
                ],
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return None  # unserializable request: let validation reject it

    def _search(self, request) -> list:
        key = self._result_cache_key(request)
        if key is not None:
            with self._result_cache_lock:
                cached = self._result_cache.get(key)
                if cached is not None:
                    self._result_cache.move_to_end(key)
                    self._cache_hits += 1
                    return cached
        rendered = self._search_uncached(request)
        if key is not None:
            with self._result_cache_lock:
                self._result_cache[key] = rendered
                self._result_cache.move_to_end(key)
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
        return rendered

    def _search_uncached(self, request) -> list:
        tokens = decode_tokens(request.get("tokens"))
        if is_negation_only(tokens):
            # the router's service layer rejects these before fan-out;
            # repeat the guard so a raw client cannot trigger the
            # unbounded length-group scan either
            raise InvalidParameterError(
                "all-negative queries are not served"
            )
        limit = request.get("limit")
        min_freq = request.get("min_freq")
        records = partial_search(
            self.store,
            tokens,
            shard_ids=self._shard_ids(request),
            limit=limit,
            min_freq=min_freq,
        )
        return self._render(records)

    def _estimate(self, request) -> dict:
        tokens = decode_tokens(request.get("tokens"))
        if is_negation_only(tokens):
            raise InvalidParameterError(
                "all-negative queries are not served"
            )
        return self.store.estimate_cost(tokens).to_wire()

    def _top(self, request) -> list:
        n = request.get("n")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise InvalidParameterError(f"'n' must be an integer >= 1, got {n!r}")
        records = partial_top(
            self.store, n, shard_ids=self._shard_ids(request)
        )
        return self._render(records)

    def _multi_search(self, request) -> list:
        """The router's batched scatter: many searches in one frame.
        Per-query failures come back as per-entry ``{"error"}`` dicts —
        one bad query must not poison its batchmates."""
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise InvalidParameterError(
                f"'queries' must be a list, got {type(queries).__name__}"
            )
        shards = request.get("shards")
        results: list[dict] = []
        for entry in queries:
            if not isinstance(entry, dict):
                results.append(
                    {
                        "error": encode_error(
                            InvalidParameterError(
                                "each query must be a dict, got "
                                f"{type(entry).__name__}"
                            )
                        )
                    }
                )
                continue
            try:
                records = self._search({**entry, "shards": shards})
            except ReproError as exc:
                results.append({"error": encode_error(exc)})
            else:
                results.append({"records": records})
        return results

    def _render(self, records) -> list:
        vocabulary = self.store.vocabulary
        return [
            [list(coded), frequency, list(vocabulary.decode_sequence(coded))]
            for coded, frequency in records
        ]


__all__ = [
    "ShardServer",
    "partial_search",
    "partial_top",
    "parse_shard_list",
]
