"""Shard servers: one process serving a slice of a sharded store.

One :class:`ShardServer` mounts a subset of the shards named by a
:class:`~repro.serve.sharded.ShardedPatternStore` manifest and answers
**rank-ordered partial results** over the socket protocol of
:mod:`repro.serve.protocol`.  The records it returns carry the *coded*
pattern alongside the decoded names, so the router can k-way merge
partial streams from many servers with the exact
:func:`~repro.query.base.rank_key` order a single-process store uses —
the distributed answer is byte-identical to the in-process one.

Each server optionally runs the existing HTTP layer
(:mod:`repro.serve.http`) on a second port, scoped to its shard slice:
that is where the router's health checks (``/healthz``) and per-server
``/metrics`` live, unchanged from single-process serving.

The socket protocol is request/response over a persistent connection:

====================  ==================================================
op                    answer
====================  ==================================================
``ping``              ``{"ok": True, "patterns": N}`` — liveness
``status``            generation + per-shard pattern counts
``describe``          the subset store's :meth:`describe` dict
``search``            rank-ordered records for ``tokens`` over the
                      requested ``shards`` (default: all mounted),
                      honoring ``min_freq`` (σ prefix cut) and ``limit``
``top``               rank-ordered top-``n`` records
``estimate``          the slice's combined planner cost estimate for
                      ``tokens`` (integer work units; the router scales
                      its fan-out deadline and admission gate with it)
====================  ==================================================

Every record is ``[coded_ids, frequency, names]``; errors come back as
``{"error": {"type", "message"}}`` and re-raise client-side with their
original :mod:`repro.errors` type.
"""

from __future__ import annotations

import heapq
import socketserver
import threading
from pathlib import Path
from typing import Sequence

from repro.errors import InvalidParameterError, ReproError
from repro.query.base import rank_key
from repro.query.tokens import is_negation_only, normalize_query
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_tokens,
    encode_error,
    recv_message,
    send_message,
)
from repro.serve.sharded import ShardedPatternStore


def parse_shard_list(raw: str) -> tuple[int, ...]:
    """``"0,2,5"`` → ``(0, 2, 5)`` (the CLI's ``--shards`` argument)."""
    try:
        shards = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise InvalidParameterError(
            f"shard list {raw!r} must be comma-separated integers"
        ) from None
    if not shards:
        raise InvalidParameterError(f"shard list {raw!r} names no shards")
    return shards


# ----------------------------------------------------------------------
# partial (per-shard-slice) reads — the same machinery ShardedPatternStore
# uses in-process, restricted to an explicit shard set
# ----------------------------------------------------------------------


def partial_search(
    store: ShardedPatternStore,
    tokens,
    shard_ids: Sequence[int] | None = None,
    limit: int | None = None,
    min_freq: int | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Rank-ordered ``(coded, frequency)`` matches over a shard slice.

    Compiles once, k-way merges the selected shards' rank-ordered
    streams with the shared :func:`rank_key`, and applies the σ prefix
    cut and limit exactly as :meth:`PatternSearchBase.search` does —
    so concatenating/merging slices reproduces the whole store's
    answer byte for byte.
    """
    tokens = normalize_query(tokens)
    compiled = store._compile(tokens)
    shards = [
        store._shard(i)
        for i in (store.owned_shards if shard_ids is None else shard_ids)
    ]
    stream = heapq.merge(
        *(shard._iter_search(compiled) for shard in shards), key=rank_key
    )
    records: list[tuple[tuple[int, ...], int]] = []
    for pattern, frequency in stream:
        if min_freq is not None and frequency < min_freq:
            break  # rank order: everything after is below σ too
        records.append((pattern, frequency))
        if limit is not None and len(records) >= limit:
            break
    return records


def partial_top(
    store: ShardedPatternStore,
    n: int,
    shard_ids: Sequence[int] | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Rank-ordered top-``n`` ``(coded, frequency)`` over a shard slice."""
    shards = [
        store._shard(i)
        for i in (store.owned_shards if shard_ids is None else shard_ids)
    ]
    stream = heapq.merge(
        *(shard._iter_ranked() for shard in shards), key=rank_key
    )
    records: list[tuple[tuple[int, ...], int]] = []
    for record in stream:
        if len(records) >= n:
            break
        records.append(record)
    return records


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------


class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, owner: "ShardServer") -> None:
        super().__init__(address, _ShardRequestHandler)
        self.owner = owner
        # open connections, tracked so stop() can break their blocked
        # recv()s: clients must see a *transport* failure from a killed
        # server (and fail over), never a served error response
        self.connections: set = set()
        self.connections_lock = threading.Lock()

    def abort_connections(self) -> None:
        with self.connections_lock:
            conns = list(self.connections)
        for conn in conns:
            try:
                conn.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of frames until the client hangs up."""

    def setup(self) -> None:
        with self.server.connections_lock:
            self.server.connections.add(self.request)

    def finish(self) -> None:
        with self.server.connections_lock:
            self.server.connections.discard(self.request)

    def handle(self) -> None:
        while True:
            try:
                request = recv_message(self.request)
            except EOFError:
                return  # orderly close between frames
            except (ConnectionError, OSError, ReproError):
                return  # client died or sent garbage; drop the link
            response = self.server.owner.dispatch(request)
            if response is None:
                return  # server stopping: hang up, don't answer
            try:
                send_message(self.request, response)
            except OSError:
                return


class ShardServer:
    """Serve a shard slice of one manifest over sockets (plus HTTP).

    Parameters
    ----------
    store_path:
        Sharded-store directory (the manifest names the shard files).
    shard_subset:
        Shard indexes to mount; ``None`` mounts all of them (a fully
        replicated server).
    port / http_port:
        ``0`` binds an ephemeral port; ``http_port=None`` disables the
        HTTP sidecar (health checks then fall back to socket pings).
    """

    def __init__(
        self,
        store_path: str | Path,
        shard_subset: Sequence[int] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: int | None = 0,
        verify_checksums: bool = True,
        quiet: bool = True,
    ) -> None:
        self._store_path = Path(store_path)
        self._subset = (
            None if shard_subset is None else tuple(sorted(set(shard_subset)))
        )
        self._host = host
        self._port = port
        self._http_port = http_port
        self._verify_checksums = verify_checksums
        self._quiet = quiet
        self._store: ShardedPatternStore | None = None
        self._tcp: _ShardTCPServer | None = None
        self._http = None
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def store(self) -> ShardedPatternStore:
        if self._store is None:
            raise RuntimeError("shard server is not started")
        return self._store

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the socket endpoint (after :meth:`start`)."""
        assert self._tcp is not None, "shard server is not started"
        return self._tcp.server_address[:2]

    @property
    def http_address(self) -> tuple[str, int] | None:
        if self._http is None:
            return None
        return self._http.server_address[:2]

    def start(self) -> "ShardServer":
        """Mount the shard slice and serve both endpoints from
        background threads; returns self for chaining."""
        self._stopping = False
        self._store = ShardedPatternStore(
            self._store_path,
            verify_checksums=self._verify_checksums,
            shard_subset=self._subset,
        )
        self._tcp = _ShardTCPServer((self._host, self._port), self)
        thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="shard-serve-tcp",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        if self._http_port is not None:
            from repro.serve.http import create_server
            from repro.serve.service import QueryService

            self._service = QueryService(self._store)
            self._http = create_server(
                self._service, self._host, self._http_port, quiet=self._quiet
            )
            thread = threading.Thread(
                target=self._http.serve_forever,
                name="shard-serve-http",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Stop serving and release the store (idempotent).

        Open connections are aborted, not drained: a client mid-query
        sees the connection die (and fails over to a replica), which is
        exactly what a crashed server would look like."""
        self._stopping = True
        if self._tcp is not None:
            self._tcp.abort_connections()
            self._tcp.shutdown()
            self._tcp.server_close()
            self._tcp = None
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request) -> dict | None:
        """Answer one decoded request frame (never raises: errors become
        ``{"error": ...}`` responses so the connection survives a bad
        query).  Returns ``None`` while stopping — the handler then
        hangs up so the client fails over instead of reading an
        in-teardown error."""
        if self._stopping or self._store is None:
            return None
        with self._lock:
            self._requests += 1
        try:
            if not isinstance(request, dict):
                raise InvalidParameterError(
                    f"request must be a dict, got {type(request).__name__}"
                )
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise InvalidParameterError(
                    f"unsupported protocol version {version!r} "
                    f"(expected {PROTOCOL_VERSION})"
                )
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "patterns": len(self.store)}
            if op == "status":
                return self._status()
            if op == "describe":
                return {"describe": self.store.describe()}
            if op == "search":
                return {"records": self._search(request)}
            if op == "top":
                return {"records": self._top(request)}
            if op == "estimate":
                return {"estimate": self._estimate(request)}
            raise InvalidParameterError(f"unknown op {op!r}")
        except ReproError as exc:
            if self._stopping:
                return None  # failure caused by teardown, not the query
            with self._lock:
                self._errors += 1
            return {"error": encode_error(exc)}
        except Exception as exc:  # noqa: BLE001 - keep the link alive
            if self._stopping:
                return None  # failure caused by teardown, not the query
            with self._lock:
                self._errors += 1
            return {
                "error": {
                    "type": "ReproError",
                    "message": f"internal error: {type(exc).__name__}",
                }
            }

    def _status(self) -> dict:
        store = self.store
        counts = {}
        for index in store.owned_shards:
            counts[str(index)] = store._shard(index)._num_patterns()
        with self._lock:
            requests, errors = self._requests, self._errors
        return {
            "generation": store.generation,
            "num_shards": store.num_shards,
            "owned": list(store.owned_shards),
            "patterns_by_shard": counts,
            "requests": requests,
            "errors": errors,
        }

    def _shard_ids(self, request) -> list[int] | None:
        shards = request.get("shards")
        if shards is None:
            return None
        if not isinstance(shards, list) or not all(
            isinstance(s, int) for s in shards
        ):
            raise InvalidParameterError(
                f"'shards' must be a list of shard indexes, got {shards!r}"
            )
        return shards

    def _search(self, request) -> list:
        tokens = decode_tokens(request.get("tokens"))
        if is_negation_only(tokens):
            # the router's service layer rejects these before fan-out;
            # repeat the guard so a raw client cannot trigger the
            # unbounded length-group scan either
            raise InvalidParameterError(
                "all-negative queries are not served"
            )
        limit = request.get("limit")
        min_freq = request.get("min_freq")
        records = partial_search(
            self.store,
            tokens,
            shard_ids=self._shard_ids(request),
            limit=limit,
            min_freq=min_freq,
        )
        return self._render(records)

    def _estimate(self, request) -> dict:
        tokens = decode_tokens(request.get("tokens"))
        if is_negation_only(tokens):
            raise InvalidParameterError(
                "all-negative queries are not served"
            )
        return self.store.estimate_cost(tokens).to_wire()

    def _top(self, request) -> list:
        n = request.get("n")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise InvalidParameterError(f"'n' must be an integer >= 1, got {n!r}")
        records = partial_top(
            self.store, n, shard_ids=self._shard_ids(request)
        )
        return self._render(records)

    def _render(self, records) -> list:
        vocabulary = self.store.vocabulary
        return [
            [list(coded), frequency, list(vocabulary.decode_sequence(coded))]
            for coded, frequency in records
        ]


__all__ = [
    "ShardServer",
    "partial_search",
    "partial_top",
    "parse_shard_list",
]
