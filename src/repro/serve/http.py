"""Stdlib HTTP server exposing a :class:`QueryService` as JSON endpoints.

No framework, no dependencies: a :class:`ThreadingHTTPServer` running one
thread per request against the thread-safe service.  Endpoints::

    GET  /healthz                 liveness + store metadata
    GET  /stats                   service counters (cache hit-rate, latency)
    GET  /metrics                 the same counters, Prometheus text format
    GET  /query?q=a+%3F&limit=10  ranked matches for a wildcard query
    GET  /count?q=a+%3F           match count + frequency mass only
    GET  /topk?n=10               globally most frequent patterns
    POST /batch                   {"queries": [...], "limit": 10,
                                   "min_freq": 5}

Queries use the language of :mod:`repro.query.tokens` (``?``, ``+``,
``*``, ``*{m,n}`` bounded gaps, ``^name``, ``!token`` negations,
``(a|b|^C)`` disjunctions, ``token@N`` frequency floors), URL-encoded.
``/query`` and ``/count`` accept ``min_freq=N`` — the per-query σ
override: only patterns with mined frequency ≥ N are answered
(``/batch`` takes it as a body field covering the whole batch).
Malformed queries, unknown items and all-negative queries (a negation
with no positive token — rejected server-side, they cannot be pruned)
answer 400 with ``{"error": ...}`` instead of tearing down the
connection; a store that fails integrity validation mid-request
answers 503 so load balancers retry a healthy replica instead of
blaming the client.

>>> server = create_server(service, port=0)     # ephemeral port
>>> threading.Thread(target=server.serve_forever, daemon=True).start()
>>> urllib.request.urlopen(f"http://127.0.0.1:{server.server_port}/healthz")
"""

from __future__ import annotations

import gzip
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    InvalidParameterError,
    QueryRejectedError,
    ReproError,
    StoreCorruptError,
)
from repro.serve.protocol import DEFAULT_COMPRESS_THRESHOLD
from repro.serve.service import DEFAULT_LIMIT, QueryService, error_message

MAX_BATCH = 1000
_MAX_BODY = 1 << 20  # 1 MiB request bodies are plenty for query batches

#: exposition format version expected by Prometheus scrapers
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: endpoints whose wall time lands in the per-endpoint latency
#: histograms; unknown paths are excluded so scanners cannot explode
#: the label cardinality
TRACKED_ENDPOINTS = frozenset(
    {"/query", "/count", "/topk", "/batch", "/stats", "/metrics", "/healthz"}
)


def render_metrics(stats: dict) -> str:
    """Render :meth:`QueryService.stats` as Prometheus text format.

    Derived entirely from the existing counters — no extra bookkeeping
    in the service.  Rates and averages are left out deliberately:
    Prometheus computes those from the raw counters (``rate()``,
    latency sum / query count), and exporting precomputed ratios is an
    exposition-format antipattern.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, help_: str, value, labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {value}")

    emit(
        "lash_patterns", "gauge",
        "Patterns in the served store.", stats["patterns"],
    )
    emit(
        "lash_queries_total", "counter",
        "Queries served (including rejected ones).", stats["queries"],
    )
    emit(
        "lash_cache_hits_total", "counter",
        "Queries answered from the result cache.", stats["cache_hits"],
    )
    emit(
        "lash_errors_total", "counter",
        "Queries rejected or failed.", stats["errors"],
    )
    emit(
        "lash_query_latency_seconds_total", "counter",
        "Cumulative backend search time.",
        stats["total_latency_ms"] / 1000.0,
    )
    emit(
        "lash_cache_entries", "gauge",
        "Result-cache entries currently held.", stats["cache_entries"],
    )
    emit(
        "lash_cache_size", "gauge",
        "Result-cache capacity (0 = caching disabled).",
        stats["cache_size"],
    )
    emit(
        "lash_cache_evictions_total", "counter",
        "Result-cache entries dropped by cost-weighted LRU eviction.",
        stats.get("cache_evictions", 0),
    )
    admission = stats.get("admission")
    if admission:
        emit(
            "lash_rejected_queries_total", "counter",
            "Queries refused by admission control (HTTP 429).",
            admission["rejected"],
        )
        emit(
            "lash_budgeted_queries_total", "counter",
            "Queries run under the bounded match budget.",
            admission["budgeted"],
        )
        cost = admission.get("cost")
        if cost and cost["count"]:
            name = "lash_query_cost_units"
            lines.append(
                f"# HELP {name} Estimated query cost at admission time "
                "(planner work units, cache misses only)."
            )
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in cost["buckets"]:
                lines.append(
                    f'{name}_bucket{{le="{format(bound, "g")}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {cost["count"]}')
            lines.append(f'{name}_sum {cost["sum_seconds"]}')
            lines.append(f'{name}_count {cost["count"]}')
    store = stats.get("store")
    if store:
        # the router backend describes a cluster, not a local file set
        if "file_bytes" in store:
            emit(
                "lash_store_file_bytes", "gauge",
                "Total bytes of the store file(s).", store["file_bytes"],
            )
        if "generation" in store:
            emit(
                "lash_store_generation", "gauge",
                "Manifest generation of the served shard set "
                "(bumped by online compaction).",
                store["generation"],
            )
        shard_stats = store.get("shard_stats")
        if shard_stats is not None:
            emit(
                "lash_store_shards", "gauge",
                "Shard files behind the served store.", store["shards"],
            )
            lines.append(
                "# HELP lash_shard_patterns Patterns stored per shard."
            )
            lines.append("# TYPE lash_shard_patterns gauge")
            for i, shard in enumerate(shard_stats):
                lines.append(
                    f'lash_shard_patterns{{shard="{i}"}} '
                    f'{shard["patterns"]}'
                )
        if store.get("router"):
            emit(
                "lash_router_fanouts_total", "counter",
                "Queries fanned out across the cluster.",
                store["fanouts"],
            )
            emit(
                "lash_router_retries_total", "counter",
                "Failover retries issued to replica servers.",
                store["fanout_retries"],
            )
            emit(
                "lash_router_server_failures_total", "counter",
                "Shard-server requests that failed at transport level.",
                store["server_failures"],
            )
            emit(
                "lash_router_partial_results_total", "counter",
                "Queries answered without a fully-down shard set.",
                store["partial_results"],
            )
            servers = store.get("servers", {})
            if servers:
                lines.append(
                    "# HELP lash_router_server_healthy Last known health "
                    "per shard server (1 healthy, 0 down)."
                )
                lines.append("# TYPE lash_router_server_healthy gauge")
                for key, info in servers.items():
                    lines.append(
                        f'lash_router_server_healthy{{server="{key}"}} '
                        f'{1 if info.get("healthy") else 0}'
                    )
            fanout = store.get("fanout_latency")
            if fanout:
                name = "lash_router_fanout_latency_seconds"
                lines.append(
                    f"# HELP {name} Shard-server round-trip time per "
                    "shard (each fan-out request observed for every "
                    "shard it covered)."
                )
                lines.append(f"# TYPE {name} histogram")
                for shard, hist in fanout.items():
                    label = f'shard="{shard}"'
                    for bound, cumulative in hist["buckets"]:
                        lines.append(
                            f'{name}_bucket{{{label},'
                            f'le="{format(bound, "g")}"}} {cumulative}'
                        )
                    lines.append(
                        f'{name}_bucket{{{label},le="+Inf"}} '
                        f'{hist["count"]}'
                    )
                    lines.append(
                        f'{name}_sum{{{label}}} {hist["sum_seconds"]}'
                    )
                    lines.append(
                        f'{name}_count{{{label}}} {hist["count"]}'
                    )
    frontend = stats.get("frontend")
    if frontend:
        emit(
            "lash_http_workers", "gauge",
            "Configured HTTP worker count.", frontend["workers"],
        )
        emit(
            "lash_http_max_in_flight", "gauge",
            "In-flight request cap before 503 backpressure.",
            frontend["max_in_flight"],
        )
        emit(
            "lash_http_in_flight", "gauge",
            "HTTP requests currently being served.",
            frontend["in_flight"],
        )
        emit(
            "lash_http_rejected_total", "counter",
            "Requests shed with 503 at the in-flight cap.",
            frontend["rejected"],
        )
        emit(
            "lash_http_gzipped_total", "counter",
            "Responses compressed with gzip.",
            frontend.get("gzipped_responses", 0),
        )
    wire = (stats.get("store") or {}).get("wire")
    if wire and wire.get("frames_sent", 0) + wire.get("frames_received", 0):
        for direction in ("sent", "received"):
            emit(
                f"lash_wire_frames_{direction}_total", "counter",
                f"Shard-protocol frames {direction}.",
                wire.get(f"frames_{direction}", 0),
            )
            emit(
                f"lash_wire_raw_bytes_{direction}_total", "counter",
                f"Payload bytes {direction} before compression.",
                wire.get(f"raw_bytes_{direction}", 0),
            )
            emit(
                f"lash_wire_bytes_{direction}_total", "counter",
                f"Bytes {direction} on the wire (after compression).",
                wire.get(f"wire_bytes_{direction}", 0),
            )
            emit(
                f"lash_wire_compressed_frames_{direction}_total", "counter",
                f"Frames {direction} with a zlib-compressed payload.",
                wire.get(f"compressed_frames_{direction}", 0),
            )
    compaction = stats.get("compaction")
    if compaction:
        emit(
            "lash_compactions_total", "counter",
            "Background compactions folded into the served store.",
            compaction.get("compactions", 0),
        )
        ingest = compaction.get("ingest")
        if ingest:
            emit(
                "lash_ingest_applied_deltas_total", "counter",
                "Ingest deltas folded into the served store and archived.",
                ingest.get("applied_deltas", 0),
            )
            emit(
                "lash_ingest_pending_deltas", "gauge",
                "Deltas waiting in the compaction spool.",
                ingest.get("pending_deltas", 0),
            )
            emit(
                "lash_ingest_lag_seconds", "gauge",
                "Age of the oldest unapplied spool delta.",
                ingest.get("lag_seconds", 0.0),
            )
    freshness = stats.get("freshness")
    if freshness:
        emit(
            "lash_ingested_through", "gauge",
            "Freshness watermark: sequences folded into the served "
            "store (exclusive upper sequence number).",
            freshness.get("ingested_through", 0),
        )
        if freshness.get("retained_from") is not None:
            emit(
                "lash_retained_from", "gauge",
                "Retention horizon: first sequence number still "
                "contributing support.",
                freshness["retained_from"],
            )
    latency = stats.get("request_latency")
    if latency:
        name = "lash_request_latency_seconds"
        lines.append(
            f"# HELP {name} Request wall time by endpoint "
            "(tracked requests, errors included)."
        )
        lines.append(f"# TYPE {name} histogram")
        for endpoint, hist in latency.items():
            label = f'endpoint="{endpoint}"'
            for bound, cumulative in hist["buckets"]:
                lines.append(
                    f'{name}_bucket{{{label},le="{format(bound, "g")}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{name}_bucket{{{label},le="+Inf"}} {hist["count"]}'
            )
            lines.append(f'{name}_sum{{{label}}} {hist["sum_seconds"]}')
            lines.append(f'{name}_count{{{label}}} {hist["count"]}')
    return "\n".join(lines) + "\n"


class PatternHTTPServer(ThreadingHTTPServer):
    """Threaded server carrying the shared :class:`QueryService`.

    Request threads are non-daemon so ``server_close()`` drains them —
    the store's mmap is only closed after the last in-flight answer.
    The per-request socket timeout bounds how long a stalled client can
    pin a thread.

    Concurrency is **bounded**: at most ``max_in_flight`` requests
    (default ``2 * workers``) hold threads at once; past the cap the
    accept path answers ``503`` with ``Retry-After`` immediately
    instead of growing an unbounded thread herd — load balancers and
    the serving benchmark read that as backpressure, never as silence.
    Responses over ``DEFAULT_COMPRESS_THRESHOLD`` bytes are gzipped for
    clients that accept it (``compress=False`` turns that off).
    """

    daemon_threads = False

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        quiet: bool = True,
        workers: int = 8,
        max_in_flight: int | None = None,
        compress: bool = True,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers}"
            )
        super().__init__(address, PatternRequestHandler)
        self.service = service
        self.quiet = quiet
        self.workers = workers
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None else 2 * workers
        )
        self.compress = compress
        self._gate = threading.Lock()
        self._in_flight = 0
        self._rejected = 0
        self._gzipped = 0

    # -- bounded front end --------------------------------------------

    def _acquire_slot(self) -> bool:
        with self._gate:
            if self._in_flight >= self.max_in_flight:
                self._rejected += 1
                return False
            self._in_flight += 1
            return True

    def _release_slot(self) -> None:
        with self._gate:
            self._in_flight -= 1

    def note_gzipped(self) -> None:
        with self._gate:
            self._gzipped += 1

    def frontend_stats(self) -> dict:
        with self._gate:
            return {
                "workers": self.workers,
                "max_in_flight": self.max_in_flight,
                "in_flight": self._in_flight,
                "rejected": self._rejected,
                "gzipped_responses": self._gzipped,
                "compress": self.compress,
            }

    def process_request(self, request, client_address) -> None:
        if not self._acquire_slot():
            self._reject_busy(request)
            return
        try:
            super().process_request(request, client_address)
        except Exception:
            self._release_slot()
            raise

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._release_slot()

    def _reject_busy(self, request) -> None:
        # shed at the accept path, before a handler thread exists: a raw
        # minimal response keeps the rejection allocation-cheap
        body = b'{"error": "server at capacity, retry shortly"}'
        head = (
            "HTTP/1.1 503 Service Unavailable\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Retry-After: 1\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            request.sendall(head + body)
        except OSError:
            pass
        self.shutdown_request(request)


class PatternRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: socket timeout: a client that stalls mid-request (e.g. a body
    #: shorter than its Content-Length) frees its thread after this
    timeout = 30

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_post)

    def _handle(self, route) -> None:
        start = time.perf_counter()
        try:
            try:
                route()
            except _BadRequest as exc:
                self._respond(400, {"error": str(exc)})
            except StoreCorruptError as exc:
                # the store, not the request, is broken: a 4xx would
                # tell the client to fix its query; 503 tells the load
                # balancer this replica needs a rebuilt store
                self._respond(503, {"error": error_message(exc)})
            except QueryRejectedError as exc:
                # admission control refused the work — 429, with the
                # numbers the client needs to narrow the query or back
                # off (must precede the generic ReproError → 400 map)
                self._respond(
                    429,
                    {
                        "error": error_message(exc),
                        "estimated_cost": round(exc.estimated_cost, 1),
                        "max_cost": round(exc.max_cost, 1),
                    },
                )
            except ReproError as exc:
                self._respond(400, {"error": error_message(exc)})
            except (BrokenPipeError, ConnectionResetError):
                raise
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                self._respond(
                    500, {"error": f"internal error: {type(exc).__name__}"}
                )
        except (BrokenPipeError, ConnectionResetError):
            # client went away mid-response — on the success path or
            # while we were writing an error; nothing left to tell it
            self.close_connection = True
        finally:
            endpoint = urlsplit(self.path).path
            if endpoint in TRACKED_ENDPOINTS:
                self.server.service.observe_latency(
                    endpoint.lstrip("/"), time.perf_counter() - start
                )

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        if url.path == "/healthz":
            self._respond(200, self._healthz())
        elif url.path == "/stats":
            self._respond(200, self._stats())
        elif url.path == "/metrics":
            self._respond_text(
                200, render_metrics(self._stats()), METRICS_CONTENT_TYPE
            )
        elif url.path == "/query":
            query = self._require_query(params)
            limit = self._int_param(params, "limit", DEFAULT_LIMIT)
            min_freq = self._int_param(params, "min_freq", None)
            self._respond(
                200, self.server.service.query(query, limit, min_freq)
            )
        elif url.path == "/count":
            query = self._require_query(params)
            min_freq = self._int_param(params, "min_freq", None)
            self._respond(
                200, self.server.service.count(query, min_freq)
            )
        elif url.path == "/topk":
            n = self._int_param(params, "n", DEFAULT_LIMIT)
            self._respond(200, self.server.service.topk(n))
        else:
            self._respond(404, {"error": f"unknown path {url.path!r}"})

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        if url.path != "/batch":
            self._respond(404, {"error": f"unknown path {url.path!r}"})
            return
        payload = self._read_json()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise _BadRequest("'queries' must be a list of strings")
        if len(queries) > MAX_BATCH:
            raise _BadRequest(
                f"batch of {len(queries)} exceeds limit {MAX_BATCH}"
            )
        limit = payload.get("limit", DEFAULT_LIMIT)
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int)
        ):
            raise _BadRequest("'limit' must be an integer or null")
        if limit is not None and limit < 1:
            raise _BadRequest("'limit' must be >= 1 or null")
        min_freq = payload.get("min_freq")
        if min_freq is not None and (
            isinstance(min_freq, bool) or not isinstance(min_freq, int)
        ):
            raise _BadRequest("'min_freq' must be an integer or null")
        if min_freq is not None and min_freq < 0:
            raise _BadRequest("'min_freq' must be >= 0 or null")
        results = self.server.service.batch(queries, limit, min_freq)
        self._respond(200, {"results": results})

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _healthz(self) -> dict:
        backend = self.server.service.backend
        info = {"status": "ok", "patterns": len(backend)}
        describe = getattr(backend, "describe", None)
        if describe is not None:
            info["store"] = describe()
        return info

    def _stats(self) -> dict:
        stats = self.server.service.stats()
        frontend = getattr(self.server, "frontend_stats", None)
        if frontend is not None:
            stats["frontend"] = frontend()
        return stats

    def _require_query(self, params: dict[str, list[str]]) -> str:
        values = params.get("q")
        if not values or not values[0].strip():
            raise _BadRequest("missing query parameter 'q'")
        return values[0]

    def _int_param(
        self,
        params: dict[str, list[str]],
        name: str,
        default: int | None,
    ) -> int | None:
        values = params.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            raise _BadRequest(
                f"parameter {name!r} must be an integer, got {values[0]!r}"
            ) from None

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        if length <= 0:
            raise _BadRequest("empty request body")
        if length > _MAX_BODY:
            raise _BadRequest(f"request body exceeds {_MAX_BODY} bytes")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload

    def _respond(self, status: int, payload: dict) -> None:
        self._respond_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _respond_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        self._respond_bytes(status, text.encode("utf-8"), content_type)

    def _accepts_gzip(self) -> bool:
        accepted = self.headers.get("Accept-Encoding", "")
        return any(
            part.strip().split(";")[0] == "gzip"
            for part in accepted.split(",")
        )

    def _respond_bytes(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        encoding = None
        if (
            status < 400
            and getattr(self.server, "compress", False)
            and len(body) > DEFAULT_COMPRESS_THRESHOLD
            and self._accepts_gzip()
        ):
            squeezed = gzip.compress(body, 6)
            if len(squeezed) < len(body):
                body = squeezed
                encoding = "gzip"
                self.server.note_gzipped()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if encoding is not None:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # a rejected POST may leave an undrained request body on the
            # socket; close so it cannot desync the next keep-alive request
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)


class _BadRequest(Exception):
    """Client error carrying the message for the 400 response."""


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    workers: int = 8,
    max_in_flight: int | None = None,
    compress: bool = True,
) -> PatternHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port) without
    serving.  ``quiet=False`` enables per-request access logging."""
    return PatternHTTPServer(
        (host, port),
        service,
        quiet=quiet,
        workers=workers,
        max_in_flight=max_in_flight,
        compress=compress,
    )


def run_server(
    server: PatternHTTPServer,
) -> None:  # pragma: no cover - blocking loop, exercised manually
    """Serve until interrupted, then close the socket (``lash serve``
    builds the server itself so it can print the bound address first)."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> None:  # pragma: no cover - blocking entry point, exercised manually
    """Bind and serve until interrupted."""
    run_server(create_server(service, host, port))


__all__ = [
    "PatternHTTPServer",
    "PatternRequestHandler",
    "create_server",
    "run_server",
    "serve",
    "render_metrics",
    "MAX_BATCH",
    "METRICS_CONTENT_TYPE",
    "TRACKED_ENDPOINTS",
]
