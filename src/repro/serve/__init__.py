"""Pattern serving: mine once, answer many queries fast.

The mining side of this library produces a pattern set; this package
turns it into a long-lived query-serving system:

* :class:`~repro.serve.store.PatternStore` — a compact binary on-disk
  index (vocabulary + varint-coded patterns + gap-coded postings) that
  opens in O(header) time via ``mmap`` and decodes sections lazily,
  with optional per-section checksums (:mod:`~repro.serve.format`,
  :mod:`~repro.serve.writer`);
* :class:`~repro.serve.sharded.ShardedPatternStore` — many shard files
  behind one backend: hash-routed exact lookups, k-way-merged ranked
  answers, byte-identical to a single-file store;
* :func:`~repro.serve.writer.merge_stores` — incremental builds: fold
  new mining output into existing stores without re-mining, streaming
  in constant memory through :class:`~repro.serve.writer.PatternWriter`;
* :class:`~repro.serve.compact.StoreCompactor` /
  :class:`~repro.serve.compact.CompactionDaemon` — online compaction:
  fold delta stores into a *live* sharded store with an atomic,
  generation-tagged manifest swap (``lash index compact``, ``lash
  serve --compact-spool``);
* :class:`~repro.serve.ingest.Ingestor` — live ingestion: append or
  retire sequences against a live corpus, micro-mine just the delta
  and publish a signed (increment/decrement) store into the compaction
  spool, closing the build → ingest → compact → serve loop
  (``lash ingest``);
* :class:`~repro.serve.service.QueryService` — a thread-safe façade
  with an LRU result cache, batch API and serving stats;
* :mod:`~repro.serve.http` — a dependency-free ``ThreadingHTTPServer``
  exposing ``/query``, ``/count``, ``/topk``, ``/batch``, ``/stats``,
  ``/metrics`` (Prometheus text) and ``/healthz``;
* the **distributed tier** — :class:`~repro.serve.distributed.ShardServer`
  processes each serving a shard slice over a varint-framed socket
  protocol (:mod:`~repro.serve.protocol`), and a
  :class:`~repro.serve.router.RouterBackend` that owns the cluster map,
  fans queries out, k-way merges the rank-ordered partials
  (byte-identical to a single process) and fails over across replicas
  (``lash shard-serve`` / ``lash route``);
* :func:`~repro.serve.advisor.advise_shards` — stats-driven shard-count
  advice from measured routing-group skew (``lash index info
  --advise``).

Build a store from a mining result and serve it::

    result.to_store("patterns.store")            # once, after mining
    result.to_store("patterns.shards", shards=8) # or sharded

    store = open_store("patterns.shards")        # either layout
    service = QueryService(store)
    serve(service, port=8080)                    # lash serve --store ...
"""

from repro.serve.store import PatternStore
from repro.serve.sharded import ShardedPatternStore, open_store
from repro.serve.writer import (
    PatternWriter,
    ShardedPatternWriter,
    merge_stores,
    write_sharded_store,
    write_store,
)
from repro.serve.compact import CompactionDaemon, StoreCompactor
from repro.serve.ingest import Ingestor
from repro.serve.service import QueryService

_HTTP_EXPORTS = ("PatternHTTPServer", "create_server", "run_server", "serve")

#: distributed-tier exports, resolved lazily like the HTTP ones so the
#: store-only import path stays socket-free
_DISTRIBUTED_EXPORTS = {
    "ShardServer": "repro.serve.distributed",
    "ClusterMap": "repro.serve.router",
    "RouterBackend": "repro.serve.router",
    "plan_placement": "repro.serve.router",
    "advise_shards": "repro.serve.advisor",
}


def __getattr__(name):
    # store-only paths (MiningResult.to_store, `lash index build`) never
    # pay the http.server import; resolve the server lazily
    if name in _HTTP_EXPORTS:
        from repro.serve import http

        return getattr(http, name)
    if name in _DISTRIBUTED_EXPORTS:
        import importlib

        return getattr(
            importlib.import_module(_DISTRIBUTED_EXPORTS[name]), name
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PatternStore",
    "ShardedPatternStore",
    "open_store",
    "PatternWriter",
    "ShardedPatternWriter",
    "write_store",
    "write_sharded_store",
    "merge_stores",
    "StoreCompactor",
    "CompactionDaemon",
    "Ingestor",
    "QueryService",
    *_HTTP_EXPORTS,
    *_DISTRIBUTED_EXPORTS,
]
