"""Pattern serving: mine once, answer many queries fast.

The mining side of this library produces a pattern set; this package
turns it into a long-lived query-serving system:

* :class:`~repro.serve.store.PatternStore` — a compact binary on-disk
  index (vocabulary + varint-coded patterns + gap-coded postings) that
  opens in O(header) time via ``mmap`` and decodes sections lazily;
* :class:`~repro.serve.service.QueryService` — a thread-safe façade
  with an LRU result cache, batch API and serving stats;
* :mod:`~repro.serve.http` — a dependency-free ``ThreadingHTTPServer``
  exposing ``/query``, ``/count``, ``/topk``, ``/batch``, ``/stats``
  and ``/healthz`` as JSON endpoints.

Build a store from a mining result and serve it::

    result.to_store("patterns.store")            # once, after mining

    store = PatternStore.open("patterns.store")  # O(header) startup
    service = QueryService(store)
    serve(service, port=8080)                    # lash serve --store ...
"""

from repro.serve.store import PatternStore, write_store
from repro.serve.service import QueryService

_HTTP_EXPORTS = ("PatternHTTPServer", "create_server", "run_server", "serve")


def __getattr__(name):
    # store-only paths (MiningResult.to_store, `lash index build`) never
    # pay the http.server import; resolve the server lazily
    if name in _HTTP_EXPORTS:
        from repro.serve import http

        return getattr(http, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PatternStore",
    "write_store",
    "QueryService",
    *_HTTP_EXPORTS,
]
