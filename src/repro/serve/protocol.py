"""Wire protocol of the distributed serving tier.

The router and the shard servers speak a length-prefixed binary
protocol over plain TCP sockets — no serialization dependency, just the
store's own varint codec (:mod:`repro.io.codec`) applied to a small
self-describing value encoding:

* a **frame** is ``uvarint(len(body)) + body``, so a reader never
  guesses message boundaries and a single allocation holds the body;
* a **body** is one :func:`encode_value` value — ``None``, bools,
  ints (zigzag varints), strings, bytes, lists and string-keyed dicts,
  nested arbitrarily.  Requests and responses are plain dicts.

Query tokens cross the wire *structurally* (:func:`encode_tokens` /
:func:`decode_tokens`), not as query strings: the string syntax cannot
spell every item name (that is why :class:`~repro.query.tokens.Q`
exists), and re-parsing on the server would re-do work the router's
service layer already did.

Remote errors carry their exception type name so the router re-raises
the *same* :mod:`repro.errors` class the backend would have raised
locally — the HTTP layer's 400-vs-503 mapping keeps working unchanged
across the network hop (:func:`encode_error` / :func:`decode_error`).
"""

from __future__ import annotations

import socket

from repro.errors import (
    EncodingError,
    HierarchyError,
    InvalidParameterError,
    QueryRejectedError,
    ReproError,
    StoreCorruptError,
    UnknownItemError,
)
from repro.io.codec import (
    read_uvarint,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.query.tokens import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
)

#: protocol revision; servers reject requests tagged with another one
#: instead of misreading them
PROTOCOL_VERSION = 1

#: a frame larger than this is a corrupt length prefix, not a result
#: set — reject before allocating the claimed size
MAX_FRAME_BYTES = 1 << 26  # 64 MiB

# value-encoding type tags
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_STR = 4
_T_BYTES = 5
_T_LIST = 6
_T_DICT = 7


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------


def encode_value(value, buf: bytearray | None = None) -> bytearray:
    """Append one value to ``buf`` (tuples encode as lists)."""
    if buf is None:
        buf = bytearray()
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, int):
        buf.append(_T_INT)
        write_uvarint(buf, zigzag_encode(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        write_uvarint(buf, len(raw))
        buf += raw
    elif isinstance(value, (bytes, bytearray)):
        buf.append(_T_BYTES)
        write_uvarint(buf, len(value))
        buf += value
    elif isinstance(value, (list, tuple)):
        buf.append(_T_LIST)
        write_uvarint(buf, len(value))
        for item in value:
            encode_value(item, buf)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        write_uvarint(buf, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(
                    f"protocol dict keys must be strings, got {key!r}"
                )
            raw = key.encode("utf-8")
            write_uvarint(buf, len(raw))
            buf += raw
            encode_value(item, buf)
    else:
        raise EncodingError(
            f"protocol cannot encode {type(value).__name__}: {value!r}"
        )
    return buf


def decode_value(data, offset: int = 0):
    """Decode one value; returns ``(value, end_offset)``."""
    try:
        tag = data[offset]
    except IndexError:
        raise EncodingError("truncated protocol value") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = read_uvarint(data, offset)
        return zigzag_decode(raw), offset
    if tag == _T_STR:
        n, offset = read_uvarint(data, offset)
        return bytes(data[offset:offset + n]).decode("utf-8"), offset + n
    if tag == _T_BYTES:
        n, offset = read_uvarint(data, offset)
        return bytes(data[offset:offset + n]), offset + n
    if tag == _T_LIST:
        n, offset = read_uvarint(data, offset)
        items = []
        for _ in range(n):
            item, offset = decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        n, offset = read_uvarint(data, offset)
        out = {}
        for _ in range(n):
            k, offset = read_uvarint(data, offset)
            key = bytes(data[offset:offset + k]).decode("utf-8")
            offset += k
            out[key], offset = decode_value(data, offset)
        return out, offset
    raise EncodingError(f"unknown protocol type tag {tag}")


# ----------------------------------------------------------------------
# framing over sockets
# ----------------------------------------------------------------------


def send_message(sock: socket.socket, value) -> None:
    """Encode ``value`` and write it as one length-prefixed frame."""
    body = encode_value(value)
    frame = bytearray()
    write_uvarint(frame, len(body))
    frame += body
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks += chunk
    return bytes(chunks)


def recv_message(sock: socket.socket):
    """Read one frame and decode its value.

    Returns ``None``-sentinel-free: an orderly EOF *before any byte of
    a frame* raises :class:`EOFError` (the connection is simply done);
    EOF mid-frame raises :class:`ConnectionError` (the peer died).
    """
    # the length prefix arrives byte by byte (varints have no fixed
    # width); the first byte distinguishes EOF-between-frames from
    # EOF-mid-frame
    length = 0
    shift = 0
    first = True
    while True:
        byte = sock.recv(1)
        if not byte:
            if first:
                raise EOFError("connection closed")
            raise ConnectionError("peer closed mid-frame")
        first = False
        length |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            break
        shift += 7
        if shift > 63:
            raise EncodingError("oversized frame length prefix")
    if length > MAX_FRAME_BYTES:
        raise EncodingError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    value, end = decode_value(body, 0)
    if end != length:
        raise EncodingError(
            f"frame carries {length - end} trailing bytes after its value"
        )
    return value


# ----------------------------------------------------------------------
# query tokens on the wire
# ----------------------------------------------------------------------


def encode_token(token: QueryToken) -> list:
    """One token as a nested-list structure the value codec can carry."""
    if isinstance(token, ItemToken):
        return ["item", token.name]
    if isinstance(token, UnderToken):
        return ["under", token.name]
    if isinstance(token, AnyToken):
        return ["any"]
    if isinstance(token, PlusToken):
        return ["plus"]
    if isinstance(token, SpanToken):
        return ["span"]
    if isinstance(token, GapToken):
        return ["gap", token.min_items, token.max_items]
    if isinstance(token, NotToken):
        return ["not", encode_token(token.inner)]
    if isinstance(token, OneOfToken):
        return ["oneof", [encode_token(c) for c in token.choices]]
    if isinstance(token, FloorToken):
        return ["floor", encode_token(token.inner), token.floor]
    raise EncodingError(f"cannot encode query token {token!r}")


def decode_token(obj) -> QueryToken:
    if not isinstance(obj, list) or not obj:
        raise EncodingError(f"malformed wire token {obj!r}")
    kind = obj[0]
    try:
        if kind == "item":
            return ItemToken(obj[1])
        if kind == "under":
            return UnderToken(obj[1])
        if kind == "any":
            return AnyToken()
        if kind == "plus":
            return PlusToken()
        if kind == "span":
            return SpanToken()
        if kind == "gap":
            return GapToken(obj[1], obj[2])
        if kind == "not":
            return NotToken(decode_token(obj[1]))
        if kind == "oneof":
            return OneOfToken(tuple(decode_token(c) for c in obj[1]))
        if kind == "floor":
            return FloorToken(decode_token(obj[1]), obj[2])
    except (IndexError, TypeError) as exc:
        raise EncodingError(f"malformed wire token {obj!r}: {exc}") from None
    raise EncodingError(f"unknown wire token kind {kind!r}")


def encode_tokens(tokens) -> list:
    return [encode_token(token) for token in tokens]


def decode_tokens(obj) -> tuple[QueryToken, ...]:
    if not isinstance(obj, list):
        raise EncodingError(f"malformed wire token list {obj!r}")
    return tuple(decode_token(item) for item in obj)


# ----------------------------------------------------------------------
# remote errors
# ----------------------------------------------------------------------

#: exception classes allowed to cross the wire by name; anything else
#: degrades to the base class (clients treat it as a server-side error)
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ReproError,
        HierarchyError,
        UnknownItemError,
        InvalidParameterError,
        EncodingError,
        StoreCorruptError,
        QueryRejectedError,
    )
}


def encode_error(exc: ReproError) -> dict:
    """``{"type", "message"[, "item"]}`` for a response's error field."""
    message = (
        exc.args[0]
        if exc.args and isinstance(exc.args[0], str)
        else str(exc)
    )
    out = {"type": type(exc).__name__, "message": message}
    item = getattr(exc, "item", None)
    if isinstance(item, str):
        out["item"] = item
    if isinstance(exc, QueryRejectedError):
        # admission numbers travel as ints (the wire has no float type)
        out["estimated_cost"] = int(round(exc.estimated_cost))
        out["max_cost"] = int(round(exc.max_cost))
    return out


def decode_error(obj: dict) -> ReproError:
    """Rebuild the remote exception with its original type and message,
    so ``except UnknownItemError`` (and the HTTP status mapping) behave
    identically for local and remote backends."""
    cls = _ERROR_TYPES.get(obj.get("type"), ReproError)
    if cls is UnknownItemError and "item" in obj:
        return UnknownItemError(obj["item"])
    if cls is QueryRejectedError:
        return QueryRejectedError(
            obj.get("message", "query rejected"),
            estimated_cost=obj.get("estimated_cost", 0),
            max_cost=obj.get("max_cost", 0),
        )
    exc = cls.__new__(cls)
    Exception.__init__(exc, obj.get("message", "remote error"))
    return exc


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_value",
    "decode_value",
    "send_message",
    "recv_message",
    "encode_token",
    "decode_token",
    "encode_tokens",
    "decode_tokens",
    "encode_error",
    "decode_error",
]
