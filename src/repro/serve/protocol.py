"""Wire protocol of the distributed serving tier.

The router and the shard servers speak a length-prefixed binary
protocol over plain TCP sockets — no serialization dependency, just the
store's own varint codec (:mod:`repro.io.codec`) applied to a small
self-describing value encoding:

* a **frame** is ``uvarint(len(body)) + body``, so a reader never
  guesses message boundaries and a single allocation holds the body;
* a **body** is one :func:`encode_value` value — ``None``, bools,
  ints (zigzag varints), strings, bytes, lists and string-keyed dicts,
  nested arbitrarily.  Requests and responses are plain dicts.

Query tokens cross the wire *structurally* (:func:`encode_tokens` /
:func:`decode_tokens`), not as query strings: the string syntax cannot
spell every item name (that is why :class:`~repro.query.tokens.Q`
exists), and re-parsing on the server would re-do work the router's
service layer already did.

Remote errors carry their exception type name so the router re-raises
the *same* :mod:`repro.errors` class the backend would have raised
locally — the HTTP layer's 400-vs-503 mapping keeps working unchanged
across the network hop (:func:`encode_error` / :func:`decode_error`).

Wire format
-----------

**Legacy framing** (the v1 baseline every peer speaks): each direction
is a sequence of frames ``uvarint(len(body)) + body`` where ``body``
is one :func:`encode_value` value.  Requests and responses strictly
alternate on a connection — one in flight at a time.

**Multiplexed framing** is negotiated by a capability handshake that
is itself a legacy exchange, so it degrades byte-compatibly:

1. the client's *first* frame is a normal v1 request
   ``{"op": "hello", "v": 1, "features": ["mux", "zlib", "multi"]}``;
2. a server that speaks the extension answers
   ``{"ok": True, "features": [...], "threshold": N}`` (the feature
   intersection and its compression threshold) and both sides switch
   to mux framing for the rest of the connection; a server that does
   not recognizes no ``hello`` op and answers a regular error
   response, after which the client simply continues in legacy mode —
   nothing on the wire ever changed shape;
3. an old client never sends ``hello``, so a new server stays in
   legacy mode for that connection automatically.

A **mux frame** is ``uvarint(len(body)) + body`` with::

    body = flags:u8 + uvarint(request_id) + payload

``flags`` bit 0 (:data:`FLAG_COMPRESSED`) marks a zlib-compressed
payload; bit 1 (:data:`FLAG_JSON`) marks a UTF-8 JSON payload — the
fast path for every value JSON can represent, with the binary
:func:`encode_value` codec (bit 1 clear) kept for the rest (``bytes``).
Request ids are chosen by the client (monotonically
increasing per connection) and echoed by the server, which may answer
**out of order** — that is the point: one socket carries many in-flight
requests.  Compression applies per frame, only when the ``zlib``
feature was negotiated *and* the encoded payload exceeds the
negotiated threshold (tiny frames cost more to deflate than to send);
:class:`WireStats` counts frames and bytes on both sides so ``/stats``
and ``/metrics`` can report the compression ratio actually achieved.
"""

from __future__ import annotations

import json
import socket
import threading
import zlib

from repro.errors import (
    EncodingError,
    HierarchyError,
    InvalidParameterError,
    QueryRejectedError,
    ReproError,
    ServerBusyError,
    StoreCorruptError,
    UnknownItemError,
)
from repro.io.codec import (
    read_uvarint,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.query.tokens import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
)

#: protocol revision; servers reject requests tagged with another one
#: instead of misreading them
PROTOCOL_VERSION = 1

#: a frame larger than this is a corrupt length prefix, not a result
#: set — reject before allocating the claimed size
MAX_FRAME_BYTES = 1 << 26  # 64 MiB

#: capability names of the multiplexing extension: ``mux`` (request-id
#: tagged frames, out-of-order responses), ``zlib`` (per-frame payload
#: compression above the threshold), ``multi`` (the ``multi_search``
#: batched-scatter op)
FEATURE_MUX = "mux"
FEATURE_ZLIB = "zlib"
FEATURE_MULTI = "multi"

#: everything this build can speak; peers negotiate the intersection
ALL_FEATURES = (FEATURE_MUX, FEATURE_ZLIB, FEATURE_MULTI)

#: default payload size (bytes) above which a negotiated-zlib frame is
#: compressed — below it deflate overhead beats the byte savings
DEFAULT_COMPRESS_THRESHOLD = 512

#: mux frame flag bit: the payload is zlib-compressed
FLAG_COMPRESSED = 0x01

#: mux frame flag bit: the (decompressed) payload is UTF-8 JSON rather
#: than an :func:`encode_value` value.  JSON is the fast path — the C
#: codec beats the pure-Python tag walk roughly 6x on real result
#: frames — and the binary codec remains for values JSON cannot carry
#: (``bytes``).  Legacy framing never sets flags and stays on
#: :func:`encode_value` byte for byte.
FLAG_JSON = 0x02

# value-encoding type tags
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_STR = 4
_T_BYTES = 5
_T_LIST = 6
_T_DICT = 7


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------


def encode_value(value, buf: bytearray | None = None) -> bytearray:
    """Append one value to ``buf`` (tuples encode as lists)."""
    if buf is None:
        buf = bytearray()
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, int):
        buf.append(_T_INT)
        write_uvarint(buf, zigzag_encode(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        write_uvarint(buf, len(raw))
        buf += raw
    elif isinstance(value, (bytes, bytearray)):
        buf.append(_T_BYTES)
        write_uvarint(buf, len(value))
        buf += value
    elif isinstance(value, (list, tuple)):
        buf.append(_T_LIST)
        write_uvarint(buf, len(value))
        for item in value:
            encode_value(item, buf)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        write_uvarint(buf, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(
                    f"protocol dict keys must be strings, got {key!r}"
                )
            raw = key.encode("utf-8")
            write_uvarint(buf, len(raw))
            buf += raw
            encode_value(item, buf)
    else:
        raise EncodingError(
            f"protocol cannot encode {type(value).__name__}: {value!r}"
        )
    return buf


def decode_value(data, offset: int = 0):
    """Decode one value; returns ``(value, end_offset)``."""
    try:
        tag = data[offset]
    except IndexError:
        raise EncodingError("truncated protocol value") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = read_uvarint(data, offset)
        return zigzag_decode(raw), offset
    if tag == _T_STR:
        n, offset = read_uvarint(data, offset)
        return bytes(data[offset:offset + n]).decode("utf-8"), offset + n
    if tag == _T_BYTES:
        n, offset = read_uvarint(data, offset)
        return bytes(data[offset:offset + n]), offset + n
    if tag == _T_LIST:
        n, offset = read_uvarint(data, offset)
        items = []
        for _ in range(n):
            item, offset = decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        n, offset = read_uvarint(data, offset)
        out = {}
        for _ in range(n):
            k, offset = read_uvarint(data, offset)
            key = bytes(data[offset:offset + k]).decode("utf-8")
            offset += k
            out[key], offset = decode_value(data, offset)
        return out, offset
    raise EncodingError(f"unknown protocol type tag {tag}")


# ----------------------------------------------------------------------
# framing over sockets
# ----------------------------------------------------------------------


def send_message(sock: socket.socket, value) -> None:
    """Encode ``value`` and write it as one length-prefixed frame."""
    body = encode_value(value)
    frame = bytearray()
    write_uvarint(frame, len(body))
    frame += body
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks += chunk
    return bytes(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame body.

    An orderly EOF *before any byte of a frame* raises
    :class:`EOFError` (the connection is simply done); EOF mid-frame
    raises :class:`ConnectionError` (the peer died).
    """
    # the length prefix arrives byte by byte (varints have no fixed
    # width); the first byte distinguishes EOF-between-frames from
    # EOF-mid-frame
    length = 0
    shift = 0
    first = True
    while True:
        byte = sock.recv(1)
        if not byte:
            if first:
                raise EOFError("connection closed")
            raise ConnectionError("peer closed mid-frame")
        first = False
        length |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            break
        shift += 7
        if shift > 63:
            raise EncodingError("oversized frame length prefix")
    if length > MAX_FRAME_BYTES:
        raise EncodingError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _recv_exact(sock, length)


def recv_message(sock: socket.socket):
    """Read one legacy frame and decode its value (see
    :func:`_recv_frame` for the EOF semantics)."""
    body = _recv_frame(sock)
    value, end = decode_value(body, 0)
    if end != len(body):
        raise EncodingError(
            f"frame carries {len(body) - end} trailing bytes after its value"
        )
    return value


# ----------------------------------------------------------------------
# multiplexed framing (negotiated by the hello handshake)
# ----------------------------------------------------------------------


class WireStats:
    """Frame/byte counters for one endpoint, thread-safe.

    ``raw`` bytes are the encoded payload sizes before compression;
    ``wire`` bytes are what actually crossed the socket (frame bodies,
    compressed or not) — the ratio of the two is the compression win.
    """

    __slots__ = (
        "_lock",
        "frames_sent",
        "frames_received",
        "raw_bytes_sent",
        "raw_bytes_received",
        "wire_bytes_sent",
        "wire_bytes_received",
        "compressed_frames_sent",
        "compressed_frames_received",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.frames_sent = 0
        self.frames_received = 0
        self.raw_bytes_sent = 0
        self.raw_bytes_received = 0
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self.compressed_frames_sent = 0
        self.compressed_frames_received = 0

    def observe_sent(self, raw: int, wire: int, compressed: bool) -> None:
        with self._lock:
            self.frames_sent += 1
            self.raw_bytes_sent += raw
            self.wire_bytes_sent += wire
            if compressed:
                self.compressed_frames_sent += 1

    def observe_received(self, raw: int, wire: int, compressed: bool) -> None:
        with self._lock:
            self.frames_received += 1
            self.raw_bytes_received += raw
            self.wire_bytes_received += wire
            if compressed:
                self.compressed_frames_received += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
                "raw_bytes_sent": self.raw_bytes_sent,
                "raw_bytes_received": self.raw_bytes_received,
                "wire_bytes_sent": self.wire_bytes_sent,
                "wire_bytes_received": self.wire_bytes_received,
                "compressed_frames_sent": self.compressed_frames_sent,
                "compressed_frames_received": self.compressed_frames_received,
            }


def merge_wire_snapshots(snapshots) -> dict:
    """Sum :meth:`WireStats.snapshot` dicts (e.g. across the router's
    per-server clients) into one aggregate."""
    total: dict = {}
    for snap in snapshots:
        for key, value in snap.items():
            total[key] = total.get(key, 0) + value
    return total


def send_mux(
    sock: socket.socket,
    request_id: int,
    value,
    compress_threshold: int | None = None,
    stats: WireStats | None = None,
) -> None:
    """Write one mux frame.  ``compress_threshold=None`` disables
    compression (the ``zlib`` feature was not negotiated); otherwise
    payloads larger than the threshold are deflated when that actually
    shrinks them."""
    try:
        payload = json.dumps(
            value, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        flags = FLAG_JSON
    except (TypeError, ValueError):
        # bytes (or other JSON-unrepresentable) values take the
        # binary codec; the flag bit tells the peer which one to undo
        payload = bytes(encode_value(value))
        flags = 0
    raw_len = len(payload)
    if compress_threshold is not None and raw_len > compress_threshold:
        squeezed = zlib.compress(payload, 6)
        if len(squeezed) < raw_len:
            payload = squeezed
            flags |= FLAG_COMPRESSED
    body = bytearray((flags,))
    write_uvarint(body, request_id)
    body += payload
    frame = bytearray()
    write_uvarint(frame, len(body))
    frame += body
    # counters update before the write so a peer that acts on the frame
    # immediately always sees them reflected on this side's /stats
    if stats is not None:
        stats.observe_sent(raw_len, len(body), bool(flags & FLAG_COMPRESSED))
    sock.sendall(frame)


def recv_mux(
    sock: socket.socket, stats: WireStats | None = None
) -> tuple[int, object]:
    """Read one mux frame; returns ``(request_id, value)`` (EOF
    semantics as :func:`_recv_frame`)."""
    body = _recv_frame(sock)
    if not body:
        raise EncodingError("empty mux frame")
    flags = body[0]
    request_id, offset = read_uvarint(body, 1)
    payload = bytes(body[offset:])
    wire_len = len(body)
    compressed = bool(flags & FLAG_COMPRESSED)
    if compressed:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise EncodingError(
                f"corrupt compressed frame: {exc}"
            ) from None
        if len(payload) > MAX_FRAME_BYTES:
            raise EncodingError(
                f"decompressed frame of {len(payload)} bytes exceeds "
                f"limit {MAX_FRAME_BYTES}"
            )
    if flags & FLAG_JSON:
        try:
            value = json.loads(payload)
        except ValueError as exc:
            raise EncodingError(f"corrupt JSON frame: {exc}") from None
    else:
        value, end = decode_value(payload, 0)
        if end != len(payload):
            raise EncodingError(
                f"frame carries {len(payload) - end} trailing bytes "
                "after its value"
            )
    if stats is not None:
        stats.observe_received(len(payload), wire_len, compressed)
    return request_id, value


def hello_request(features=ALL_FEATURES) -> dict:
    """The capability handshake's first frame — a plain v1 request, so
    a pre-extension server rejects the unknown op with an ordinary
    error response and the connection continues in legacy mode."""
    return {
        "v": PROTOCOL_VERSION,
        "op": "hello",
        "features": list(features),
    }


def hello_response(
    features, threshold: int = DEFAULT_COMPRESS_THRESHOLD
) -> dict:
    """The server's answer: the negotiated feature intersection and the
    compression threshold both sides will apply."""
    return {
        "ok": True,
        "features": list(features),
        "threshold": threshold,
    }


def negotiate_features(client_features, server_features) -> tuple[str, ...]:
    """Feature intersection in canonical order; ``zlib`` without
    ``mux`` is meaningless (legacy frames are never compressed), so it
    is dropped unless both sides multiplex."""
    agreed = set(client_features) & set(server_features)
    if FEATURE_MUX not in agreed:
        return ()
    return tuple(f for f in ALL_FEATURES if f in agreed)


# ----------------------------------------------------------------------
# query tokens on the wire
# ----------------------------------------------------------------------


def encode_token(token: QueryToken) -> list:
    """One token as a nested-list structure the value codec can carry."""
    if isinstance(token, ItemToken):
        return ["item", token.name]
    if isinstance(token, UnderToken):
        return ["under", token.name]
    if isinstance(token, AnyToken):
        return ["any"]
    if isinstance(token, PlusToken):
        return ["plus"]
    if isinstance(token, SpanToken):
        return ["span"]
    if isinstance(token, GapToken):
        return ["gap", token.min_items, token.max_items]
    if isinstance(token, NotToken):
        return ["not", encode_token(token.inner)]
    if isinstance(token, OneOfToken):
        return ["oneof", [encode_token(c) for c in token.choices]]
    if isinstance(token, FloorToken):
        return ["floor", encode_token(token.inner), token.floor]
    raise EncodingError(f"cannot encode query token {token!r}")


def decode_token(obj) -> QueryToken:
    if not isinstance(obj, list) or not obj:
        raise EncodingError(f"malformed wire token {obj!r}")
    kind = obj[0]
    try:
        if kind == "item":
            return ItemToken(obj[1])
        if kind == "under":
            return UnderToken(obj[1])
        if kind == "any":
            return AnyToken()
        if kind == "plus":
            return PlusToken()
        if kind == "span":
            return SpanToken()
        if kind == "gap":
            return GapToken(obj[1], obj[2])
        if kind == "not":
            return NotToken(decode_token(obj[1]))
        if kind == "oneof":
            return OneOfToken(tuple(decode_token(c) for c in obj[1]))
        if kind == "floor":
            return FloorToken(decode_token(obj[1]), obj[2])
    except (IndexError, TypeError) as exc:
        raise EncodingError(f"malformed wire token {obj!r}: {exc}") from None
    raise EncodingError(f"unknown wire token kind {kind!r}")


def encode_tokens(tokens) -> list:
    return [encode_token(token) for token in tokens]


def decode_tokens(obj) -> tuple[QueryToken, ...]:
    if not isinstance(obj, list):
        raise EncodingError(f"malformed wire token list {obj!r}")
    return tuple(decode_token(item) for item in obj)


# ----------------------------------------------------------------------
# remote errors
# ----------------------------------------------------------------------

#: exception classes allowed to cross the wire by name; anything else
#: degrades to the base class (clients treat it as a server-side error)
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ReproError,
        HierarchyError,
        UnknownItemError,
        InvalidParameterError,
        EncodingError,
        StoreCorruptError,
        QueryRejectedError,
        ServerBusyError,
    )
}


def encode_error(exc: ReproError) -> dict:
    """``{"type", "message"[, "item"]}`` for a response's error field."""
    message = (
        exc.args[0]
        if exc.args and isinstance(exc.args[0], str)
        else str(exc)
    )
    out = {"type": type(exc).__name__, "message": message}
    item = getattr(exc, "item", None)
    if isinstance(item, str):
        out["item"] = item
    if isinstance(exc, QueryRejectedError):
        # admission numbers travel as ints (the wire has no float type)
        out["estimated_cost"] = int(round(exc.estimated_cost))
        out["max_cost"] = int(round(exc.max_cost))
    if isinstance(exc, ServerBusyError):
        out["retry_after"] = int(round(exc.retry_after)) or 1
    return out


def decode_error(obj: dict) -> ReproError:
    """Rebuild the remote exception with its original type and message,
    so ``except UnknownItemError`` (and the HTTP status mapping) behave
    identically for local and remote backends."""
    cls = _ERROR_TYPES.get(obj.get("type"), ReproError)
    if cls is UnknownItemError and "item" in obj:
        return UnknownItemError(obj["item"])
    if cls is QueryRejectedError:
        return QueryRejectedError(
            obj.get("message", "query rejected"),
            estimated_cost=obj.get("estimated_cost", 0),
            max_cost=obj.get("max_cost", 0),
        )
    if cls is ServerBusyError:
        return ServerBusyError(
            obj.get("message", "server busy"),
            retry_after=obj.get("retry_after", 1),
        )
    exc = cls.__new__(cls)
    Exception.__init__(exc, obj.get("message", "remote error"))
    return exc


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ALL_FEATURES",
    "FEATURE_MUX",
    "FEATURE_ZLIB",
    "FEATURE_MULTI",
    "FLAG_COMPRESSED",
    "DEFAULT_COMPRESS_THRESHOLD",
    "WireStats",
    "merge_wire_snapshots",
    "encode_value",
    "decode_value",
    "send_message",
    "recv_message",
    "send_mux",
    "recv_mux",
    "hello_request",
    "hello_response",
    "negotiate_features",
    "encode_token",
    "decode_token",
    "encode_tokens",
    "decode_tokens",
    "encode_error",
    "decode_error",
]
