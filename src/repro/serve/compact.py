"""Online compaction: fold delta stores into a live sharded store.

A serving index must absorb new mining runs without downtime.
:class:`StoreCompactor` runs the streaming merge of
:mod:`repro.serve.writer` *in place*: new shard files are written next
to the live generation under generation-tagged names, then the manifest
is swapped atomically (``os.replace``).  At no point does a reader see a
torn index:

* a :class:`~repro.serve.sharded.ShardedPatternStore` opened before the
  swap keeps serving the old shard files — the outgoing generation is
  kept on disk until the *following* compaction (so even its lazily
  not-yet-opened shards stay reachable), and open mmaps pin the inodes
  beyond that;
* a store opened after the swap sees only the new generation;
* a crash anywhere mid-compaction leaves the old manifest pointing at
  the old (untouched) files; orphaned new-generation files are cleaned
  up on failure, and a crashed run's leftovers are simply overwritten
  by the next attempt.

:class:`CompactionDaemon` is the opt-in background thread behind
``lash serve --compact-spool``: it watches a spool directory for delta
stores, compacts them in, reopens the store at the new generation and
swaps it into the live :class:`~repro.serve.service.QueryService` —
also picking up generation bumps made by an *external* ``lash index
compact`` run against the same directory.
"""

from __future__ import annotations

import contextlib
import shutil
import threading
import time
from pathlib import Path
from typing import Sequence

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import EncodingError, ReproError, StoreCorruptError
from repro.serve.format import (
    DELTA_META_SUFFIX,
    MANIFEST_NAME,
    SHARD_FILE_RE,
    delta_meta_path,
    is_sharded_store,
    read_delta_meta,
    read_manifest,
    shard_filename,
    verify_delta_meta,
    write_manifest,
)
from repro.serve.stream import DEFAULT_SORT_BUFFER
from repro.serve.writer import (
    _ShardStreamWriter,
    iter_merged_records,
    merged_vocabulary,
)


#: folded-delta signatures retained in the manifest (enough to cover
#: any realistic crash-recovery window without growing unboundedly)
FOLDED_LOG_LIMIT = 64


def delta_signature(path: str | Path) -> dict:
    """Identity of a delta store for the manifest's folded log: name
    plus size/mtime of the file (or of a shard set's manifest).  Lets a
    spool scanner recognize a delta that was already folded in by a
    cycle that crashed before archiving it — re-folding would silently
    double every frequency it contributed."""
    path = Path(path)
    probe = path / MANIFEST_NAME if path.is_dir() else path
    stat = probe.stat()
    return {
        "name": path.name,
        "size": stat.st_size,
        "mtime_ns": stat.st_mtime_ns,
    }


def _signature_key(signature: dict) -> tuple:
    return (
        signature.get("name"),
        signature.get("size"),
        signature.get("mtime_ns"),
    )


class StoreCompactor:
    """Fold delta stores into a sharded store directory, atomically.

    Parameters
    ----------
    path:
        A sharded store directory (must carry a manifest).
    checksums:
        Whether the new generation's shard files carry per-section
        CRC-32 checksums.
    verify_checksums:
        Whether to CRC-verify the base store and deltas before folding
        them in (corrupt input fails the compaction, never the store).
    sort_buffer:
        Records per in-memory sort run of the streaming merge — the
        knob bounding compaction memory.
    """

    def __init__(
        self,
        path: str | Path,
        checksums: bool = True,
        verify_checksums: bool = True,
        sort_buffer: int = DEFAULT_SORT_BUFFER,
    ) -> None:
        self._path = Path(path)
        if not is_sharded_store(self._path):
            raise EncodingError(
                f"{self._path}: not a sharded store directory; only shard "
                "sets support online compaction (build with --shards)"
            )
        self._checksums = checksums
        self._verify = verify_checksums
        self._sort_buffer = sort_buffer

    @property
    def path(self) -> Path:
        return self._path

    def generation(self) -> int:
        """Current on-disk manifest generation."""
        return read_manifest(self._path)["generation"]

    def _sweep_retired(self, keep: set[str]) -> None:
        """Delete every shard file (or its crashed ``.tmp``) not in
        ``keep`` — the new generation plus the one it just replaced.
        Sweeping the directory instead of trusting one manifest's
        snapshot also reclaims generations orphaned by a crash between
        an earlier manifest swap and its unlink loop.  Runs under the
        compaction lock, so no concurrent build can be mid-write."""
        for entry in self._path.iterdir():
            name = entry.name
            if name in keep:
                continue
            bare = name[:-4] if name.endswith(".tmp") else name
            if SHARD_FILE_RE.fullmatch(bare):
                entry.unlink(missing_ok=True)

    @contextlib.contextmanager
    def _exclusive(self):
        """Serialize compactions of one store directory across
        processes: a daemon-driven compact and an operator's ``lash
        index compact`` racing each other would both build the same
        next generation and the losing manifest write would silently
        discard the winner's deltas.  The flock is held from manifest
        read to manifest write, so the second compactor starts from the
        first one's result instead."""
        lock_path = self._path / ".compact.lock"
        handle = open(lock_path, "a+b")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            handle.close()  # releases the flock

    def compact(
        self,
        deltas: Sequence[str | Path] = (),
        shards: int | None = None,
    ) -> dict:
        """Merge the live store with ``deltas`` into the next generation.

        ``shards=None`` keeps the current shard count; ``shards=M``
        re-routes the merged stream across ``M`` shards (rebalancing —
        also useful with no deltas at all).  Returns a stats dict
        (generation, shard/pattern counts, seconds).  Compactions of
        one store are serialized by an advisory lock in the store
        directory, so concurrent callers queue instead of fighting over
        the same next generation.
        """
        with self._exclusive():
            return self._compact_locked(deltas, shards)

    def _compact_locked(
        self,
        deltas: Sequence[str | Path],
        shards: int | None,
    ) -> dict:
        from repro.serve.sharded import open_store

        manifest = read_manifest(self._path)
        old_files = list(manifest["shard_files"])
        generation = manifest["generation"] + 1
        num_shards = manifest["shards"] if shards is None else shards
        if num_shards < 1:
            raise EncodingError(
                f"shard count must be >= 1, got {num_shards}"
            )
        # the already-folded filter must run HERE, under the lock, on
        # the manifest just read: a caller that classified a delta as
        # fresh before a concurrent compactor folded it would otherwise
        # fold it twice and double its frequencies
        folded_keys = {
            _signature_key(entry)
            for entry in manifest.get("folded_log", ())
        }
        skipped: list[str] = []
        fresh: list[str | Path] = []
        for delta in deltas:
            if _signature_key(delta_signature(delta)) in folded_keys:
                skipped.append(Path(delta).name)
            else:
                fresh.append(delta)
        if deltas and not fresh and shards is None:
            # every delta was already folded by an earlier (possibly
            # crashed-before-archiving) compaction: nothing to rewrite
            return {
                "path": str(self._path),
                "generation": manifest["generation"],
                "shards": manifest["shards"],
                "items": manifest["items"],
                "patterns": manifest["patterns"],
                "total_frequency": manifest["total_frequency"],
                "deltas": 0,
                "skipped_deltas": skipped,
                "seconds": 0.0,
                "noop": True,
            }
        deltas = fresh
        new_files = [
            shard_filename(i, num_shards, generation)
            for i in range(num_shards)
        ]
        # signatures go into the manifest's folded log so a spool
        # scanner can tell an applied delta from a pending one even if
        # the archiving step after this compaction never ran
        folded_log = list(manifest.get("folded_log", ())) + [
            {**delta_signature(delta), "generation": generation}
            for delta in deltas
        ]
        # never truncate away this batch: a crash before archiving must
        # find every one of these signatures, or the deltas re-fold and
        # double their frequencies
        folded_log = folded_log[-max(FOLDED_LOG_LIMIT, len(deltas)):]

        # freshness bookkeeping: ingest deltas carry their sequence
        # watermarks in a sidecar; fold them into the manifest as
        # monotonic maxima, so the served watermark can never move
        # backwards no matter what order deltas are applied in
        ingest = dict(manifest.get("ingest") or {})
        for delta in deltas:
            delta = Path(delta)
            meta = read_delta_meta(delta) if delta.is_file() else None
            if meta is None:
                continue
            for field in ("ingested_through", "retained_from"):
                value = meta.get(field)
                if isinstance(value, int) and not isinstance(value, bool):
                    ingest[field] = max(ingest.get(field, 0), value)

        start = time.perf_counter()
        opened = []
        writer: _ShardStreamWriter | None = None
        try:
            for source in (self._path, *deltas):
                opened.append(
                    open_store(
                        source,
                        pattern_cache_size=0,
                        postings_cache_size=0,
                        verify_checksums=self._verify,
                    )
                )
            vocabulary = merged_vocabulary(opened)
            records = iter_merged_records(
                opened, vocabulary, sort_buffer=self._sort_buffer,
                spill_dir=self._path,
            )
            writer = _ShardStreamWriter(
                self._path,
                new_files,
                vocabulary,
                checksums=self._checksums,
                postings_buffer=self._sort_buffer,
            )
            for pattern, frequency in records:
                # delta decrements may cancel a pattern partially or
                # fully; anything below one supporting sequence would
                # not exist in a re-mine of the retained corpus
                if frequency < 1:
                    continue
                writer.write(pattern, frequency)
            writer.close()
            meta = {
                "items": len(vocabulary),
                "patterns": writer.count,
                "total_frequency": writer.total_frequency,
                "generation": generation,
                # the outgoing generation stays on disk until the
                # *next* compaction: a reader opened against the old
                # manifest may not have lazily opened every shard
                # yet, and those late opens must still find their
                # files.  One swap later every such reader has
                # reopened (or answers from already-pinned inodes).
                "previous_files": [
                    name for name in old_files if name not in new_files
                ],
                "folded_log": folded_log,
            }
            if ingest:
                meta["ingest"] = ingest
            # the swap: readers opened before this line keep the old
            # files (their mmaps pin the inodes); readers opened after
            # see only the new generation
            write_manifest(self._path, new_files, meta)
        except BaseException:
            if writer is not None:
                writer.abort()
            for name in new_files:
                (self._path / name).unlink(missing_ok=True)
            raise
        finally:
            for store in opened:
                store.close()
        self._sweep_retired(keep=set(new_files) | set(old_files))
        stats = {
            "path": str(self._path),
            "generation": generation,
            "shards": num_shards,
            "items": len(vocabulary),
            "patterns": writer.count,
            "total_frequency": writer.total_frequency,
            "deltas": len(deltas),
            "skipped_deltas": skipped,
            "seconds": round(time.perf_counter() - start, 3),
        }
        if ingest:
            stats["ingest"] = ingest
        return stats


#: spool subdirectory applied deltas are moved into (never rescanned)
APPLIED_DIR = "applied"

#: applied deltas kept in ``spool/applied/`` before the retention sweep
#: reclaims the oldest — enough history for post-mortems and for the
#: ingestor's publish-idempotency probe, without the archive growing
#: with corpus lifetime
APPLIED_RETAIN_DEFAULT = 256

#: seconds a backend retired by a swap stays open before it may be
#: closed — the bound on how long one in-flight request may keep
#: scanning it, even when compaction cycles are much shorter
RETIRE_GRACE_S = 60.0


class CompactionDaemon:
    """Background re-merge thread for a serving process.

    Every ``interval`` seconds the daemon scans ``spool`` for delta
    stores (``*.store`` files or sharded directories), folds any it
    finds into the served store via :class:`StoreCompactor`, moves the
    consumed deltas into ``spool/applied/``, reopens the store at the
    new generation and swaps it into the
    :class:`~repro.serve.service.QueryService`.  A generation bump made
    by an external ``lash index compact`` is detected the same way and
    triggers a reopen without a local merge.

    A backend retired by a swap is closed only once it has been retired
    for at least :data:`RETIRE_GRACE_S` seconds (and always at
    :meth:`stop`), so a request that grabbed it before the swap can
    keep scanning its mmaps for up to the grace period even when
    compaction cycles are much shorter.

    Each delta is validated on its own before a batch is folded: one
    unreadable file (a crashed copy, bit rot) is quarantined by its
    signature — the healthy deltas around it keep folding, the bad one
    is skipped until its file changes, and the error is published via
    ``/stats``.
    """

    def __init__(
        self,
        service,
        store_path: str | Path,
        spool: str | Path,
        interval: float = 30.0,
        checksums: bool = True,
        verify_checksums: bool = True,
        sort_buffer: int = DEFAULT_SORT_BUFFER,
        applied_retain: int = APPLIED_RETAIN_DEFAULT,
    ) -> None:
        self._service = service
        self._store_path = Path(store_path)
        self._compactor = StoreCompactor(
            store_path,
            checksums=checksums,
            verify_checksums=verify_checksums,
            sort_buffer=sort_buffer,
        )
        self._spool = Path(spool)
        self._spool.mkdir(parents=True, exist_ok=True)
        self._interval = interval
        self._verify = verify_checksums
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lash-compactor", daemon=True
        )
        #: (retired_at_monotonic, backend) pairs awaiting their grace
        self._retired: list[tuple[float, object]] = []
        #: signature → error of deltas that failed validation; skipped
        #: until the file changes (new signature) or leaves the spool
        self._rejected: dict[tuple, str] = {}
        self._compactions = 0
        self._last_error: str | None = None
        self._applied_retain = max(0, applied_retain)
        #: ingest-facing counters surfaced on /stats and /metrics
        self._applied_deltas = 0
        self._pending_count = 0
        self._lag_seconds = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float | None = 10.0) -> None:
        self._stop_event.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)
        for _, backend in self._retired:
            backend.close()
        self._retired = []

    def _run(self) -> None:  # pragma: no cover - exercised via poll_once
        while not self._stop_event.wait(self._interval):
            try:
                self.poll_once()
            except Exception as exc:  # noqa: BLE001 - the loop must
                # outlive any single failed cycle: a dead compactor
                # thread looks like a healthy server that silently
                # stopped folding deltas.  The error is surfaced on
                # /stats instead.
                self._note(error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # one scan (also the test surface)
    # ------------------------------------------------------------------

    def pending_deltas(self) -> list[Path]:
        """Delta stores currently waiting in the spool."""
        deltas = []
        for entry in sorted(self._spool.iterdir()):
            if entry.name.startswith(".") or entry.name == APPLIED_DIR:
                continue
            if entry.is_dir() and is_sharded_store(entry):
                deltas.append(entry)
            elif entry.is_file() and entry.suffix == ".store":
                deltas.append(entry)
        return deltas

    def poll_once(self) -> bool:
        """One spool scan; returns True when the served store changed."""
        pending = self.pending_deltas()
        self._observe_spool(pending)
        usable = self._usable_deltas(pending)
        if usable:
            # compact() re-checks the manifest's folded log *under the
            # compaction lock*, so a delta folded meanwhile by another
            # compactor (or by a cycle that crashed before archiving)
            # is skipped there, never folded twice
            stats = self._compactor.compact(usable)
            self._archive(usable)
            self._applied_deltas += len(usable)
            self._observe_spool(self.pending_deltas())
            if not stats.get("noop"):
                self._compactions += 1
                self._swap()
                self._note(stats=stats)
                return True
        served = getattr(self._service.backend, "generation", None)
        if served is not None and self._compactor.generation() != served:
            # an external `lash index compact` bumped the manifest
            self._swap()
            self._note()
            return True
        return False

    def _observe_spool(self, pending: Sequence[Path]) -> None:
        """Refresh the ingest-lag gauges from one spool listing: how many
        deltas wait unapplied, and how long the oldest has waited."""
        self._pending_count = len(pending)
        lag = 0.0
        now = time.time()
        for delta in pending:
            probe = delta / MANIFEST_NAME if delta.is_dir() else delta
            try:
                lag = max(lag, now - probe.stat().st_mtime)
            except OSError:
                continue
        self._lag_seconds = round(lag, 3)

    def _usable_deltas(self, deltas: Sequence[Path]) -> list[Path]:
        """Filter out deltas that cannot be opened, quarantining them by
        signature so one bad file (a crashed copy, bit rot) cannot fail
        every future batch and wedge the healthy deltas behind it."""
        from repro.serve.sharded import open_store

        usable: list[Path] = []
        pending_keys: set[tuple] = set()
        for delta in deltas:
            try:
                key = _signature_key(delta_signature(delta))
            except OSError as exc:
                self._note(error=f"{delta.name}: {exc}")
                continue
            pending_keys.add(key)
            if key in self._rejected:
                continue
            if delta.is_file():
                # an ingest delta names its exact payload in a sidecar;
                # a mismatch means the publish was torn or the file was
                # damaged after publish — either way, applying it could
                # silently skew every frequency it touches
                try:
                    meta = read_delta_meta(delta)
                except StoreCorruptError as exc:
                    self._rejected[key] = str(exc)
                    self._note(error=f"{delta.name}: {exc}")
                    continue
                if meta is not None and not verify_delta_meta(delta, meta):
                    message = "delta bytes do not match sidecar CRC"
                    self._rejected[key] = message
                    self._note(error=f"{delta.name}: {message}")
                    continue
            try:
                # cheap structural probe (plus CRC sweep when verifying);
                # compact() re-opens, but correctness of the batch beats
                # one redundant validation pass
                open_store(
                    delta,
                    pattern_cache_size=0,
                    postings_cache_size=0,
                    verify_checksums=self._verify,
                ).close()
            except (ReproError, OSError) as exc:
                self._rejected[key] = str(exc)
                self._note(error=f"{delta.name}: {exc}")
                continue
            usable.append(delta)
        # forget quarantined signatures whose files left the spool
        self._rejected = {
            key: error
            for key, error in self._rejected.items()
            if key in pending_keys
        }
        return usable

    def _archive(self, deltas: Sequence[Path]) -> None:
        applied = self._spool / APPLIED_DIR
        applied.mkdir(exist_ok=True)
        for delta in deltas:
            target = applied / delta.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = applied / f"{delta.name}.{suffix}"
            shutil.move(str(delta), str(target))
            sidecar = delta_meta_path(delta)
            if sidecar.is_file():
                shutil.move(
                    str(sidecar),
                    str(applied / (target.name + DELTA_META_SUFFIX)),
                )
        self._sweep_applied(applied)

    def _sweep_applied(self, applied: Path) -> None:
        """Bound the applied-delta archive: keep only the newest
        ``applied_retain`` deltas (sidecars ride along), oldest first
        out.  Without this the archive grows with corpus lifetime — one
        file per ingest batch, forever."""
        entries = []
        for entry in applied.iterdir():
            if entry.name.endswith(DELTA_META_SUFFIX):
                continue
            try:
                entries.append((entry.stat().st_mtime_ns, entry.name, entry))
            except OSError:
                continue
        if len(entries) <= self._applied_retain:
            return
        entries.sort()
        for _, _, entry in entries[: len(entries) - self._applied_retain]:
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink(missing_ok=True)
            sidecar = applied / (entry.name + DELTA_META_SUFFIX)
            sidecar.unlink(missing_ok=True)

    def _swap(self) -> None:
        from repro.serve.sharded import open_store

        backend = open_store(
            self._store_path, verify_checksums=self._verify
        )
        old = self._service.swap_backend(backend)
        now = time.monotonic()
        still_in_grace = []
        for retired_at, retired in self._retired:
            if now - retired_at >= RETIRE_GRACE_S:
                retired.close()
            else:
                still_in_grace.append((retired_at, retired))
        self._retired = still_in_grace + [(now, old)]

    def _note(self, stats: dict | None = None, error: str | None = None) -> None:
        self._last_error = error
        info = {
            "spool": str(self._spool),
            "compactions": self._compactions,
            "generation": getattr(
                self._service.backend, "generation", None
            ),
            "ingest": {
                "applied_deltas": self._applied_deltas,
                "pending_deltas": self._pending_count,
                "lag_seconds": self._lag_seconds,
                "ingested_through": getattr(
                    self._service.backend, "ingested_through", None
                ),
                "retained_from": getattr(
                    self._service.backend, "retained_from", None
                ),
            },
        }
        if stats is not None:
            info["last"] = {
                key: stats[key]
                for key in ("generation", "shards", "patterns", "deltas",
                            "seconds")
            }
        if error is not None:
            info["last_error"] = error
        if self._rejected:
            # quarantined deltas stay visible across later (successful)
            # notes: they are still sitting in the spool unapplied
            info["rejected"] = {
                key[0]: message
                for key, message in sorted(self._rejected.items())
            }
        self._service.note_compaction(info)


__all__ = [
    "StoreCompactor",
    "CompactionDaemon",
    "APPLIED_DIR",
    "APPLIED_RETAIN_DEFAULT",
    "FOLDED_LOG_LIMIT",
    "delta_signature",
]
