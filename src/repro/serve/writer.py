"""Building pattern stores: streaming writers, shard routers, and merges.

The write side of the store format (layout in :mod:`repro.serve.format`),
refactored around **rank-ordered record streams**: every writer consumes
``(coded_pattern, frequency)`` records one at a time, so the peak memory
of a build is bounded by its spill buffers, never by the pattern count.

* :class:`PatternWriter` — streams one store file.  Variable-length
  sections (lengths, offsets, records) spill to anonymous temp files as
  they grow; postings are accumulated as ``(item, index)`` pairs,
  spilled as sorted runs, and k-way merged on close; the final file is
  assembled section by section and swapped in atomically.
* :class:`ShardedPatternWriter` — routes one rank-ordered stream across
  shard files by stable hash of the first item, then drops a manifest
  and swaps the whole directory in.
* :func:`merge_stores` — the incremental-build path: vocabularies are
  unioned into a merged vocabulary, per-source streams are id-remapped
  and externally re-sorted (duplicate patterns summing their
  frequencies), and the resulting rank-ordered stream feeds the same
  writers.  Output is byte-identical to a full in-memory rebuild while
  peak memory stays bounded by the sort buffer.

All writers are atomic (write-then-rename): rebuilding a store a live
server has mmapped never truncates the mapped inode or exposes a half
file.
"""

from __future__ import annotations

import heapq
import os
import re
import shutil
import tempfile
import zlib
from pathlib import Path
from typing import IO, Iterable, Iterator, Mapping, Sequence

from repro.errors import EncodingError
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.base import Pattern, rank_key, rank_patterns
from repro.io.codec import (
    write_positions,
    write_sequence,
    write_uvarint,
    zigzag_encode,
)
from repro.serve.format import (
    CHECKSUMS_STRUCT,
    FLAG_CHECKSUMS,
    FLAG_DELTA,
    HEADER_SIZE,
    HEADER_STRUCT,
    MAGIC,
    MANIFEST_NAME,
    SECTIONS_STRUCT,
    SHARD_FILE_RE,
    SUPPORTED_VERSIONS,
    U64,
    VERSION,
    VERSION_POSITIONAL,
    shard_filename,
    shard_of,
    write_manifest,
)
from repro.serve.stream import (
    DEFAULT_SORT_BUFFER,
    RUN_BUFFERING,
    read_file_uvarint,
    sorted_records,
    sum_equal_patterns,
)

#: names a shard build may leave behind (shard files of any generation,
#: manifest, the compaction lock, their tmps)
_SHARD_ENTRY_RE = re.compile(
    "(" + SHARD_FILE_RE.pattern + "|"
    + re.escape(MANIFEST_NAME)
    + r"|\.compact\.lock)(\.tmp)?"
)

#: in-memory bytes per streamed section before it spills to a temp file
DEFAULT_SECTION_BUFFER = 1 << 16
#: in-memory ``(item, pattern index)`` posting pairs before a sorted run
#: is spilled
DEFAULT_POSTINGS_BUFFER = 1 << 15


def _remove_shard_dir(directory: Path) -> None:
    """Delete a directory holding (only) a shard build.

    Every entry must look like a shard file or manifest; anything else
    aborts before a single unlink, so a mistyped ``--out`` pointing at a
    real data directory can never be destroyed by a rebuild."""
    for entry in directory.iterdir():
        if not _SHARD_ENTRY_RE.fullmatch(entry.name):
            raise EncodingError(
                f"{directory}: refusing to overwrite — contains "
                f"{entry.name!r}, which is not part of a sharded store"
            )
    shutil.rmtree(directory)


def _encode_vocabulary(vocabulary: Vocabulary, delta: bool = False) -> bytes:
    """The vocabulary section: per item name, frequency, parent ids.

    Under ``delta`` the frequencies are zigzag-coded: a retire delta
    carries *negative* item frequencies so merging vocabularies of base
    + deltas reproduces the retained corpus's f-list exactly."""
    vocab = bytearray()
    for item_id in range(len(vocabulary)):
        name = vocabulary.name(item_id).encode("utf-8")
        write_uvarint(vocab, len(name))
        vocab.extend(name)
        frequency = vocabulary.frequency(item_id)
        write_uvarint(vocab, zigzag_encode(frequency) if delta else frequency)
        parents = vocabulary.parent_ids(item_id)
        write_uvarint(vocab, len(parents))
        for parent in parents:
            write_uvarint(vocab, parent)
    return bytes(vocab)


class _SectionSpill:
    """One store section accumulated in bounded memory.

    Bytes append to an in-memory buffer; past ``buffer_bytes`` the
    buffer flushes to an anonymous temp file.  Size and CRC-32 are
    tracked incrementally, so finalizing never re-reads the spill."""

    def __init__(self, spill_dir: Path, buffer_bytes: int) -> None:
        self._dir = spill_dir
        self._limit = max(1, buffer_bytes)
        self._buf = bytearray()
        self._file: IO[bytes] | None = None
        self._flushed = 0
        self._crc = 0

    def append(self, data) -> None:
        self._buf.extend(data)
        if len(self._buf) >= self._limit:
            if self._file is None:
                self._file = tempfile.TemporaryFile(
                    prefix="repro-section-", dir=str(self._dir)
                )
            self._crc = zlib.crc32(self._buf, self._crc)
            self._flushed += len(self._buf)
            self._file.write(self._buf)
            self._buf = bytearray()

    @property
    def size(self) -> int:
        return self._flushed + len(self._buf)

    def checksum(self) -> int:
        return zlib.crc32(self._buf, self._crc) & 0xFFFFFFFF

    def copy_into(self, out: IO[bytes]) -> None:
        if self._file is not None:
            self._file.seek(0)
            shutil.copyfileobj(self._file, out)
        out.write(self._buf)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class PatternWriter:
    """Stream a rank-ordered pattern record sequence into one store file.

    The streaming counterpart of the old materialize-then-serialize
    writer, producing byte-identical files: call :meth:`write` with
    ``(coded_pattern, frequency)`` records in the canonical rank order
    (:func:`~repro.query.base.rank_key` strictly ascending — exactly
    what :func:`~repro.query.base.rank_patterns` or a store's ranked
    iterator emits), then :meth:`close`.  Out-of-order or duplicate
    records are rejected, because a store written out of rank order
    would silently break the answer-equivalence invariant.

    Memory stays bounded regardless of how many records pass through:
    growing sections spill to anonymous temp files next to the target
    (``spill_dir`` overrides), postings pairs spill as sorted runs that
    are heap-merged during :meth:`close`, and only O(vocabulary) state
    is ever resident.  ``close`` assembles the final file and swaps it
    in with ``os.replace``; :meth:`abort` (or an exception inside the
    ``with`` block) discards everything.
    """

    def __init__(
        self,
        path: str | Path,
        vocabulary: Vocabulary,
        checksums: bool = True,
        spill_dir: str | Path | None = None,
        buffer_bytes: int = DEFAULT_SECTION_BUFFER,
        postings_buffer: int = DEFAULT_POSTINGS_BUFFER,
        store_version: int = VERSION,
        delta: bool = False,
    ) -> None:
        """``store_version`` pins the emitted format version.  The
        default is always the current :data:`~repro.serve.format.VERSION`;
        passing 1 writes a legacy index-only postings section — kept so
        the back-compat tests can fabricate old-format stores without
        archiving binary fixtures.

        ``delta=True`` writes a signed delta store (header
        :data:`~repro.serve.format.FLAG_DELTA`): every frequency is
        zigzag-coded and records may carry negative frequencies
        (decrements); zero-frequency records are rejected so a delta
        has exactly one canonical byte form."""
        if store_version not in SUPPORTED_VERSIONS:
            raise EncodingError(
                f"unsupported store version {store_version!r} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        if delta and store_version < VERSION_POSITIONAL:
            raise EncodingError(
                "delta stores require the current store version"
            )
        self._path = Path(path)
        self._vocabulary = vocabulary
        self._checksums = checksums
        self._delta = delta
        self._store_version = store_version
        self._positional = store_version >= VERSION_POSITIONAL
        spill = Path(spill_dir) if spill_dir is not None else self._path.parent
        self._spill_dir = spill
        self._buffer_bytes = buffer_bytes
        self._n_items = len(vocabulary)
        self._vocab_bytes = _encode_vocabulary(vocabulary, delta=delta)
        self._lengths = _SectionSpill(spill, buffer_bytes)
        self._offsets = _SectionSpill(spill, buffer_bytes)
        self._offsets.append(U64.pack(0))
        self._records = _SectionSpill(spill, buffer_bytes)
        self._cursor = 0
        self._pairs: list[tuple[int, int, tuple[int, ...]]] = []
        self._pair_runs: list[IO[bytes]] = []
        self._postings_buffer = max(1, postings_buffer)
        self._count = 0
        self._total_frequency = 0
        self._max_length = 0
        self._last_key: tuple[int, Pattern] | None = None
        self._done = False

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def count(self) -> int:
        """Records written so far."""
        return self._count

    @property
    def total_frequency(self) -> int:
        return self._total_frequency

    def write(self, pattern: Pattern, frequency: int) -> None:
        if self._done:
            raise EncodingError(f"{self._path}: writer already closed")
        pattern = tuple(pattern)
        if not pattern:
            raise EncodingError("empty pattern cannot be stored")
        if min(pattern) < 0 or max(pattern) >= self._n_items:
            raise EncodingError(
                f"pattern {pattern!r} has items outside the vocabulary "
                f"(size {self._n_items})"
            )
        if self._delta:
            if frequency == 0:
                raise EncodingError(
                    f"{self._path}: zero-frequency record {pattern!r} has "
                    "no effect; delta stores must be in canonical form"
                )
        elif frequency < 0:
            # frequency 0 is a legal plain record (membership means
            # "stored", not "frequency > 0"); decrements are delta-only
            raise EncodingError(
                f"{self._path}: frequency {frequency} for {pattern!r}; "
                "only delta stores may carry negative frequencies"
            )
        key = rank_key((pattern, frequency))
        if self._last_key is not None and key <= self._last_key:
            raise EncodingError(
                f"{self._path}: pattern stream is not in rank order "
                f"(most frequent first, ties by coded pattern) at "
                f"record {self._count}"
            )
        self._last_key = key

        length = bytearray()
        write_uvarint(length, len(pattern))
        self._lengths.append(length)

        record = bytearray()
        write_uvarint(
            record, zigzag_encode(frequency) if self._delta else frequency
        )
        write_sequence(record, pattern)
        self._records.append(record)
        self._cursor += len(record)
        self._offsets.append(U64.pack(self._cursor))

        positions_by_item: dict[int, list[int]] = {}
        for position, item in enumerate(pattern):
            positions_by_item.setdefault(item, []).append(position)
        for item, positions in positions_by_item.items():
            self._pairs.append((item, self._count, tuple(positions)))
        if len(self._pairs) >= self._postings_buffer:
            self._spill_pairs()

        self._count += 1
        self._total_frequency += frequency
        self._max_length = max(self._max_length, len(pattern))

    def _spill_pairs(self) -> None:
        self._pairs.sort()
        run = tempfile.TemporaryFile(
            prefix="repro-postings-",
            dir=str(self._spill_dir),
            buffering=RUN_BUFFERING,
        )
        try:
            buf = bytearray()
            for item, idx, positions in self._pairs:
                write_uvarint(buf, item)
                write_uvarint(buf, idx)
                write_positions(buf, positions)
                if len(buf) >= self._buffer_bytes:
                    run.write(buf)
                    buf = bytearray()
            run.write(buf)
        except BaseException:
            run.close()
            raise
        self._pair_runs.append(run)
        self._pairs = []

    @staticmethod
    def _iter_pair_run(
        run: IO[bytes],
    ) -> Iterator[tuple[int, int, tuple[int, ...]]]:
        run.seek(0)
        while True:
            item = read_file_uvarint(run)
            if item is None:
                return
            idx = read_file_uvarint(run)
            n_positions = read_file_uvarint(run)
            if idx is None or n_positions is None:
                raise EncodingError("truncated postings spill run")
            positions: list[int] = []
            previous = 0
            for i in range(n_positions):
                raw = read_file_uvarint(run)
                if raw is None:
                    raise EncodingError("truncated postings spill run")
                previous = raw if i == 0 else previous + raw
                positions.append(previous)
            yield item, idx, tuple(positions)

    def _merged_pairs(self) -> Iterator[tuple[int, int, tuple[int, ...]]]:
        """All ``(item, pattern index, positions)`` triples, sorted.
        Triples are unique per (item, pattern) — one carries every
        position of the item inside the pattern — so the per-item index
        lists come out strictly ascending, as the gap coding demands."""
        self._pairs.sort()
        streams: list[Iterator[tuple[int, int, tuple[int, ...]]]] = [
            self._iter_pair_run(run) for run in self._pair_runs
        ]
        if self._pairs or not streams:
            streams.append(iter(self._pairs))
        if len(streams) == 1:
            return streams[0]
        return heapq.merge(*streams)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Assemble the sections and atomically publish the store file."""
        if self._done:
            return
        self._done = True
        tmp = self._path.with_name(self._path.name + ".tmp")
        postings = _SectionSpill(self._spill_dir, self._buffer_bytes)
        post_offsets = _SectionSpill(self._spill_dir, self._buffer_bytes)
        try:
            post_offsets.append(U64.pack(0))
            cursor = 0
            pairs = self._merged_pairs()
            pending = next(pairs, None)
            for item_id in range(self._n_items):
                # flush into the spill in bounded chunks: a single
                # stopword-grade item may own postings for most of the
                # store, and one bytearray per item would grow with it
                buf = bytearray()
                previous = 0
                first = True
                while pending is not None and pending[0] == item_id:
                    idx = pending[1]
                    if first:
                        write_uvarint(buf, idx)
                        first = False
                    else:
                        write_uvarint(buf, idx - previous)
                    previous = idx
                    if self._positional:
                        write_positions(buf, pending[2])
                    if len(buf) >= self._buffer_bytes:
                        postings.append(buf)
                        cursor += len(buf)
                        buf = bytearray()
                    pending = next(pairs, None)
                postings.append(buf)
                cursor += len(buf)
                post_offsets.append(U64.pack(cursor))

            spills = (
                self._lengths,
                self._offsets,
                self._records,
                post_offsets,
                postings,
            )
            sizes = (len(self._vocab_bytes),) + tuple(s.size for s in spills)
            sections: list[int] = []
            offset = HEADER_SIZE
            for size in sizes:
                sections.append(offset)
                offset += size
            sections.append(offset)  # end of the data sections

            flags = FLAG_CHECKSUMS if self._checksums else 0
            if self._delta:
                flags |= FLAG_DELTA
            header = HEADER_STRUCT.pack(
                self._store_version,
                flags,
                self._n_items,
                self._count,
                zigzag_encode(self._total_frequency)
                if self._delta
                else self._total_frequency,
                self._max_length,
            )
            try:
                with open(tmp, "wb") as f:
                    f.write(MAGIC)
                    f.write(header)
                    f.write(SECTIONS_STRUCT.pack(*sections))
                    f.write(self._vocab_bytes)
                    for spill in spills:
                        spill.copy_into(f)
                    if self._checksums:
                        f.write(
                            CHECKSUMS_STRUCT.pack(
                                zlib.crc32(self._vocab_bytes) & 0xFFFFFFFF,
                                *(spill.checksum() for spill in spills),
                            )
                        )
                os.replace(tmp, self._path)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
        finally:
            postings.close()
            post_offsets.close()
            self._release()

    def abort(self) -> None:
        """Discard all buffered/spilled state without touching ``path``."""
        if self._done:
            return
        self._done = True
        self._release()

    def _release(self) -> None:
        for spill in (self._lengths, self._offsets, self._records):
            spill.close()
        for run in self._pair_runs:
            run.close()
        self._pair_runs = []
        self._pairs = []

    def __enter__(self) -> "PatternWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class _ShardStreamWriter:
    """Route one rank-ordered stream into shard files of a directory.

    The core router shared by :class:`ShardedPatternWriter` (fresh
    builds, which add a build-tmp directory swap around it) and the
    compactor (which writes generation-tagged files straight into a
    live store directory).  Each shard file is written by its own
    :class:`PatternWriter`; a globally rank-ordered input stream yields
    rank-ordered per-shard subsequences, so every shard stays a valid
    standalone store.
    """

    def __init__(
        self,
        directory: Path,
        files: Sequence[str],
        vocabulary: Vocabulary,
        checksums: bool = True,
        postings_buffer: int = DEFAULT_POSTINGS_BUFFER,
        store_version: int = VERSION,
        delta: bool = False,
    ) -> None:
        self._vocabulary = vocabulary
        self._num = len(files)
        self.count = 0
        self.total_frequency = 0
        self._writers: list[PatternWriter] = []
        try:
            for name in files:
                self._writers.append(
                    PatternWriter(
                        directory / name,
                        vocabulary,
                        checksums=checksums,
                        spill_dir=directory,
                        postings_buffer=postings_buffer,
                        store_version=store_version,
                        delta=delta,
                    )
                )
        except BaseException:
            self.abort()
            raise

    def write(self, pattern: Pattern, frequency: int) -> None:
        if not pattern:
            raise EncodingError("empty pattern cannot be stored")
        index = shard_of(self._vocabulary.name(pattern[0]), self._num)
        self._writers[index].write(pattern, frequency)
        self.count += 1
        self.total_frequency += frequency

    def close(self) -> None:
        for writer in self._writers:
            writer.close()

    def abort(self) -> None:
        for writer in self._writers:
            writer.abort()


class ShardedPatternWriter:
    """Stream a rank-ordered record sequence into a fresh shard set.

    Shard files and manifest are built in a sibling ``.build-tmp``
    directory and swapped in whole on :meth:`close`, so rebuilding over
    an existing shard set (even with a different shard count) can never
    expose a manifest describing a mix of old and new shard files: a
    crash leaves either the previous set or no readable set, never a
    hybrid.  A destination containing anything that is not a sharded
    store is refused, not deleted.
    """

    def __init__(
        self,
        path: str | Path,
        vocabulary: Vocabulary,
        shards: int,
        checksums: bool = True,
        postings_buffer: int = DEFAULT_POSTINGS_BUFFER,
        store_version: int = VERSION,
        delta: bool = False,
    ) -> None:
        if shards < 1:
            raise EncodingError(f"shard count must be >= 1, got {shards}")
        directory = Path(path)
        if directory.exists() and not directory.is_dir():
            raise EncodingError(
                f"{directory}: exists and is not a directory; omit shards "
                "to overwrite a single-file store"
            )
        self._directory = directory
        self._vocabulary = vocabulary
        tmp = directory.with_name(directory.name + ".build-tmp")
        if tmp.exists():
            _remove_shard_dir(tmp)  # leftover of a crashed build
        tmp.mkdir(parents=True)
        self._tmp = tmp
        self._files = [shard_filename(i, shards) for i in range(shards)]
        self._done = False
        self._delta = delta
        try:
            self._router = _ShardStreamWriter(
                tmp,
                self._files,
                vocabulary,
                checksums=checksums,
                postings_buffer=postings_buffer,
                store_version=store_version,
                delta=delta,
            )
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    @property
    def path(self) -> Path:
        return self._directory

    @property
    def count(self) -> int:
        return self._router.count

    @property
    def total_frequency(self) -> int:
        return self._router.total_frequency

    def write(self, pattern: Pattern, frequency: int) -> None:
        if self._done:
            raise EncodingError(f"{self._directory}: writer already closed")
        self._router.write(pattern, frequency)

    def close(self) -> None:
        if self._done:
            return
        self._done = True
        try:
            self._router.close()
            meta = {
                "items": len(self._vocabulary),
                "patterns": self._router.count,
                "total_frequency": self._router.total_frequency,
                "generation": 0,
            }
            if self._delta:
                meta["delta"] = True
            write_manifest(self._tmp, self._files, meta)
            if self._directory.exists():
                _remove_shard_dir(self._directory)  # validates contents first
            os.replace(self._tmp, self._directory)
        except BaseException:
            shutil.rmtree(self._tmp, ignore_errors=True)
            raise

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        self._router.abort()
        shutil.rmtree(self._tmp, ignore_errors=True)

    def __enter__(self) -> "ShardedPatternWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# ----------------------------------------------------------------------
# mapping front-ends (the pre-streaming API, now thin wrappers)
# ----------------------------------------------------------------------

def write_store(
    path: str | Path,
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    checksums: bool = True,
    store_version: int = VERSION,
    delta: bool = False,
) -> None:
    """Serialize coded patterns + vocabulary into a store file.

    ``checksums=True`` (the default) appends a CRC-32 per section and
    sets :data:`~repro.serve.format.FLAG_CHECKSUMS`, letting readers
    detect bit-rot on open.  Empty patterns are rejected: no miner
    produces them, and the postings-based exact lookup could not find
    them, so storing one would break the store/index answer-equivalence
    invariant.
    """
    with PatternWriter(
        path, vocabulary, checksums=checksums, store_version=store_version,
        delta=delta,
    ) as writer:
        for pattern, frequency in rank_patterns(patterns):
            writer.write(pattern, frequency)


def write_sharded_store(
    path: str | Path,
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    shards: int,
    checksums: bool = True,
    store_version: int = VERSION,
) -> Path:
    """Write a sharded store: a directory of shard files plus a manifest.

    Patterns are routed by :func:`~repro.serve.format.shard_of` over the
    *name* of their first item; each shard file carries the full shared
    vocabulary, so any shard also opens as a standalone
    :class:`~repro.serve.store.PatternStore`.
    """
    with ShardedPatternWriter(
        path, vocabulary, shards, checksums=checksums,
        store_version=store_version,
    ) as writer:
        for pattern, frequency in rank_patterns(patterns):
            writer.write(pattern, frequency)
    return writer.path


# ----------------------------------------------------------------------
# streaming merge
# ----------------------------------------------------------------------

def merged_vocabulary(stores: Sequence, signed: bool = False) -> Vocabulary:
    """The union vocabulary of already-open stores (hierarchies unioned,
    item frequencies summed, the LASH total order recomputed —
    ``signed=True`` switches to the frequency-free depth order for
    delta-to-delta merges whose sums may go negative)."""
    from repro.query.build import merge_vocabularies

    return merge_vocabularies(
        [store.vocabulary for store in stores], signed=signed
    )


def iter_merged_records(
    stores: Sequence,
    vocabulary: Vocabulary,
    sort_buffer: int = DEFAULT_SORT_BUFFER,
    spill_dir: str | Path | None = None,
) -> Iterator[tuple[Pattern, int]]:
    """Rank-ordered union stream of already-open stores.

    Per-source ranked streams are decoded lazily, remapped onto
    ``vocabulary`` (from :func:`merged_vocabulary`) through per-source
    id tables, externally sorted by pattern so duplicates across
    sources become adjacent and sum their frequencies, then externally
    re-sorted into the canonical rank order.  Peak memory is bounded by
    ``sort_buffer`` records plus O(vocabulary) for the remap tables —
    independent of how many patterns flow through.
    """
    remaps = [
        [
            vocabulary.id(store.vocabulary.name(item_id))
            for item_id in range(len(store.vocabulary))
        ]
        for store in stores
    ]

    def remapped() -> Iterator[tuple[Pattern, int]]:
        for store, remap in zip(stores, remaps):
            for pattern, frequency in store._iter_ranked():
                yield tuple(remap[item] for item in pattern), frequency

    by_pattern = sorted_records(
        remapped(), key=lambda record: record[0], buffer_records=sort_buffer,
        spill_dir=spill_dir,
    )
    return sorted_records(
        sum_equal_patterns(by_pattern), key=rank_key,
        buffer_records=sort_buffer, spill_dir=spill_dir,
    )


def merge_stores(
    sources: Sequence[str | Path],
    out: str | Path,
    shards: int | None = None,
    checksums: bool = True,
    sort_buffer: int = DEFAULT_SORT_BUFFER,
    min_frequency: int = 1,
    as_delta: bool = False,
) -> None:
    """Merge existing stores (files or shard directories) into one store.

    The incremental-build path: vocabularies are unioned (item
    frequencies summed, the total order recomputed, pattern ids
    remapped), postings are rebuilt over the union, and frequencies of
    patterns present in several sources are summed.  Over mining runs of
    disjoint corpora this reproduces, byte for byte, the store a full
    rebuild over the combined runs would produce — except patterns whose
    support crosses the σ threshold only on the combined corpus, which
    no merge of already-thresholded results can recover.

    Sources may include signed *delta* stores (ingest increments and
    retire decrements): frequencies sum algebraically, and the merged
    record stream is thresholded at ``min_frequency`` — a pattern whose
    summed support falls below it (e.g. fully retired, net 0) vanishes
    from the output exactly as it would from a re-mine of the retained
    corpus.  The default of 1 keeps positive-store merges byte-identical
    to their historical output while erasing cancelled patterns.

    ``as_delta=True`` writes the *output* as a signed delta store
    instead: no thresholding except dropping exact-zero records (the
    canonical form), so folding deltas into one delta is associative —
    any grouping or arrival order of the same deltas produces the same
    bytes.

    Unlike the original implementation this never materializes a source:
    records stream straight from the source mmaps through two external
    sorts into the streaming writers, so ``sort_buffer`` (records per
    in-memory run, also applied to the writers' postings buffers) bounds
    peak memory regardless of store sizes.

    ``shards=None`` writes a single file; ``shards=N`` a shard set —
    including re-routing an existing shard set to a new shard count
    (``lash index merge old.shards --out new.shards --shards M``).
    """
    from repro.serve.sharded import open_store

    if not sources:
        raise EncodingError("merge needs at least one source store")
    out = Path(out)
    if shards is None and out.is_dir():
        # a directory here is almost certainly a previous sharded
        # build; replacing it with a file silently would orphan it
        raise EncodingError(
            f"{out}: is a directory; pass shards=N to overwrite a "
            "sharded store"
        )
    opened = []
    try:
        for source in sources:
            # a linear merge scan gains nothing from decode caches; size
            # 0 keeps peak memory independent of the source store sizes
            opened.append(
                open_store(
                    source, pattern_cache_size=0, postings_cache_size=0
                )
            )
        vocabulary = merged_vocabulary(opened, signed=as_delta)
        records = iter_merged_records(
            opened, vocabulary, sort_buffer=sort_buffer,
            spill_dir=out.parent,
        )
        # the sources stream lazily, so `out` may be one of them: the
        # writers build in tmp files/directories and swap in atomically,
        # and an already-mmapped source inode survives the replace
        if shards is None:
            writer: PatternWriter | ShardedPatternWriter = PatternWriter(
                out, vocabulary, checksums=checksums,
                postings_buffer=sort_buffer, delta=as_delta,
            )
        else:
            writer = ShardedPatternWriter(
                out, vocabulary, shards, checksums=checksums,
                postings_buffer=sort_buffer, delta=as_delta,
            )
        with writer:
            for pattern, frequency in records:
                if as_delta:
                    if frequency == 0:
                        continue
                elif frequency < min_frequency:
                    continue
                writer.write(pattern, frequency)
    finally:
        for store in opened:
            store.close()


__all__ = [
    "PatternWriter",
    "ShardedPatternWriter",
    "write_store",
    "write_sharded_store",
    "merged_vocabulary",
    "iter_merged_records",
    "merge_stores",
]
