"""Building pattern stores: single files, shard sets, and merges.

The write side of the store format (layout in :mod:`repro.serve.format`).
:func:`write_store` serializes one ranked pattern set + vocabulary into
one file; :func:`write_sharded_store` routes patterns across shard files
by stable hash of the first item and drops a manifest next to them;
:func:`merge_stores` combines existing stores (single or sharded) with
each other — remapping item ids onto a merged vocabulary and summing
frequencies — so a new mining run is folded into a serving index without
re-mining the old corpora.

All writers are atomic (write-then-rename): rebuilding a store a live
server has mmapped never truncates the mapped inode or exposes a half
file.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import EncodingError
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.base import Pattern, rank_patterns
from repro.io.codec import (
    section_checksum,
    write_deltas,
    write_sequence,
    write_uvarint,
)
from repro.serve.format import (
    CHECKSUMS_STRUCT,
    FLAG_CHECKSUMS,
    HEADER_SIZE,
    HEADER_STRUCT,
    MAGIC,
    MANIFEST_NAME,
    SECTIONS_STRUCT,
    U64,
    VERSION,
    shard_filename,
    shard_of,
    write_manifest,
)

#: names a shard build may leave behind (shard files, manifest, their tmps)
_SHARD_ENTRY_RE = re.compile(
    r"(shard-\d{5}-of-\d{5}\.store|" + re.escape(MANIFEST_NAME) + r")(\.tmp)?"
)


def _pack_offsets(offsets: Sequence[int]) -> bytes:
    return b"".join(U64.pack(offset) for offset in offsets)


def _remove_shard_dir(directory: Path) -> None:
    """Delete a directory holding (only) a shard build.

    Every entry must look like a shard file or manifest; anything else
    aborts before a single unlink, so a mistyped ``--out`` pointing at a
    real data directory can never be destroyed by a rebuild."""
    for entry in directory.iterdir():
        if not _SHARD_ENTRY_RE.fullmatch(entry.name):
            raise EncodingError(
                f"{directory}: refusing to overwrite — contains "
                f"{entry.name!r}, which is not part of a sharded store"
            )
    shutil.rmtree(directory)


def write_store(
    path: str | Path,
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    checksums: bool = True,
) -> None:
    """Serialize coded patterns + vocabulary into a store file.

    ``checksums=True`` (the default) appends a CRC-32 per section and
    sets :data:`~repro.serve.format.FLAG_CHECKSUMS`, letting readers
    detect bit-rot on open.  Empty patterns are rejected: no miner
    produces them, and the postings-based exact lookup could not find
    them, so storing one would break the store/index answer-equivalence
    invariant.
    """
    ordered = rank_patterns(patterns)
    if any(not pattern for pattern, _ in ordered):
        raise EncodingError("empty pattern cannot be stored")
    n_items = len(vocabulary)

    vocab = bytearray()
    for item_id in range(n_items):
        name = vocabulary.name(item_id).encode("utf-8")
        write_uvarint(vocab, len(name))
        vocab.extend(name)
        write_uvarint(vocab, vocabulary.frequency(item_id))
        parents = vocabulary.parent_ids(item_id)
        write_uvarint(vocab, len(parents))
        for parent in parents:
            write_uvarint(vocab, parent)

    lengths = bytearray()
    for pattern, _ in ordered:
        write_uvarint(lengths, len(pattern))

    records = bytearray()
    pattern_offsets = [0]
    postings: dict[int, list[int]] = {}
    for idx, (pattern, freq) in enumerate(ordered):
        write_uvarint(records, freq)
        write_sequence(records, pattern)
        pattern_offsets.append(len(records))
        for item in set(pattern):
            postings.setdefault(item, []).append(idx)

    posting_bytes = bytearray()
    posting_offsets = [0]
    for item_id in range(n_items):
        write_deltas(posting_bytes, postings.get(item_id, ()))
        posting_offsets.append(len(posting_bytes))

    section_bytes = (
        bytes(vocab),
        bytes(lengths),
        _pack_offsets(pattern_offsets),
        bytes(records),
        _pack_offsets(posting_offsets),
        bytes(posting_bytes),
    )
    sections: list[int] = []
    cursor = HEADER_SIZE
    for blob in section_bytes:
        sections.append(cursor)
        cursor += len(blob)
    sections.append(cursor)  # end of the data sections

    header = HEADER_STRUCT.pack(
        VERSION,
        FLAG_CHECKSUMS if checksums else 0,
        n_items,
        len(ordered),
        sum(freq for _, freq in ordered),
        max((len(p) for p, _ in ordered), default=0),
    )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            f.write(MAGIC)
            f.write(header)
            f.write(SECTIONS_STRUCT.pack(*sections))
            for blob in section_bytes:
                f.write(blob)
            if checksums:
                f.write(
                    CHECKSUMS_STRUCT.pack(
                        *(section_checksum(blob) for blob in section_bytes)
                    )
                )
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def write_sharded_store(
    path: str | Path,
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    shards: int,
    checksums: bool = True,
) -> Path:
    """Write a sharded store: a directory of shard files plus a manifest.

    Patterns are routed by :func:`~repro.serve.format.shard_of` over the
    *name* of their first item; each shard file carries the full shared
    vocabulary, so any shard also opens as a standalone
    :class:`~repro.serve.store.PatternStore`.

    The set is built in a sibling ``.build-tmp`` directory and swapped
    in whole, so rebuilding over an existing shard set (even with a
    different shard count) can never expose a manifest describing a mix
    of old and new shard files: a crash leaves either the previous set
    or no readable set, never a hybrid.  A destination containing
    anything that is not a sharded store is refused, not deleted.
    """
    if shards < 1:
        raise EncodingError(f"shard count must be >= 1, got {shards}")
    if any(not pattern for pattern in patterns):
        raise EncodingError("empty pattern cannot be stored")
    directory = Path(path)
    if directory.exists() and not directory.is_dir():
        raise EncodingError(
            f"{directory}: exists and is not a directory; omit shards to "
            "overwrite a single-file store"
        )

    buckets: list[dict[Pattern, int]] = [{} for _ in range(shards)]
    for pattern, freq in patterns.items():
        index = shard_of(vocabulary.name(pattern[0]), shards)
        buckets[index][pattern] = freq

    tmp = directory.with_name(directory.name + ".build-tmp")
    if tmp.exists():
        _remove_shard_dir(tmp)  # leftover of a crashed build
    tmp.mkdir(parents=True)
    try:
        files = [shard_filename(i, shards) for i in range(shards)]
        for name, bucket in zip(files, buckets):
            write_store(tmp / name, bucket, vocabulary, checksums=checksums)
        write_manifest(
            tmp,
            files,
            {
                "items": len(vocabulary),
                "patterns": len(patterns),
                "total_frequency": sum(patterns.values()),
            },
        )
        if directory.exists():
            _remove_shard_dir(directory)  # validates contents first
        os.replace(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def merge_stores(
    sources: Sequence[str | Path],
    out: str | Path,
    shards: int | None = None,
    checksums: bool = True,
) -> None:
    """Merge existing stores (files or shard directories) into one store.

    The incremental-build path: vocabularies are unioned (item
    frequencies summed, the total order recomputed, pattern ids
    remapped), postings are rebuilt over the union, and frequencies of
    patterns present in several sources are summed.  Over mining runs of
    disjoint corpora this reproduces, byte for byte, the store a full
    rebuild over the combined runs would produce — except patterns whose
    support crosses the σ threshold only on the combined corpus, which
    no merge of already-thresholded results can recover.

    ``shards=None`` writes a single file; ``shards=N`` a shard set.
    """
    from repro.query.build import merge_pattern_sets
    from repro.serve.sharded import open_store

    if not sources:
        raise EncodingError("merge needs at least one source store")
    collected: list[tuple[dict[tuple[str, ...], int], Vocabulary]] = []
    for source in sources:
        with open_store(source) as store:
            decoded = {
                match.pattern: match.frequency for match in store
            }
            collected.append((decoded, store.vocabulary))
    coded, vocabulary = merge_pattern_sets(collected)

    out = Path(out)
    if shards is None:
        if out.is_dir():
            # a directory here is almost certainly a previous sharded
            # build; replacing it with a file silently would orphan it
            raise EncodingError(
                f"{out}: is a directory; pass shards=N to overwrite a "
                "sharded store"
            )
        write_store(out, coded, vocabulary, checksums=checksums)
    else:
        # the sources were fully decoded above, so `out` may be one of
        # them; write_sharded_store swaps the new set in atomically and
        # refuses to delete anything that is not a sharded store
        write_sharded_store(out, coded, vocabulary, shards, checksums=checksums)


__all__ = ["write_store", "write_sharded_store", "merge_stores"]
