"""Query router: fan-out over shard servers, merge, failover.

The router is the distributed tier's front end.  It owns the **cluster
map** — which shard lives on which servers — fans each query out to one
server per shard group, and k-way heap-merges the rank-ordered partial
answers with the same ``(-frequency, coded_pattern)`` key every backend
uses, so the merged answer is byte-identical to a single-process
:class:`~repro.serve.sharded.ShardedPatternStore` over the same
manifest.

:class:`RouterBackend` implements the backend surface
:class:`~repro.serve.service.QueryService` consumes (``search``,
``top``, ``__len__``, ``describe``, ``close``), which means the whole
existing HTTP layer — endpoints, error mapping, metrics — serves a
cluster unchanged.

Placement and failover:

* :func:`plan_placement` assigns each shard ``replication`` servers via
  a consistent-hash ring (virtual nodes over the repo's FNV
  :func:`~repro.mapreduce.engine.stable_hash`), so adding a server
  moves few shards; explicit per-server shard lists in the cluster
  config override it.
* Each fan-out has one **deadline budget**: every socket operation gets
  the time remaining, not a fresh timeout, so retries cannot stretch a
  request beyond the budget.
* A shard whose chosen server fails is retried **once** on its next
  untried replica; servers that fail are marked unhealthy and excluded
  from later plans until a health check (``/healthz`` of the shard
  server's HTTP sidecar, or a socket ping) revives them.
* If a shard's replica set is exhausted the query **degrades**: the
  answer covers the reachable shards and the response is flagged
  partial (:meth:`RouterBackend.take_partial`) instead of failing —
  and partial answers are never cached upstream.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import json
import socket
import threading
import time
import urllib.request
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.costmodel import (
    COST_FULL_DEADLINE,
    MIN_DEADLINE_FRACTION,
)
from repro.errors import (
    InvalidParameterError,
    ReproError,
    StoreCorruptError,
)
from repro.mapreduce.engine import stable_hash
from repro.query.base import QueryMatch
from repro.query.cost import CostEstimate
from repro.query.tokens import normalize_query
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_error,
    encode_tokens,
    recv_message,
    send_message,
)
from repro.serve.service import LatencyHistogram

#: virtual nodes per server on the placement ring — enough to spread
#: shards evenly across a handful of servers
_VNODES = 64

#: floor for any single socket operation's timeout: once the deadline
#: budget is nearly spent, fail fast instead of waiting 0 seconds
_MIN_TIMEOUT = 0.05

#: cached cost estimates the router retains (keyed by normalized query)
_ESTIMATE_CACHE_CAP = 256


# ----------------------------------------------------------------------
# cluster map
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServerSpec:
    """One shard server endpoint (socket port + optional HTTP sidecar)."""

    host: str
    port: int
    http_port: int | None = None

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"


def plan_placement(
    server_keys: Sequence[str], num_shards: int, replication: int = 1
) -> dict[int, list[str]]:
    """Consistent-hash shard→replica placement.

    Each server contributes ``_VNODES`` ring points; shard ``i`` hashes
    onto the ring and takes the next ``replication`` *distinct* servers
    clockwise.  Deterministic for a given server set, and adding or
    removing one server relocates only the shards whose arcs it
    touches.
    """
    if not server_keys:
        raise InvalidParameterError("placement needs at least one server")
    replication = max(1, min(replication, len(set(server_keys))))
    ring = sorted(
        (stable_hash(f"{key}#{vnode}"), key)
        for key in set(server_keys)
        for vnode in range(_VNODES)
    )
    placement: dict[int, list[str]] = {}
    for shard in range(num_shards):
        point = stable_hash(f"shard:{shard}")
        start = bisect.bisect_right(ring, (point, "￿"))
        replicas: list[str] = []
        for index in range(start, start + len(ring)):
            key = ring[index % len(ring)][1]
            if key not in replicas:
                replicas.append(key)
                if len(replicas) == replication:
                    break
        placement[shard] = replicas
    return placement


class ClusterMap:
    """Shard→replica placement over a set of :class:`ServerSpec`.

    Built from a config dict (usually a JSON file)::

        {
          "num_shards": 4,
          "replication": 2,
          "servers": [
            {"host": "127.0.0.1", "port": 7601, "http_port": 7611},
            {"host": "127.0.0.1", "port": 7602, "http_port": 7612}
          ]
        }

    Placement is consistent-hash by default; a server may instead pin
    its shards explicitly with ``"shards": [0, 2]`` (then every server
    must pin, and each shard needs at least one owner).  Every server
    is expected to mount at least the shards placed on it.
    """

    def __init__(
        self,
        servers: Sequence[ServerSpec],
        num_shards: int,
        replication: int = 1,
        placement: dict[int, list[str]] | None = None,
    ) -> None:
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if not servers:
            raise InvalidParameterError("cluster has no servers")
        self.servers: dict[str, ServerSpec] = {}
        for spec in servers:
            if spec.key in self.servers:
                raise InvalidParameterError(
                    f"duplicate server {spec.key} in cluster map"
                )
            self.servers[spec.key] = spec
        self.num_shards = num_shards
        self.replication = replication
        if placement is None:
            placement = plan_placement(
                list(self.servers), num_shards, replication
            )
        self.placement: dict[int, tuple[str, ...]] = {}
        for shard in range(num_shards):
            replicas = tuple(placement.get(shard, ()))
            if not replicas:
                raise InvalidParameterError(
                    f"shard {shard} has no replicas in the cluster map"
                )
            unknown = [key for key in replicas if key not in self.servers]
            if unknown:
                raise InvalidParameterError(
                    f"shard {shard} placed on unknown servers {unknown}"
                )
            self.placement[shard] = replicas

    @classmethod
    def from_config(cls, config: dict) -> "ClusterMap":
        try:
            num_shards = config["num_shards"]
            raw_servers = config["servers"]
        except (TypeError, KeyError) as exc:
            raise InvalidParameterError(
                f"cluster config must define {exc} "
                "(required: num_shards, servers)"
            ) from None
        specs: list[ServerSpec] = []
        pinned: dict[int, list[str]] = {}
        explicit = 0
        for entry in raw_servers:
            try:
                spec = ServerSpec(
                    host=entry["host"],
                    port=entry["port"],
                    http_port=entry.get("http_port"),
                )
            except (TypeError, KeyError) as exc:
                raise InvalidParameterError(
                    f"server entry {entry!r} must define {exc}"
                ) from None
            specs.append(spec)
            shards = entry.get("shards")
            if shards is not None:
                explicit += 1
                for shard in shards:
                    pinned.setdefault(shard, []).append(spec.key)
        if explicit and explicit != len(specs):
            raise InvalidParameterError(
                "either every server pins its shards or none does"
            )
        return cls(
            specs,
            num_shards=num_shards,
            replication=config.get("replication", 1),
            placement=pinned if explicit else None,
        )

    @classmethod
    def load(cls, path: str | Path) -> "ClusterMap":
        try:
            config = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise InvalidParameterError(
                f"cannot read cluster map {path}: {exc}"
            ) from None
        return cls.from_config(config)

    def replicas(self, shard: int) -> tuple[str, ...]:
        try:
            return self.placement[shard]
        except KeyError:
            raise InvalidParameterError(
                f"shard {shard} is outside the cluster map "
                f"(num_shards={self.num_shards})"
            ) from None

    def describe(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "servers": sorted(self.servers),
            "placement": {
                str(shard): list(replicas)
                for shard, replicas in sorted(self.placement.items())
            },
        }


# ----------------------------------------------------------------------
# shard client (pooled persistent connections)
# ----------------------------------------------------------------------


class ShardClient:
    """Framed request/response to one shard server, with a small pool
    of persistent connections.

    A pooled connection that fails before yielding a response byte may
    simply have been idle past the server's patience — the request is
    retried once on a fresh connection.  A *fresh* connection failing
    is the server being down and propagates.
    """

    def __init__(self, host: str, port: int, pool_size: int = 2) -> None:
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._pool: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    def _connect(self, timeout: float) -> socket.socket:
        return socket.create_connection(
            (self._host, self._port), timeout=timeout
        )

    def _checkout(self) -> socket.socket | None:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return None

    def _checkin(self, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def request(self, payload: dict, timeout: float):
        """One round trip; raises the remote :mod:`repro.errors` type on
        an error response, ``OSError``/``ConnectionError`` on transport
        failure."""
        conn = self._checkout()
        fresh = conn is None
        if conn is None:
            conn = self._connect(timeout)
        try:
            conn.settimeout(timeout)
            send_message(conn, payload)
            response = recv_message(conn)
        except (OSError, EOFError, ConnectionError):
            conn.close()
            if fresh:
                raise
            # stale pooled socket — one retry on a new connection
            conn = self._connect(timeout)
            try:
                conn.settimeout(timeout)
                send_message(conn, payload)
                response = recv_message(conn)
            except (OSError, EOFError, ConnectionError):
                conn.close()
                raise
        self._checkin(conn)
        if isinstance(response, dict) and "error" in response:
            raise decode_error(response["error"])
        return response

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


# ----------------------------------------------------------------------
# the fan-out backend
# ----------------------------------------------------------------------


def _record_key(record) -> tuple[int, tuple[int, ...]]:
    # the wire record is (coded, frequency, names); rank order is the
    # shared (-frequency, coded) so merged streams interleave exactly
    # like ShardedPatternStore's in-process heap
    return (-record[1], record[0])


class RouterBackend:
    """Fan-out search backend over a cluster of shard servers.

    Duck-types the slice of the backend surface ``QueryService`` uses:
    ``search``/``top`` (returning :class:`QueryMatch` lists in the
    canonical rank order), ``__len__``, ``describe`` and ``close`` —
    plus :meth:`take_partial`, which the service layer polls after each
    backend call to learn whether the answer degraded.

    Not a :class:`~repro.query.base.PatternSearchBase`: the router
    holds no vocabulary and no postings, only sockets.
    """

    def __init__(
        self,
        cluster: ClusterMap,
        deadline: float = 5.0,
        pool_size: int = 2,
        health_timeout: float = 1.0,
    ) -> None:
        if deadline <= 0:
            raise InvalidParameterError(
                f"deadline must be > 0 seconds, got {deadline}"
            )
        self._cluster = cluster
        self._deadline = deadline
        self._health_timeout = health_timeout
        self._clients = {
            key: ShardClient(spec.host, spec.port, pool_size=pool_size)
            for key, spec in cluster.servers.items()
        }
        self._healthy = {key: True for key in cluster.servers}
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(cluster.servers)),
            thread_name_prefix="router-fanout",
        )
        self._shard_hists: dict[int, LatencyHistogram] = {
            shard: LatencyHistogram() for shard in range(cluster.num_shards)
        }
        self._fanouts = 0
        self._retries = 0
        self._server_failures = 0
        self._partials = 0
        self._patterns_total: int | None = None
        self._estimate_cache: OrderedDict[tuple, CostEstimate] = (
            OrderedDict()
        )
        self._tls = threading.local()
        self._health_stop: threading.Event | None = None
        self._health_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def _probe(self, key: str) -> bool:
        spec = self._cluster.servers[key]
        if spec.http_port is not None:
            url = f"http://{spec.host}:{spec.http_port}/healthz"
            try:
                with urllib.request.urlopen(
                    url, timeout=self._health_timeout
                ) as response:
                    return response.status == 200
            except OSError:
                return False
        try:
            answer = self._clients[key].request(
                {"v": PROTOCOL_VERSION, "op": "ping"}, self._health_timeout
            )
        except (OSError, EOFError, ConnectionError, ReproError):
            return False
        return bool(isinstance(answer, dict) and answer.get("ok"))

    def check_health(self) -> dict[str, bool]:
        """Probe every server once and update the health map.

        Shard servers answer ``/healthz`` on their HTTP sidecar (or a
        socket ping when they run without one).  A server marked down
        is excluded from fan-out plans; a later probe revives it.
        """
        status = {key: self._probe(key) for key in self._cluster.servers}
        with self._lock:
            self._healthy.update(status)
        return status

    def start_health_loop(self, interval: float = 2.0) -> None:
        """Re-probe every ``interval`` seconds from a daemon thread."""
        if self._health_thread is not None:
            return
        self._health_stop = threading.Event()

        def loop() -> None:
            while not self._health_stop.wait(interval):
                try:
                    self.check_health()
                except Exception:  # pragma: no cover - defensive
                    pass

        self._health_thread = threading.Thread(
            target=loop, name="router-health", daemon=True
        )
        self._health_thread.start()

    def _mark_down(self, key: str) -> None:
        with self._lock:
            if self._healthy.get(key, True):
                self._healthy[key] = False
            self._server_failures += 1

    def healthy_servers(self) -> dict[str, bool]:
        with self._lock:
            return dict(self._healthy)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------

    def _pick(self, shard: int, tried: set[str]) -> str | None:
        """Next replica to try for ``shard``: untried healthy ones in
        placement order, then untried unhealthy ones (a shard whose
        whole replica set is marked down is still *attempted* — health
        data may be stale, and connection-refused fails in
        microseconds)."""
        replicas = self._cluster.replicas(shard)
        with self._lock:
            healthy = [
                key
                for key in replicas
                if key not in tried and self._healthy.get(key, True)
            ]
            if healthy:
                return healthy[0]
        for key in replicas:
            if key not in tried:
                return key
        return None

    def _scatter(
        self, make_payload: Callable[[list[int]], dict]
    ) -> tuple[list[list], dict]:
        """Fan one request out across the cluster.

        Returns ``(group_records, partial_info)`` where each element of
        ``group_records`` is one server's rank-ordered record list and
        ``partial_info`` is ``{}`` when every shard answered, else
        ``{"missing_shards": [...], "failed_servers": [...]}``.

        Each shard gets at most two attempts (primary pick + one
        failover replica), all under a single deadline budget.
        """
        deadline = time.monotonic() + (
            self._deadline * self._take_deadline_fraction()
        )
        with self._lock:
            self._fanouts += 1
        tried: dict[int, set[str]] = {
            shard: set() for shard in range(self._cluster.num_shards)
        }
        pending = list(range(self._cluster.num_shards))
        group_records: list[list] = []
        failed_servers: set[str] = set()
        retried: set[int] = set()
        for attempt in (0, 1):
            if not pending:
                break
            # group this wave's shards by their chosen server so one
            # request per server covers all its shards
            groups: dict[str, list[int]] = {}
            unservable: list[int] = []
            for shard in pending:
                key = self._pick(shard, tried[shard])
                if key is None:
                    unservable.append(shard)
                    continue
                tried[shard].add(key)
                groups.setdefault(key, []).append(shard)
            if attempt:
                retried.update(
                    shard for shards in groups.values() for shard in shards
                )
                with self._lock:
                    self._retries += len(groups)
            futures = {
                self._executor.submit(
                    self._call_group, key, shards, make_payload, deadline
                ): (key, shards)
                for key, shards in groups.items()
            }
            pending = unservable
            error: ReproError | None = None
            for future, (key, shards) in futures.items():
                records, failure = future.result()
                if failure is None:
                    group_records.append(records)
                elif isinstance(failure, ReproError) and not isinstance(
                    failure, StoreCorruptError
                ):
                    # a query error (unknown item, bad parameter…) is
                    # the *answer*, not a server failure — remember it,
                    # but keep draining futures first
                    error = failure
                else:
                    failed_servers.add(key)
                    self._mark_down(key)
                    pending.extend(shards)
            if error is not None:
                raise error
        partial: dict = {}
        if pending:
            with self._lock:
                self._partials += 1
            partial = {
                "missing_shards": sorted(pending),
                "failed_servers": sorted(failed_servers),
            }
            if retried:
                partial["retried_shards"] = sorted(retried)
        return group_records, partial

    def _call_group(
        self,
        key: str,
        shards: list[int],
        make_payload: Callable[[list[int]], dict],
        deadline: float,
    ):
        """One server request covering ``shards``; returns
        ``(records, failure)`` with exactly one of the two set."""
        timeout = max(_MIN_TIMEOUT, deadline - time.monotonic())
        start = time.monotonic()
        try:
            response = self._clients[key].request(
                make_payload(shards), timeout
            )
            raw = response.get("records") if isinstance(response, dict) else None
            if raw is None:
                raise StoreCorruptError(
                    f"server {key} sent a malformed response"
                )
            records = [
                (tuple(coded), frequency, tuple(names))
                for coded, frequency, names in raw
            ]
        except Exception as exc:  # noqa: BLE001 - sorted by the caller
            return None, exc
        finally:
            elapsed = time.monotonic() - start
            with self._lock:
                for shard in shards:
                    self._shard_hists[shard].observe(elapsed)
        return records, None

    def _set_partial(self, partial: dict) -> None:
        self._tls.partial = partial or None

    def take_partial(self) -> dict | None:
        """Degradation info for the *calling thread's* latest query
        (``None`` when it covered every shard).  Reading clears it."""
        partial = getattr(self._tls, "partial", None)
        self._tls.partial = None
        return partial

    def _take_deadline_fraction(self) -> float:
        """Deadline scale for this thread's next fan-out, consumed once.

        A query :meth:`estimate_cost` just priced inherits a deadline
        proportional to its estimate — cheap lookups fail over fast
        instead of waiting a broad-scan budget, expensive scans keep
        the full deadline.  Without an estimate the full budget stands.
        """
        cost = getattr(self._tls, "last_cost", None)
        self._tls.last_cost = None
        if cost is None:
            return 1.0
        return min(
            1.0, max(MIN_DEADLINE_FRACTION, cost / COST_FULL_DEADLINE)
        )

    # ------------------------------------------------------------------
    # backend surface
    # ------------------------------------------------------------------

    def estimate_cost(self, query) -> CostEstimate | None:
        """Cluster-level planner estimate for the query, or ``None``
        when no server can price it (all down, or servers predating the
        ``estimate`` op — admission then simply skips the gate, it
        never fails the query).

        One healthy server is asked for its slice's estimate, which is
        scaled by the shard ratio to cover the whole cluster (shards
        partition the patterns, so slice costs extrapolate linearly).
        Estimates are cached per normalized query, and the returned
        cost arms the calling thread's fan-out deadline scale.
        """
        tokens = normalize_query(query)
        with self._lock:
            cached = self._estimate_cache.get(tokens)
            if cached is not None:
                self._estimate_cache.move_to_end(tokens)
        if cached is not None:
            self._tls.last_cost = cached.cost
            return cached
        wire = encode_tokens(tokens)
        with self._lock:
            ranked = sorted(
                self._cluster.servers,
                key=lambda key: not self._healthy.get(key, True),
            )
        estimate: CostEstimate | None = None
        for key in ranked:
            try:
                response = self._clients[key].request(
                    {"v": PROTOCOL_VERSION, "op": "estimate", "tokens": wire},
                    self._health_timeout,
                )
            except (OSError, EOFError, ConnectionError):
                self._mark_down(key)
                continue
            except ReproError:
                # a pre-planner server answers "unknown op"; a genuine
                # query error will surface from the search that follows
                return None
            raw = (
                response.get("estimate")
                if isinstance(response, dict)
                else None
            )
            if not isinstance(raw, dict):
                return None
            covered = max(1, int(raw.get("shards", 1)))
            scale = self._cluster.num_shards / covered
            estimate = CostEstimate(
                cost=float(raw.get("cost", 0)) * scale,
                strategy=str(raw.get("strategy", "mixed")),
                candidates=int(raw.get("candidates", 0) * scale),
                scan_candidates=int(raw.get("scan_candidates", 0) * scale),
                shards=self._cluster.num_shards,
            )
            break
        if estimate is None:
            return None
        with self._lock:
            self._estimate_cache[tokens] = estimate
            self._estimate_cache.move_to_end(tokens)
            while len(self._estimate_cache) > _ESTIMATE_CACHE_CAP:
                self._estimate_cache.popitem(last=False)
        self._tls.last_cost = estimate.cost
        return estimate

    def search(
        self,
        query,
        limit: int | None = None,
        min_freq: int | None = None,
    ) -> list[QueryMatch]:
        """Fan the normalized query out and merge the partial answers.

        Per-shard σ cuts compose (rank order makes ``min_freq`` a
        stream prefix) and ``limit`` pushes down as a per-server upper
        bound, re-applied globally after the merge.
        """
        tokens = encode_tokens(normalize_query(query))

        def make_payload(shards: list[int]) -> dict:
            return {
                "v": PROTOCOL_VERSION,
                "op": "search",
                "tokens": tokens,
                "shards": shards,
                "limit": limit,
                "min_freq": min_freq,
            }

        groups, partial = self._scatter(make_payload)
        merged = heapq.merge(*groups, key=_record_key)
        if limit is not None:
            merged = itertools.islice(merged, limit)
        self._set_partial(partial)
        return [
            QueryMatch(names, frequency) for _, frequency, names in merged
        ]

    def top(self, n: int) -> list[QueryMatch]:
        """Global top-``n``: per-server top-``n`` streams merged, first
        ``n`` kept."""

        def make_payload(shards: list[int]) -> dict:
            return {
                "v": PROTOCOL_VERSION,
                "op": "top",
                "n": n,
                "shards": shards,
            }

        groups, partial = self._scatter(make_payload)
        merged = itertools.islice(heapq.merge(*groups, key=_record_key), n)
        self._set_partial(partial)
        return [
            QueryMatch(names, frequency) for _, frequency, names in merged
        ]

    def __len__(self) -> int:
        """Total patterns across the cluster's shards.

        Scatters one ``status`` per server until every shard is
        counted; the total is cached once complete (the distributed
        tier serves one store generation).  With servers down this
        returns the reachable shards' count, uncached.
        """
        with self._lock:
            if self._patterns_total is not None:
                return self._patterns_total
        counts: dict[int, int] = {}
        asked: set[str] = set()
        for shard in range(self._cluster.num_shards):
            if shard in counts:
                continue
            for key in self._cluster.replicas(shard):
                if key in asked:
                    continue
                asked.add(key)
                try:
                    status = self._clients[key].request(
                        {"v": PROTOCOL_VERSION, "op": "status"},
                        self._health_timeout,
                    )
                except (OSError, EOFError, ConnectionError, ReproError):
                    continue
                for index, patterns in status["patterns_by_shard"].items():
                    counts[int(index)] = patterns
                if shard in counts:
                    break
        total = sum(counts.values())
        if len(counts) == self._cluster.num_shards:
            with self._lock:
                self._patterns_total = total
        return total

    def describe(self) -> dict:
        # cluster facts first: the per-server health map below must win
        # over ClusterMap.describe()'s plain server list
        info = self._cluster.describe()
        with self._lock:
            info.update({
                "router": True,
                "fanouts": self._fanouts,
                "fanout_retries": self._retries,
                "server_failures": self._server_failures,
                "partial_results": self._partials,
                "servers": {
                    key: {
                        "healthy": self._healthy[key],
                        "http_port": self._cluster.servers[key].http_port,
                    }
                    for key in sorted(self._cluster.servers)
                },
                "fanout_latency": {
                    str(shard): hist.snapshot()
                    for shard, hist in sorted(self._shard_hists.items())
                },
            })
        return info

    def close(self) -> None:
        if self._health_stop is not None:
            self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)
            self._health_thread = None
        self._executor.shutdown(wait=False)
        for client in self._clients.values():
            client.close()


__all__ = [
    "ClusterMap",
    "RouterBackend",
    "ServerSpec",
    "ShardClient",
    "plan_placement",
]
