"""Query router: fan-out over shard servers, merge, failover.

The router is the distributed tier's front end.  It owns the **cluster
map** — which shard lives on which servers — fans each query out to one
server per shard group, and k-way heap-merges the rank-ordered partial
answers with the same ``(-frequency, coded_pattern)`` key every backend
uses, so the merged answer is byte-identical to a single-process
:class:`~repro.serve.sharded.ShardedPatternStore` over the same
manifest.

:class:`RouterBackend` implements the backend surface
:class:`~repro.serve.service.QueryService` consumes (``search``,
``top``, ``__len__``, ``describe``, ``close``), which means the whole
existing HTTP layer — endpoints, error mapping, metrics — serves a
cluster unchanged.

Placement and failover:

* :func:`plan_placement` assigns each shard ``replication`` servers via
  a consistent-hash ring (virtual nodes over the repo's FNV
  :func:`~repro.mapreduce.engine.stable_hash`), so adding a server
  moves few shards; explicit per-server shard lists in the cluster
  config override it.
* Each fan-out has one **deadline budget**: every socket operation gets
  the time remaining, not a fresh timeout, so retries cannot stretch a
  request beyond the budget.
* A shard whose chosen server fails is retried **once** on its next
  untried replica; servers that fail are marked unhealthy and excluded
  from later plans until a health check (``/healthz`` of the shard
  server's HTTP sidecar, or a socket ping) revives them.
* If a shard's replica set is exhausted the query **degrades**: the
  answer covers the reachable shards and the response is flagged
  partial (:meth:`RouterBackend.take_partial`) instead of failing —
  and partial answers are never cached upstream.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import json
import socket
import threading
import time
import urllib.request
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.costmodel import (
    COST_FULL_DEADLINE,
    MIN_DEADLINE_FRACTION,
)
from repro.errors import (
    InvalidParameterError,
    ReproError,
    ServerBusyError,
    StoreCorruptError,
)
from repro.mapreduce.engine import stable_hash
from repro.query.base import QueryMatch
from repro.query.cost import CostEstimate
from repro.query.tokens import normalize_query
from repro.serve.protocol import (
    ALL_FEATURES,
    DEFAULT_COMPRESS_THRESHOLD,
    FEATURE_MULTI,
    FEATURE_MUX,
    FEATURE_ZLIB,
    PROTOCOL_VERSION,
    WireStats,
    decode_error,
    encode_tokens,
    hello_request,
    merge_wire_snapshots,
    negotiate_features,
    recv_message,
    recv_mux,
    send_message,
    send_mux,
)
from repro.serve.service import LatencyHistogram

#: virtual nodes per server on the placement ring — enough to spread
#: shards evenly across a handful of servers
_VNODES = 64

#: floor for any single socket operation's timeout: once the deadline
#: budget is nearly spent, fail fast instead of waiting 0 seconds
_MIN_TIMEOUT = 0.05

#: cached cost estimates the router retains (keyed by normalized query)
_ESTIMATE_CACHE_CAP = 256


# ----------------------------------------------------------------------
# cluster map
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServerSpec:
    """One shard server endpoint (socket port + optional HTTP sidecar)."""

    host: str
    port: int
    http_port: int | None = None

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"


def plan_placement(
    server_keys: Sequence[str], num_shards: int, replication: int = 1
) -> dict[int, list[str]]:
    """Consistent-hash shard→replica placement.

    Each server contributes ``_VNODES`` ring points; shard ``i`` hashes
    onto the ring and takes the next ``replication`` *distinct* servers
    clockwise.  Deterministic for a given server set, and adding or
    removing one server relocates only the shards whose arcs it
    touches.
    """
    if not server_keys:
        raise InvalidParameterError("placement needs at least one server")
    replication = max(1, min(replication, len(set(server_keys))))
    ring = sorted(
        (stable_hash(f"{key}#{vnode}"), key)
        for key in set(server_keys)
        for vnode in range(_VNODES)
    )
    placement: dict[int, list[str]] = {}
    for shard in range(num_shards):
        point = stable_hash(f"shard:{shard}")
        start = bisect.bisect_right(ring, (point, "￿"))
        replicas: list[str] = []
        for index in range(start, start + len(ring)):
            key = ring[index % len(ring)][1]
            if key not in replicas:
                replicas.append(key)
                if len(replicas) == replication:
                    break
        placement[shard] = replicas
    return placement


class ClusterMap:
    """Shard→replica placement over a set of :class:`ServerSpec`.

    Built from a config dict (usually a JSON file)::

        {
          "num_shards": 4,
          "replication": 2,
          "servers": [
            {"host": "127.0.0.1", "port": 7601, "http_port": 7611},
            {"host": "127.0.0.1", "port": 7602, "http_port": 7612}
          ]
        }

    Placement is consistent-hash by default; a server may instead pin
    its shards explicitly with ``"shards": [0, 2]`` (then every server
    must pin, and each shard needs at least one owner).  Every server
    is expected to mount at least the shards placed on it.
    """

    def __init__(
        self,
        servers: Sequence[ServerSpec],
        num_shards: int,
        replication: int = 1,
        placement: dict[int, list[str]] | None = None,
        pool_size: int | None = None,
        pipeline_depth: int | None = None,
        fanout_workers: int | None = None,
    ) -> None:
        # optional cluster-wide client sizing defaults (config JSON keys
        # "pool_size" / "pipeline_depth" / "fanout_workers"); explicit
        # CLI flags override
        self.pool_size = pool_size
        self.pipeline_depth = pipeline_depth
        self.fanout_workers = fanout_workers
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if not servers:
            raise InvalidParameterError("cluster has no servers")
        self.servers: dict[str, ServerSpec] = {}
        for spec in servers:
            if spec.key in self.servers:
                raise InvalidParameterError(
                    f"duplicate server {spec.key} in cluster map"
                )
            self.servers[spec.key] = spec
        self.num_shards = num_shards
        self.replication = replication
        if placement is None:
            placement = plan_placement(
                list(self.servers), num_shards, replication
            )
        self.placement: dict[int, tuple[str, ...]] = {}
        for shard in range(num_shards):
            replicas = tuple(placement.get(shard, ()))
            if not replicas:
                raise InvalidParameterError(
                    f"shard {shard} has no replicas in the cluster map"
                )
            unknown = [key for key in replicas if key not in self.servers]
            if unknown:
                raise InvalidParameterError(
                    f"shard {shard} placed on unknown servers {unknown}"
                )
            self.placement[shard] = replicas

    @classmethod
    def from_config(cls, config: dict) -> "ClusterMap":
        try:
            num_shards = config["num_shards"]
            raw_servers = config["servers"]
        except (TypeError, KeyError) as exc:
            raise InvalidParameterError(
                f"cluster config must define {exc} "
                "(required: num_shards, servers)"
            ) from None
        specs: list[ServerSpec] = []
        pinned: dict[int, list[str]] = {}
        explicit = 0
        for entry in raw_servers:
            try:
                spec = ServerSpec(
                    host=entry["host"],
                    port=entry["port"],
                    http_port=entry.get("http_port"),
                )
            except (TypeError, KeyError) as exc:
                raise InvalidParameterError(
                    f"server entry {entry!r} must define {exc}"
                ) from None
            specs.append(spec)
            shards = entry.get("shards")
            if shards is not None:
                explicit += 1
                for shard in shards:
                    pinned.setdefault(shard, []).append(spec.key)
        if explicit and explicit != len(specs):
            raise InvalidParameterError(
                "either every server pins its shards or none does"
            )
        return cls(
            specs,
            num_shards=num_shards,
            replication=config.get("replication", 1),
            placement=pinned if explicit else None,
            pool_size=config.get("pool_size"),
            pipeline_depth=config.get("pipeline_depth"),
            fanout_workers=config.get("fanout_workers"),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ClusterMap":
        try:
            config = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise InvalidParameterError(
                f"cannot read cluster map {path}: {exc}"
            ) from None
        return cls.from_config(config)

    def replicas(self, shard: int) -> tuple[str, ...]:
        try:
            return self.placement[shard]
        except KeyError:
            raise InvalidParameterError(
                f"shard {shard} is outside the cluster map "
                f"(num_shards={self.num_shards})"
            ) from None

    def describe(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "servers": sorted(self.servers),
            "placement": {
                str(shard): list(replicas)
                for shard, replicas in sorted(self.placement.items())
            },
        }


# ----------------------------------------------------------------------
# shard client (pipelined mux connection, legacy pooled fallback)
# ----------------------------------------------------------------------


class _PendingSlot:
    """One in-flight mux request: the waiter's event and response box."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response = None


class _MuxConnection:
    """One multiplexed socket: its in-flight table, per-connection
    request-id counter, and the send lock serializing frame writes."""

    __slots__ = ("sock", "pending", "lock", "send_lock", "ids", "dead")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.pending: dict[int, _PendingSlot] = {}
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.ids = itertools.count(1)
        self.dead = False


class ShardClient:
    """Framed request/response to one shard server.

    In ``auto`` wire mode the first connection performs the capability
    handshake (see :mod:`repro.serve.protocol`).  Against a server that
    speaks the extension, **one** multiplexed connection carries up to
    ``pipeline_depth`` concurrent requests with out-of-order responses
    and optional zlib compression; against an older server the client
    silently stays in legacy mode — a small pool of one-request-at-a-
    time connections, exactly the pre-extension behavior (also forced
    by ``wire="legacy"``, the mixed-version/benchmark baseline switch).

    Failure semantics are shared by both modes: a connection that fails
    before the request went out may simply have idled past the server's
    patience and is retried once on a fresh connection; a *fresh*
    connection failing is the server being down and propagates.  A mux
    connection dying mid-pipeline fails **every** in-flight request
    with :class:`ConnectionError`, so each caller's replica-retry path
    fails its request over independently.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 2,
        pipeline_depth: int = 32,
        compress: bool = True,
        wire: str = "auto",
    ) -> None:
        if wire not in ("auto", "legacy"):
            raise InvalidParameterError(
                f"wire must be 'auto' or 'legacy', got {wire!r}"
            )
        if pipeline_depth < 1:
            raise InvalidParameterError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._pipeline_depth = pipeline_depth
        self._wire = wire
        self._offered = (
            ALL_FEATURES if compress else (FEATURE_MUX, FEATURE_MULTI)
        )
        self._pool: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False
        # mux state: mode is None until the first handshake settles it
        self._mode: str | None = None if wire == "auto" else "legacy"
        self._mux: _MuxConnection | None = None
        self._conn_lock = threading.Lock()
        self._depth = threading.Semaphore(pipeline_depth)
        self._threshold: int | None = None
        self._in_flight = 0
        self.features: tuple[str, ...] = ()
        self.wire_stats = WireStats()

    @property
    def mode(self) -> str:
        """``"mux"`` or ``"legacy"`` once settled; ``"auto"`` before
        the first connection decided."""
        return self._mode or "auto"

    def _connect(self, timeout: float) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=timeout
        )
        # request frames are small; never let Nagle hold one back
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    # -- legacy pooled mode -------------------------------------------

    def _checkout(self) -> socket.socket | None:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return None

    def _checkin(self, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def _legacy_request(self, payload: dict, timeout: float):
        conn = self._checkout()
        fresh = conn is None
        if conn is None:
            conn = self._connect(timeout)
        try:
            conn.settimeout(timeout)
            send_message(conn, payload)
            response = recv_message(conn)
        except (OSError, EOFError, ConnectionError):
            conn.close()
            if fresh:
                raise
            # stale pooled socket — one retry on a new connection
            conn = self._connect(timeout)
            try:
                conn.settimeout(timeout)
                send_message(conn, payload)
                response = recv_message(conn)
            except (OSError, EOFError, ConnectionError):
                conn.close()
                raise
        self._checkin(conn)
        if isinstance(response, dict) and "error" in response:
            raise decode_error(response["error"])
        return response

    # -- multiplexed mode ---------------------------------------------

    def _ensure_mux(self, timeout: float) -> _MuxConnection | None:
        """Current live mux connection, dialing + handshaking one if
        needed.  ``None`` means the handshake settled on legacy mode."""
        with self._conn_lock:
            if self._closed:
                raise ConnectionError("shard client is closed")
            if self._mode == "legacy":
                return None
            mux = self._mux
            if mux is not None and not mux.dead:
                return mux
            sock = self._connect(timeout)
            try:
                sock.settimeout(timeout)
                send_message(sock, hello_request(self._offered))
                response = recv_message(sock)
            except (OSError, EOFError, ConnectionError):
                sock.close()
                raise
            features: tuple[str, ...] = ()
            if (
                isinstance(response, dict)
                and response.get("ok")
                and isinstance(response.get("features"), list)
            ):
                features = negotiate_features(
                    self._offered, response["features"]
                )
            if FEATURE_MUX not in features:
                # pre-extension server (it answered the unknown op with
                # a plain error) or no common ground: the connection is
                # a perfectly good legacy link — keep it
                self._mode = "legacy"
                self._checkin(sock)
                return None
            self._mode = "mux"
            self.features = features
            self._threshold = (
                response.get("threshold", DEFAULT_COMPRESS_THRESHOLD)
                if FEATURE_ZLIB in features
                else None
            )
            sock.settimeout(None)  # the reader blocks; waiters time out
            mux = _MuxConnection(sock)
            self._mux = mux
            threading.Thread(
                target=self._read_loop,
                args=(mux,),
                name=f"shard-client-{self._host}:{self._port}",
                daemon=True,
            ).start()
            return mux

    def _read_loop(self, mux: _MuxConnection) -> None:
        while True:
            try:
                request_id, value = recv_mux(mux.sock, self.wire_stats)
            except Exception:  # noqa: BLE001 - any failure kills the link
                break
            with mux.lock:
                slot = mux.pending.pop(request_id, None)
            if slot is not None:
                slot.response = value
                slot.event.set()
        self._drop_mux(mux)

    def _drop_mux(self, mux: _MuxConnection, exc: Exception | None = None) -> None:
        """Retire a mux connection and fail every request still in its
        in-flight table — each waiter then fails over independently."""
        with mux.lock:
            mux.dead = True
            pending, mux.pending = dict(mux.pending), {}
        with self._conn_lock:
            if self._mux is mux:
                self._mux = None
        try:
            mux.sock.close()
        except OSError:
            pass
        error = exc or ConnectionError(
            f"connection to {self._host}:{self._port} lost mid-pipeline"
        )
        for slot in pending.values():
            slot.response = error
            slot.event.set()

    def _mux_request(self, payload: dict, timeout: float):
        if not self._depth.acquire(timeout=timeout):
            raise socket.timeout(
                f"pipeline to {self._host}:{self._port} is full "
                f"(depth {self._pipeline_depth})"
            )
        try:
            response = None
            for attempt in (0, 1):
                mux = self._ensure_mux(timeout)
                if mux is None:  # renegotiated down to legacy
                    return self._legacy_request(payload, timeout)
                slot = _PendingSlot()
                with mux.lock:
                    if mux.dead:
                        continue  # died under us; dial a fresh one
                    request_id = next(mux.ids)
                    mux.pending[request_id] = slot
                try:
                    with mux.send_lock:
                        send_mux(
                            mux.sock,
                            request_id,
                            payload,
                            self._threshold,
                            self.wire_stats,
                        )
                except (OSError, ConnectionError) as exc:
                    with mux.lock:
                        mux.pending.pop(request_id, None)
                    self._drop_mux(mux, exc)
                    if attempt:
                        raise
                    continue  # request never left: retry on fresh conn
                if not slot.event.wait(timeout):
                    with mux.lock:
                        mux.pending.pop(request_id, None)
                    raise socket.timeout(
                        f"no response from {self._host}:{self._port} "
                        f"within {timeout:.2f}s"
                    )
                response = slot.response
                break
            else:
                raise ConnectionError(
                    f"connection to {self._host}:{self._port} kept dying "
                    "before the request was sent"
                )
        finally:
            self._depth.release()
        if isinstance(response, BaseException):
            raise response
        if isinstance(response, dict) and "error" in response:
            raise decode_error(response["error"])
        return response

    # -- shared surface -----------------------------------------------

    def request(self, payload: dict, timeout: float):
        """One request/response; raises the remote :mod:`repro.errors`
        type on an error response, ``OSError``/``ConnectionError`` on
        transport failure (including a mux connection dying while this
        request was in flight)."""
        with self._lock:
            self._in_flight += 1
        try:
            if self._mode == "legacy":
                return self._legacy_request(payload, timeout)
            return self._mux_request(payload, timeout)
        finally:
            with self._lock:
                self._in_flight -= 1

    def stats(self) -> dict:
        with self._lock:
            in_flight = self._in_flight
        return {
            "mode": self.mode,
            "features": list(self.features),
            "pipeline_depth": self._pipeline_depth,
            "in_flight": in_flight,
            "wire": self.wire_stats.snapshot(),
        }

    def close(self) -> None:
        with self._conn_lock:
            self._closed = True
            mux, self._mux = self._mux, None
        if mux is not None:
            self._drop_mux(mux, ConnectionError("shard client closed"))
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


# ----------------------------------------------------------------------
# the fan-out backend
# ----------------------------------------------------------------------


def _record_key(record) -> tuple[int, tuple[int, ...]]:
    # the wire record is (coded, frequency, names); rank order is the
    # shared (-frequency, coded) so merged streams interleave exactly
    # like ShardedPatternStore's in-process heap
    return (-record[1], record[0])


class RouterBackend:
    """Fan-out search backend over a cluster of shard servers.

    Duck-types the slice of the backend surface ``QueryService`` uses:
    ``search``/``top`` (returning :class:`QueryMatch` lists in the
    canonical rank order), ``__len__``, ``describe`` and ``close`` —
    plus :meth:`take_partial`, which the service layer polls after each
    backend call to learn whether the answer degraded.

    Not a :class:`~repro.query.base.PatternSearchBase`: the router
    holds no vocabulary and no postings, only sockets.
    """

    def __init__(
        self,
        cluster: ClusterMap,
        deadline: float = 5.0,
        pool_size: int = 2,
        health_timeout: float = 1.0,
        pipeline_depth: int = 32,
        compress: bool = True,
        wire: str = "auto",
        batched: bool = True,
        fanout_workers: int | None = None,
    ) -> None:
        if deadline <= 0:
            raise InvalidParameterError(
                f"deadline must be > 0 seconds, got {deadline}"
            )
        if fanout_workers is not None and fanout_workers < 1:
            raise InvalidParameterError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        self._cluster = cluster
        self._deadline = deadline
        self._health_timeout = health_timeout
        self._pipeline_depth = pipeline_depth
        self._compress = compress
        self._wire = wire
        self._clients = {
            key: ShardClient(
                spec.host,
                spec.port,
                pool_size=pool_size,
                pipeline_depth=pipeline_depth,
                compress=compress,
                wire=wire,
            )
            for key, spec in cluster.servers.items()
        }
        self._healthy = {key: True for key in cluster.servers}
        self._lock = threading.Lock()
        # group calls spend their life blocked on a socket, so the pool
        # must cover many *concurrent* scatters, not just one — sized
        # for the pipeline the shard links themselves advertise
        self._fanout_workers = (
            fanout_workers
            if fanout_workers is not None
            else min(64, max(8, pipeline_depth))
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self._fanout_workers,
            thread_name_prefix="router-fanout",
        )
        self._shard_hists: dict[int, LatencyHistogram] = {
            shard: LatencyHistogram() for shard in range(cluster.num_shards)
        }
        self._fanouts = 0
        self._retries = 0
        self._server_failures = 0
        self._busy_sheds = 0
        self._partials = 0
        #: whether the cluster speaks multi_search: None until the first
        #: batched scatter settles it, False disables batching for good
        #: (batched=False pins it off — the pre-batching wire behaviour,
        #: kept for apples-to-apples benchmarking)
        self._multi_ok: bool | None = None if batched else False
        self._patterns_total: int | None = None
        self._estimate_cache: OrderedDict[tuple, CostEstimate] = (
            OrderedDict()
        )
        self._tls = threading.local()
        self._health_stop: threading.Event | None = None
        self._health_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def _probe(self, key: str) -> bool:
        spec = self._cluster.servers[key]
        if spec.http_port is not None:
            url = f"http://{spec.host}:{spec.http_port}/healthz"
            try:
                with urllib.request.urlopen(
                    url, timeout=self._health_timeout
                ) as response:
                    return response.status == 200
            except OSError:
                return False
        try:
            answer = self._clients[key].request(
                {"v": PROTOCOL_VERSION, "op": "ping"}, self._health_timeout
            )
        except (OSError, EOFError, ConnectionError, ReproError):
            return False
        return bool(isinstance(answer, dict) and answer.get("ok"))

    def check_health(self) -> dict[str, bool]:
        """Probe every server once and update the health map.

        Shard servers answer ``/healthz`` on their HTTP sidecar (or a
        socket ping when they run without one).  A server marked down
        is excluded from fan-out plans; a later probe revives it.
        """
        status = {key: self._probe(key) for key in self._cluster.servers}
        with self._lock:
            self._healthy.update(status)
        return status

    def start_health_loop(self, interval: float = 2.0) -> None:
        """Re-probe every ``interval`` seconds from a daemon thread."""
        if self._health_thread is not None:
            return
        self._health_stop = threading.Event()

        def loop() -> None:
            while not self._health_stop.wait(interval):
                try:
                    self.check_health()
                except Exception:  # pragma: no cover - defensive
                    pass

        self._health_thread = threading.Thread(
            target=loop, name="router-health", daemon=True
        )
        self._health_thread.start()

    def _mark_down(self, key: str) -> None:
        with self._lock:
            if self._healthy.get(key, True):
                self._healthy[key] = False
            self._server_failures += 1

    def healthy_servers(self) -> dict[str, bool]:
        with self._lock:
            return dict(self._healthy)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------

    def _pick(self, shard: int, tried: set[str]) -> str | None:
        """Next replica to try for ``shard``: untried healthy ones in
        placement order, then untried unhealthy ones (a shard whose
        whole replica set is marked down is still *attempted* — health
        data may be stale, and connection-refused fails in
        microseconds)."""
        replicas = self._cluster.replicas(shard)
        with self._lock:
            healthy = [
                key
                for key in replicas
                if key not in tried and self._healthy.get(key, True)
            ]
            if healthy:
                return healthy[0]
        for key in replicas:
            if key not in tried:
                return key
        return None

    def _scatter(
        self,
        make_payload: Callable[[list[int]], dict],
        parse: Callable | None = None,
    ) -> tuple[list[list], dict]:
        """Fan one request out across the cluster.

        Returns ``(group_records, partial_info)`` where each element of
        ``group_records`` is one server's parsed answer (by default its
        rank-ordered record list; ``parse(response, key)`` overrides
        the extraction, e.g. for ``multi_search`` result lists) and
        ``partial_info`` is ``{}`` when every shard answered, else
        ``{"missing_shards": [...], "failed_servers": [...]}``.

        Each shard gets at most two attempts (primary pick + one
        failover replica), all under a single deadline budget.
        """
        deadline = time.monotonic() + (
            self._deadline * self._take_deadline_fraction()
        )
        with self._lock:
            self._fanouts += 1
        tried: dict[int, set[str]] = {
            shard: set() for shard in range(self._cluster.num_shards)
        }
        pending = list(range(self._cluster.num_shards))
        group_records: list[list] = []
        failed_servers: set[str] = set()
        retried: set[int] = set()
        for attempt in (0, 1):
            if not pending:
                break
            # group this wave's shards by their chosen server so one
            # request per server covers all its shards
            groups: dict[str, list[int]] = {}
            unservable: list[int] = []
            for shard in pending:
                key = self._pick(shard, tried[shard])
                if key is None:
                    unservable.append(shard)
                    continue
                tried[shard].add(key)
                groups.setdefault(key, []).append(shard)
            if attempt:
                retried.update(
                    shard for shards in groups.values() for shard in shards
                )
                with self._lock:
                    self._retries += len(groups)
            futures = {
                self._executor.submit(
                    self._call_group, key, shards, make_payload, deadline,
                    parse,
                ): (key, shards)
                for key, shards in groups.items()
            }
            pending = unservable
            error: ReproError | None = None
            for future, (key, shards) in futures.items():
                records, failure = future.result()
                if failure is None:
                    group_records.append(records)
                elif isinstance(failure, ServerBusyError):
                    # overloaded, not dead: fail over to a replica but
                    # leave the server in the rotation — the next probe
                    # would only revive it anyway
                    failed_servers.add(key)
                    with self._lock:
                        self._busy_sheds += 1
                    pending.extend(shards)
                elif isinstance(failure, ReproError) and not isinstance(
                    failure, StoreCorruptError
                ):
                    # a query error (unknown item, bad parameter…) is
                    # the *answer*, not a server failure — remember it,
                    # but keep draining futures first
                    error = failure
                else:
                    failed_servers.add(key)
                    self._mark_down(key)
                    pending.extend(shards)
            if error is not None:
                raise error
        partial: dict = {}
        if pending:
            with self._lock:
                self._partials += 1
            partial = {
                "missing_shards": sorted(pending),
                "failed_servers": sorted(failed_servers),
            }
            if retried:
                partial["retried_shards"] = sorted(retried)
        return group_records, partial

    def _call_group(
        self,
        key: str,
        shards: list[int],
        make_payload: Callable[[list[int]], dict],
        deadline: float,
        parse: Callable | None = None,
    ):
        """One server request covering ``shards``; returns
        ``(records, failure)`` with exactly one of the two set."""
        timeout = max(_MIN_TIMEOUT, deadline - time.monotonic())
        start = time.monotonic()
        try:
            response = self._clients[key].request(
                make_payload(shards), timeout
            )
            if parse is not None:
                records = parse(response, key)
            else:
                raw = (
                    response.get("records")
                    if isinstance(response, dict)
                    else None
                )
                if raw is None:
                    raise StoreCorruptError(
                        f"server {key} sent a malformed response"
                    )
                records = [
                    (tuple(coded), frequency, tuple(names))
                    for coded, frequency, names in raw
                ]
        except Exception as exc:  # noqa: BLE001 - sorted by the caller
            return None, exc
        finally:
            elapsed = time.monotonic() - start
            with self._lock:
                for shard in shards:
                    self._shard_hists[shard].observe(elapsed)
        return records, None

    def _set_partial(self, partial: dict) -> None:
        self._tls.partial = partial or None

    def take_partial(self) -> dict | None:
        """Degradation info for the *calling thread's* latest query
        (``None`` when it covered every shard).  Reading clears it."""
        partial = getattr(self._tls, "partial", None)
        self._tls.partial = None
        return partial

    def _take_deadline_fraction(self) -> float:
        """Deadline scale for this thread's next fan-out, consumed once.

        A query :meth:`estimate_cost` just priced inherits a deadline
        proportional to its estimate — cheap lookups fail over fast
        instead of waiting a broad-scan budget, expensive scans keep
        the full deadline.  Without an estimate the full budget stands.
        """
        cost = getattr(self._tls, "last_cost", None)
        self._tls.last_cost = None
        if cost is None:
            return 1.0
        return min(
            1.0, max(MIN_DEADLINE_FRACTION, cost / COST_FULL_DEADLINE)
        )

    # ------------------------------------------------------------------
    # backend surface
    # ------------------------------------------------------------------

    def estimate_cost(self, query) -> CostEstimate | None:
        """Cluster-level planner estimate for the query, or ``None``
        when no server can price it (all down, or servers predating the
        ``estimate`` op — admission then simply skips the gate, it
        never fails the query).

        One healthy server is asked for its slice's estimate, which is
        scaled by the shard ratio to cover the whole cluster (shards
        partition the patterns, so slice costs extrapolate linearly).
        Estimates are cached per normalized query, and the returned
        cost arms the calling thread's fan-out deadline scale.
        """
        tokens = normalize_query(query)
        with self._lock:
            cached = self._estimate_cache.get(tokens)
            if cached is not None:
                self._estimate_cache.move_to_end(tokens)
        if cached is not None:
            self._tls.last_cost = cached.cost
            return cached
        wire = encode_tokens(tokens)
        with self._lock:
            ranked = sorted(
                self._cluster.servers,
                key=lambda key: not self._healthy.get(key, True),
            )
        estimate: CostEstimate | None = None
        for key in ranked:
            try:
                response = self._clients[key].request(
                    {"v": PROTOCOL_VERSION, "op": "estimate", "tokens": wire},
                    self._health_timeout,
                )
            except (OSError, EOFError, ConnectionError):
                self._mark_down(key)
                continue
            except ReproError:
                # a pre-planner server answers "unknown op"; a genuine
                # query error will surface from the search that follows
                return None
            raw = (
                response.get("estimate")
                if isinstance(response, dict)
                else None
            )
            if not isinstance(raw, dict):
                return None
            covered = max(1, int(raw.get("shards", 1)))
            scale = self._cluster.num_shards / covered
            estimate = CostEstimate(
                cost=float(raw.get("cost", 0)) * scale,
                strategy=str(raw.get("strategy", "mixed")),
                candidates=int(raw.get("candidates", 0) * scale),
                scan_candidates=int(raw.get("scan_candidates", 0) * scale),
                shards=self._cluster.num_shards,
            )
            break
        if estimate is None:
            return None
        with self._lock:
            self._estimate_cache[tokens] = estimate
            self._estimate_cache.move_to_end(tokens)
            while len(self._estimate_cache) > _ESTIMATE_CACHE_CAP:
                self._estimate_cache.popitem(last=False)
        self._tls.last_cost = estimate.cost
        return estimate

    # ------------------------------------------------------------------
    # batched scatter (the /batch endpoint's wire path)
    # ------------------------------------------------------------------

    def prefetch(self, pairs) -> None:
        """Fetch many queries in one ``multi_search`` frame per server.

        ``pairs`` is a list of ``(normalized_tokens, min_freq)`` the
        caller is about to :meth:`search`; answers are parked on the
        calling thread and consumed (popped) by matching ``search``
        calls, so a batch pays one scatter instead of one per query.
        Per-query errors are parked too and re-raised by the matching
        ``search`` — identical outcomes to the per-query wire path.

        Against a cluster that predates ``multi_search`` the first
        attempt fails, batching turns itself off, and the per-query
        path silently takes over.  Best-effort by design: no parked
        answer ⇒ ``search`` just fans out as usual.
        """
        if self._multi_ok is False:
            return
        unique: list[tuple] = []
        seen: set[tuple] = set()
        for tokens, min_freq in pairs:
            key = (tokens, min_freq)
            if key not in seen:
                seen.add(key)
                unique.append(key)
        if len(unique) < 2:
            return  # a single query gains nothing over the plain path
        queries = [
            {
                "tokens": encode_tokens(tokens),
                "limit": None,
                "min_freq": min_freq,
            }
            for tokens, min_freq in unique
        ]

        def make_payload(shards: list[int]) -> dict:
            return {
                "v": PROTOCOL_VERSION,
                "op": "multi_search",
                "shards": shards,
                "queries": queries,
            }

        def parse(response, key: str) -> list:
            results = (
                response.get("results")
                if isinstance(response, dict)
                else None
            )
            if not isinstance(results, list) or len(results) != len(unique):
                raise StoreCorruptError(
                    f"server {key} sent a malformed multi_search response"
                )
            parsed = []
            for entry in results:
                if isinstance(entry, dict) and "error" in entry:
                    parsed.append(decode_error(entry["error"]))
                elif isinstance(entry, dict) and isinstance(
                    entry.get("records"), list
                ):
                    parsed.append(
                        [
                            (tuple(coded), frequency, tuple(names))
                            for coded, frequency, names in entry["records"]
                        ]
                    )
                else:
                    raise StoreCorruptError(
                        f"server {key} sent a malformed multi_search entry"
                    )
            return parsed

        # the batched scatter does many queries' work: it gets the full
        # deadline budget, never a stale single-query fraction left by
        # an estimate whose fan-out was satisfied from a parked answer
        self._tls.last_cost = None
        try:
            groups, partial = self._scatter(make_payload, parse=parse)
        except ReproError:
            # a server that predates (or rejects) multi_search answers
            # with a query error; don't try batching again
            self._multi_ok = False
            return
        self._multi_ok = True
        prefetched: dict = {}
        for index, key in enumerate(unique):
            streams = []
            error: BaseException | None = None
            for group in groups:
                entry = group[index]
                if isinstance(entry, BaseException):
                    error = entry
                else:
                    streams.append(entry)
            if error is not None:
                prefetched[key] = (error, partial)
            else:
                merged = list(heapq.merge(*streams, key=_record_key))
                prefetched[key] = (merged, partial)
        self._tls.prefetched = prefetched

    def discard_prefetch(self) -> None:
        """Drop the calling thread's parked batch answers (the batch
        loop's cleanup — never let one batch's answers leak into the
        next)."""
        self._tls.prefetched = None

    def _take_prefetched(self, tokens, min_freq):
        prefetched = getattr(self._tls, "prefetched", None)
        if not prefetched:
            return None
        return prefetched.pop((tokens, min_freq), None)

    def search(
        self,
        query,
        limit: int | None = None,
        min_freq: int | None = None,
    ) -> list[QueryMatch]:
        """Fan the normalized query out and merge the partial answers.

        Per-shard σ cuts compose (rank order makes ``min_freq`` a
        stream prefix) and ``limit`` pushes down as a per-server upper
        bound, re-applied globally after the merge.
        """
        normalized = normalize_query(query)
        parked = self._take_prefetched(normalized, min_freq)
        if parked is not None:
            # no fan-out happens: drop the deadline fraction this
            # query's estimate armed, or it would leak into the next
            # unrelated scatter on this thread
            self._tls.last_cost = None
            result, partial = parked
            self._set_partial(partial)
            if isinstance(result, BaseException):
                raise result
            # the parked answer is the full merged stream (limit=None),
            # so any limit is a prefix of it — identical to push-down
            matches = result if limit is None else result[:limit]
            return [
                QueryMatch(names, frequency)
                for _, frequency, names in matches
            ]
        tokens = encode_tokens(normalized)

        def make_payload(shards: list[int]) -> dict:
            return {
                "v": PROTOCOL_VERSION,
                "op": "search",
                "tokens": tokens,
                "shards": shards,
                "limit": limit,
                "min_freq": min_freq,
            }

        groups, partial = self._scatter(make_payload)
        merged = heapq.merge(*groups, key=_record_key)
        if limit is not None:
            merged = itertools.islice(merged, limit)
        self._set_partial(partial)
        return [
            QueryMatch(names, frequency) for _, frequency, names in merged
        ]

    def top(self, n: int) -> list[QueryMatch]:
        """Global top-``n``: per-server top-``n`` streams merged, first
        ``n`` kept."""

        def make_payload(shards: list[int]) -> dict:
            return {
                "v": PROTOCOL_VERSION,
                "op": "top",
                "n": n,
                "shards": shards,
            }

        groups, partial = self._scatter(make_payload)
        merged = itertools.islice(heapq.merge(*groups, key=_record_key), n)
        self._set_partial(partial)
        return [
            QueryMatch(names, frequency) for _, frequency, names in merged
        ]

    def __len__(self) -> int:
        """Total patterns across the cluster's shards.

        Scatters one ``status`` per server until every shard is
        counted; the total is cached once complete (the distributed
        tier serves one store generation).  With servers down this
        returns the reachable shards' count, uncached.
        """
        with self._lock:
            if self._patterns_total is not None:
                return self._patterns_total
        counts: dict[int, int] = {}
        asked: set[str] = set()
        for shard in range(self._cluster.num_shards):
            if shard in counts:
                continue
            for key in self._cluster.replicas(shard):
                if key in asked:
                    continue
                asked.add(key)
                try:
                    status = self._clients[key].request(
                        {"v": PROTOCOL_VERSION, "op": "status"},
                        self._health_timeout,
                    )
                except (OSError, EOFError, ConnectionError, ReproError):
                    continue
                for index, patterns in status["patterns_by_shard"].items():
                    counts[int(index)] = patterns
                if shard in counts:
                    break
        total = sum(counts.values())
        if len(counts) == self._cluster.num_shards:
            with self._lock:
                self._patterns_total = total
        return total

    def describe(self) -> dict:
        # cluster facts first: the per-server health map below must win
        # over ClusterMap.describe()'s plain server list
        info = self._cluster.describe()
        client_stats = {
            key: self._clients[key].stats()
            for key in sorted(self._clients)
        }
        with self._lock:
            info.update({
                "router": True,
                "fanouts": self._fanouts,
                "fanout_retries": self._retries,
                "server_failures": self._server_failures,
                "busy_sheds": self._busy_sheds,
                "partial_results": self._partials,
                "pipeline": {
                    "depth": self._pipeline_depth,
                    "compress": self._compress,
                    "wire": self._wire,
                    "batched_scatter": self._multi_ok,
                    "fanout_workers": self._fanout_workers,
                },
                "wire": merge_wire_snapshots(
                    stats["wire"] for stats in client_stats.values()
                ),
                "servers": {
                    key: {
                        "healthy": self._healthy[key],
                        "http_port": self._cluster.servers[key].http_port,
                        "wire_mode": client_stats[key]["mode"],
                        "in_flight": client_stats[key]["in_flight"],
                    }
                    for key in sorted(self._cluster.servers)
                },
                "fanout_latency": {
                    str(shard): hist.snapshot()
                    for shard, hist in sorted(self._shard_hists.items())
                },
            })
        return info

    def close(self) -> None:
        if self._health_stop is not None:
            self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)
            self._health_thread = None
        self._executor.shutdown(wait=False)
        for client in self._clients.values():
            client.close()


__all__ = [
    "ClusterMap",
    "RouterBackend",
    "ServerSpec",
    "ShardClient",
    "plan_placement",
]
