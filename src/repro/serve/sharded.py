"""Sharded pattern stores: one logical index over many store files.

A corpus whose postings outgrow one comfortable ``mmap`` is split across
shard files at build time (:func:`~repro.serve.writer.write_sharded_store`):
every pattern lives in the shard selected by a stable hash of its first
item's *name*, and all shards carry the identical shared vocabulary.
:class:`ShardedPatternStore` presents the set as a single
:class:`~repro.query.base.PatternSearchBase` backend:

* each shard opens lazily (O(header) + mmap) the first time a query
  touches it, so ``open()`` on the directory reads only the manifest;
* ranked read paths — search, iteration, top-k, hierarchy navigation —
  k-way merge the shards' rank-ordered streams with a heap keyed by the
  shared :func:`~repro.query.base.rank_key`, so answers are
  byte-identical to a single-file store of the same patterns;
* exact lookups route straight to the owning shard via the same hash
  the writer used — one shard touched, not N.

:func:`open_store` dispatches on the path (directory with manifest →
sharded, file → single) so callers serve either layout transparently.
"""

from __future__ import annotations

import heapq
import threading
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import InvalidParameterError, StoreCorruptError
from repro.hierarchy.vocabulary import Vocabulary
from repro.query.base import (
    CompiledToken,
    Pattern,
    PatternSearchBase,
    rank_key,
)
from repro.query.cost import CostEstimate, combine_estimates
from repro.query.plan import PositionSpace
from repro.query.tokens import normalize_query
from repro.serve.format import is_sharded_store, read_manifest, shard_of
from repro.serve.store import PatternStore


class ShardedPatternStore(PatternSearchBase):
    """Read a shard-set directory as one pattern search backend.

    Parameters mirror :class:`~repro.serve.store.PatternStore`; the
    cache sizes apply **per shard** (each shard is its own store with
    its own decode caches).  Opening reads only ``manifest.json``;
    shard files are opened on first use, under a lock, and reused.

    Use as a context manager or call :meth:`close` to release all maps.
    """

    def __init__(
        self,
        path: str | Path,
        pattern_cache_size: int = 1 << 16,
        postings_cache_size: int = 1 << 12,
        verify_checksums: bool = True,
        shard_subset: Sequence[int] | None = None,
    ) -> None:
        """``shard_subset`` mounts only the named shard indexes — the
        distributed tier's shard servers each own a slice of one
        manifest.  Ranked reads cover exactly the owned shards; exact
        lookups whose hash routes to an unmounted shard are refused
        (the router, which knows the whole cluster, owns that routing).
        """
        super().__init__()
        self._path = Path(path)
        self._manifest = read_manifest(self._path)
        self._files: list[str] = self._manifest["shard_files"]
        if shard_subset is None:
            self._owned: tuple[int, ...] = tuple(range(len(self._files)))
        else:
            owned = sorted(set(shard_subset))
            if not owned:
                raise InvalidParameterError("shard_subset must not be empty")
            if owned[0] < 0 or owned[-1] >= len(self._files):
                raise InvalidParameterError(
                    f"shard_subset {owned} out of range for "
                    f"{len(self._files)} shards"
                )
            self._owned = tuple(owned)
        self._owned_set = frozenset(self._owned)
        self._subset_counts: tuple[int, int] | None = None
        self._pattern_cache_size = pattern_cache_size
        self._postings_cache_size = postings_cache_size
        self._verify_checksums = verify_checksums
        self._open_lock = threading.Lock()
        self._stores: list[PatternStore | None] = [None] * len(self._files)
        # pin every owned shard's inode now (no reads — decode stays
        # lazy): online compaction may unlink this generation's files
        # while this handle lives, and a shard first touched after that
        # must still find its data
        self._pins: list = [None] * len(self._files)
        try:
            for index in self._owned:
                self._pins[index] = open(
                    self._path / self._files[index], "rb"
                )
        except FileNotFoundError as exc:
            for pin in self._pins:
                if pin is not None:
                    pin.close()
            raise StoreCorruptError(
                f"{self._path}: manifest references missing shard file "
                f"({exc.filename})"
            ) from None
        self._shared_vocab: Vocabulary | None = None
        # one PositionSpace build shared by every shard: the first
        # positional query triggers a single global build, sliced into
        # per-shard views (see _shard_space)
        self._space_lock = threading.Lock()
        self._space_slices: dict[int, PositionSpace] | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_shards(self) -> int:
        return len(self._files)

    @property
    def owned_shards(self) -> tuple[int, ...]:
        """Shard indexes this handle mounts (all of them unless opened
        with ``shard_subset``)."""
        return self._owned

    @property
    def generation(self) -> int:
        """Manifest generation this handle serves.  Online compaction
        (:class:`~repro.serve.compact.StoreCompactor`) bumps it on every
        manifest swap; a server compares it against the on-disk manifest
        to decide when to reopen."""
        return self._manifest.get("generation", 0)

    @property
    def ingested_through(self) -> int | None:
        """Freshness watermark: sequence number (exclusive) through which
        ingest deltas have been folded into this generation, or ``None``
        for a store never touched by ``lash ingest``."""
        ingest = self._manifest.get("ingest")
        if isinstance(ingest, dict):
            value = ingest.get("ingested_through")
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        return None

    @property
    def retained_from(self) -> int | None:
        """Retention horizon: first sequence number still contributing
        support (earlier ones were retired), or ``None`` without ingest."""
        ingest = self._manifest.get("ingest")
        if isinstance(ingest, dict):
            value = ingest.get("retained_from")
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        return None

    def _shard(self, index: int) -> PatternStore:
        if index not in self._owned_set:
            raise InvalidParameterError(
                f"shard {index} is not mounted by this handle "
                f"(owned: {list(self._owned)})"
            )
        store = self._stores[index]
        if store is None:
            with self._open_lock:
                store = self._stores[index]
                if store is None:
                    if self._closed:
                        raise ValueError("sharded store is closed")
                    # hand the pin over before constructing: a failed
                    # open (e.g. CRC mismatch) closes the handle, and a
                    # poisoned slot would turn every retry into a
                    # ValueError on a closed file instead of the real
                    # store error.  Retries fall back to a path open.
                    pin = self._pins[index]
                    self._pins[index] = None
                    store = PatternStore(
                        self._path / self._files[index],
                        pattern_cache_size=self._pattern_cache_size,
                        postings_cache_size=self._postings_cache_size,
                        verify_checksums=self._verify_checksums,
                        # one decoded vocabulary serves every shard
                        vocabulary=self._shared_vocab,
                        # the handle pinned at mount time: reads work
                        # even if the path was since unlinked
                        fileobj=pin,
                    )
                    # descendant expansions (^name queries), compiled
                    # tokens, and admissible id sets are pure functions
                    # of the shared vocabulary: let shards reuse each
                    # other's results (plan caches stay per-shard —
                    # their bitmaps live in shard-local coordinates)
                    store._descendants_cache = self._descendants_cache
                    store._descendants_lock = self._descendants_lock
                    store._compile_cache = self._compile_cache
                    store._admissible_cache = self._admissible_cache
                    store._accelerate = self._accelerate
                    store._plan_order = self._plan_order
                    store._plan_strategy = self._plan_strategy
                    # shards slice one shared PositionSpace build
                    # instead of each paying the full slot loop
                    store._space_factory = (
                        lambda shard_index=index: self._shard_space(
                            shard_index
                        )
                    )
                    self._stores[index] = store
        return store

    def _shards(self) -> list[PatternStore]:
        return [self._shard(i) for i in self._owned]

    @classmethod
    def open(
        cls, path: str | Path, verify_checksums: bool = True
    ) -> "ShardedPatternStore":
        return cls(path, verify_checksums=verify_checksums)

    def close(self) -> None:
        with self._open_lock:
            self._closed = True
            for store in self._stores:
                if store is not None:
                    store.close()
            self._stores = [None] * len(self._files)
            for pin in self._pins:
                if pin is not None:
                    pin.close()
            self._pins = [None] * len(self._files)

    def __enter__(self) -> "ShardedPatternStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Aggregate metadata plus a per-shard breakdown.

        Opens every shard (each O(header)); the per-shard entries power
        ``lash index info`` and the server's ``/healthz`` / ``/metrics``.
        """
        shards = [store.describe() for store in self._shards()]
        info = {
            "path": str(self._path),
            "shards": len(self._files),
            "generation": self.generation,
            "items": self._manifest["items"],
            "patterns": self._manifest["patterns"],
            "total_frequency": self._manifest["total_frequency"],
            "max_length": max((s["max_length"] for s in shards), default=0),
            "file_bytes": sum(s["file_bytes"] for s in shards),
            "shard_stats": shards,
        }
        if isinstance(self._manifest.get("ingest"), dict):
            info["ingest"] = dict(self._manifest["ingest"])
        if len(self._owned) != len(self._files):
            # a subset mount serves only its slice; report that slice's
            # counts, not the whole manifest's
            info["owned_shards"] = list(self._owned)
            info["patterns"] = sum(s["patterns"] for s in shards)
            info["total_frequency"] = sum(
                s["total_frequency"] for s in shards
            )
        return info

    # ------------------------------------------------------------------
    # storage primitives / rank-ordered streams
    # ------------------------------------------------------------------

    def _vocabulary_instance(self) -> Vocabulary:
        # every shard stores the identical shared vocabulary: decode it
        # once (from whichever shard opens first) and hand the one copy
        # to shards opened later
        if self._shared_vocab is None:
            vocabulary = self._shard(self._owned[0]).vocabulary
            with self._open_lock:
                if self._shared_vocab is None:
                    self._shared_vocab = vocabulary
                # shards opened before the first vocabulary access (e.g.
                # by describe()) adopt the shared copy too
                for store in self._stores:
                    if store is not None and store._vocab is None:
                        store._vocab = self._shared_vocab
        return self._shared_vocab

    def _num_patterns(self) -> int:
        if len(self._owned) == len(self._files):
            return self._manifest["patterns"]
        if self._subset_counts is None:
            # O(header) per owned shard, computed once: the manifest
            # only knows the whole set's totals
            shards = self._shards()
            self._subset_counts = (
                sum(s._num_patterns() for s in shards),
                sum(s._total_frequency for s in shards),
            )
        return self._subset_counts[0]

    def _iter_ranked(self) -> Iterator[tuple[Pattern, int]]:
        return heapq.merge(
            *(store._iter_ranked() for store in self._shards()), key=rank_key
        )

    def _iter_search(
        self, compiled: list[CompiledToken]
    ) -> Iterator[tuple[Pattern, int]]:
        # the compiled ids and id sets are valid in every shard (shared
        # vocabulary); per-shard streams are rank-ordered, so the heap
        # interleaves them into exactly the order one monolithic store
        # would emit
        return heapq.merge(
            *(store._iter_search(compiled) for store in self._shards()),
            key=rank_key,
        )

    def _iter_itemwise(
        self, coded: Pattern, upward: bool
    ) -> Iterator[tuple[Pattern, int]]:
        return heapq.merge(
            *(store._iter_itemwise(coded, upward) for store in self._shards()),
            key=rank_key,
        )

    def _find_coded(self, coded: Pattern) -> int | None:
        if not coded:
            return None
        # the writer routed this pattern by its first item's name; the
        # same hash finds the one shard that can hold it
        name = self.vocabulary.name(coded[0])
        return self._shard(shard_of(name, len(self._files)))._find_coded(coded)

    def _pattern_at(self, idx: int):  # pragma: no cover - defensive
        raise NotImplementedError(
            "sharded stores have no global pattern numbering; "
            "use the rank-ordered iterators"
        )

    def _postings_for(self, item_id: int):  # pragma: no cover - defensive
        raise NotImplementedError(
            "sharded stores have no global postings; "
            "use the rank-ordered iterators"
        )

    def _length_groups(self):  # pragma: no cover - defensive
        raise NotImplementedError(
            "sharded stores have no global length groups; "
            "use the rank-ordered iterators"
        )

    # ------------------------------------------------------------------
    # query-plan plumbing
    # ------------------------------------------------------------------

    def set_accelerate(self, enabled: bool) -> None:
        """Toggle compiled-plan execution on this handle and every
        already-open shard (shards opened later inherit the setting)."""
        self._accelerate = enabled
        with self._open_lock:
            for store in self._stores:
                if store is not None:
                    store._accelerate = enabled

    def set_planner(
        self, order: str = "cost", strategy: str | None = None
    ) -> None:
        """Set the planner knobs on this handle and every already-open
        shard (shards opened later inherit them at mount time)."""
        super().set_planner(order, strategy)
        with self._open_lock:
            for store in self._stores:
                if store is not None:
                    store._plan_order = order
                    store._plan_strategy = strategy

    def _shard_space(self, index: int) -> PositionSpace:
        """The shard's slice of one shared :class:`PositionSpace`.

        The per-slot build loop is the expensive part of a cold
        positional query; building it once over the concatenated owned
        shards' lengths and slicing per shard (two big-int shifts each)
        turns a shard-count-fold cold start into a single build.  The
        global pad keeps every slice's window algebra identical to a
        direct per-shard build."""
        with self._space_lock:
            if self._space_slices is None:
                lengths: list[int] = []
                counts: list[tuple[int, int]] = []
                for shard_index in self._owned:
                    shard_lengths = self._shard(
                        shard_index
                    )._pattern_lengths()
                    counts.append((shard_index, len(shard_lengths)))
                    lengths.extend(shard_lengths)
                space = PositionSpace(lengths)
                self._space_builds += 1
                slices: dict[int, PositionSpace] = {}
                first = 0
                for shard_index, n_fields in counts:
                    slices[shard_index] = space.slice_fields(
                        first, n_fields
                    )
                    first += n_fields
                self._space_slices = slices
            return self._space_slices[index]

    def estimate_cost(self, query) -> CostEstimate:
        """Handle-level cost estimate: the per-shard estimates summed
        (shards partition the patterns, so their work adds)."""
        compiled = self._compile(normalize_query(query))
        return combine_estimates(
            shard._plan_for(compiled).estimate(shard)
            for shard in self._shards()
        )

    def explain(self, query) -> dict:
        """Plan shape from the first owned shard (chains are
        vocabulary-pure, hence identical across shards) with the
        handle-level combined estimate."""
        combined = self.estimate_cost(query)
        info = self._shard(self._owned[0]).explain(query)
        info["estimate"] = combined.to_dict()
        info["strategy"] = combined.strategy
        return info

    def plan_stats(self) -> dict:
        """Aggregate plan-cache counters over the currently-open shards
        (closed slots are skipped — this is a metrics read, not a reason
        to fault shards in).  ``space_builds`` counts the handle's own
        shared builds plus any per-shard builds — exactly 1 after a
        positional query, however many shards are mounted."""
        totals = {
            "entries": 0,
            "capacity": 0,
            "hits": 0,
            "compiles": 0,
            "evictions": 0,
            "space_builds": self._space_builds,
            "paths": {
                "exact": 0,
                "pruned": 0,
                "scan": 0,
                "wildcard": 0,
                "legacy": 0,
            },
        }
        with self._open_lock:
            open_stores = [s for s in self._stores if s is not None]
        for store in open_stores:
            stats = store.plan_stats()
            totals["entries"] += stats["entries"]
            totals["capacity"] += stats["capacity"]
            totals["hits"] += stats["hits"]
            totals["compiles"] += stats["compiles"]
            totals["evictions"] += stats["evictions"]
            totals["space_builds"] += stats["space_builds"]
            for path, count in stats["paths"].items():
                totals["paths"][path] += count
        return totals


def open_store(
    path: str | Path,
    pattern_cache_size: int = 1 << 16,
    postings_cache_size: int = 1 << 12,
    verify_checksums: bool = True,
) -> PatternStore | ShardedPatternStore:
    """Open a store path of either layout.

    A directory containing a shard manifest opens as a
    :class:`ShardedPatternStore`; anything else as a single-file
    :class:`~repro.serve.store.PatternStore`.  Serving code calls this
    and never needs to know which it got.
    """
    cls = ShardedPatternStore if is_sharded_store(path) else PatternStore
    return cls(
        path,
        pattern_cache_size=pattern_cache_size,
        postings_cache_size=postings_cache_size,
        verify_checksums=verify_checksums,
    )


__all__ = ["ShardedPatternStore", "open_store"]
