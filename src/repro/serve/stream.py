"""Bounded-memory record streams: spill runs and external sorting.

The store pipeline (build → write → merge → compact) is expressed over
streams of ``(coded_pattern, frequency)`` records.  Streams arriving in
the wrong order for the next stage — e.g. per-source rank order when the
merge needs merged-vocabulary pattern order — are re-sorted here with a
classic external sort: records accumulate in a bounded in-memory buffer,
full buffers are sorted and spilled to anonymous temp files, and the
sorted runs are k-way heap-merged back into one ordered stream.  Peak
memory is O(buffer + runs), never O(records); when everything fits in
one buffer no file is ever created.

Run files use the store codec (:mod:`repro.io.codec`): each record is a
length-prefixed blob of ``write_sequence(pattern)`` + the zigzag-coded
frequency, so a run reader needs only a small read-ahead, not the whole
run.  Frequencies are signed here because delta merges flow decrement
records (negative frequencies) through the same spill machinery.
"""

from __future__ import annotations

import heapq
import tempfile
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import EncodingError
from repro.io.codec import (
    read_sequence,
    read_uvarint,
    write_sequence,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)

Record = tuple[tuple[int, ...], int]

#: records per in-memory sort run; the one knob bounding pipeline memory
DEFAULT_SORT_BUFFER = 8192


def write_record(buf: bytearray, pattern: tuple[int, ...], frequency: int) -> None:
    """Append one length-prefixed record to ``buf``."""
    payload = bytearray()
    write_sequence(payload, pattern)
    write_uvarint(payload, zigzag_encode(frequency))
    write_uvarint(buf, len(payload))
    buf.extend(payload)


def read_file_uvarint(f: IO[bytes]) -> int | None:
    """One uvarint from a (buffered) file; ``None`` at clean EOF."""
    value = 0
    shift = 0
    while True:
        byte = f.read(1)
        if not byte:
            if shift:
                raise EncodingError("truncated uvarint in spill run")
            return None
        value |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise EncodingError("uvarint too long in spill run")


def iter_run(f: IO[bytes]) -> Iterator[Record]:
    """Decode a spilled run file from its start."""
    f.seek(0)
    while True:
        size = read_file_uvarint(f)
        if size is None:
            return
        payload = f.read(size)
        if len(payload) < size:
            raise EncodingError("truncated record in spill run")
        pattern, offset = read_sequence(payload, 0)
        frequency, _ = read_uvarint(payload, offset)
        yield pattern, zigzag_decode(frequency)


#: io buffer of one spill-run file; kept small because the number of
#: open runs grows with the data (runs ≈ records / buffer_records), so
#: per-run buffers are the one memory term that scales
RUN_BUFFERING = 1 << 12


def spill_run(records: Iterable[Record], spill_dir: str | Path | None) -> IO[bytes]:
    """Write records to an anonymous temp file (deleted on close)."""
    f = tempfile.TemporaryFile(
        prefix="repro-spill-",
        dir=None if spill_dir is None else str(spill_dir),
        buffering=RUN_BUFFERING,
    )
    buf = bytearray()
    try:
        for pattern, frequency in records:
            write_record(buf, pattern, frequency)
            if len(buf) >= 1 << 16:
                f.write(buf)
                buf.clear()
        if buf:
            f.write(buf)
    except BaseException:
        f.close()
        raise
    return f


def sorted_records(
    records: Iterable[Record],
    key,
    buffer_records: int = DEFAULT_SORT_BUFFER,
    spill_dir: str | Path | None = None,
) -> Iterator[Record]:
    """Yield ``records`` sorted by ``key`` in bounded memory.

    Consumes the input fully (a sort cannot emit before it has seen the
    last record), spilling every ``buffer_records`` as a sorted run.  A
    stream that fits one buffer is sorted purely in memory.  Run files
    are closed (and thereby deleted) once the output is exhausted or the
    generator is discarded.
    """
    if buffer_records < 1:
        raise EncodingError(
            f"sort buffer must be >= 1 record, got {buffer_records}"
        )
    buffer: list[Record] = []
    runs: list[IO[bytes]] = []
    try:
        for record in records:
            buffer.append(record)
            if len(buffer) >= buffer_records:
                buffer.sort(key=key)
                runs.append(spill_run(buffer, spill_dir))
                buffer = []
        buffer.sort(key=key)
        if not runs:
            yield from buffer
            return
        streams: list[Iterator[Record]] = [iter_run(run) for run in runs]
        if buffer:
            streams.append(iter(buffer))
        yield from heapq.merge(*streams, key=key)
    finally:
        for run in runs:
            run.close()


def sum_equal_patterns(records: Iterable[Record]) -> Iterator[Record]:
    """Collapse a pattern-ordered stream: adjacent records with the same
    pattern become one record with their frequencies summed — document
    support adds over a disjoint union of corpora, so this is exactly
    the merge semantics of :func:`~repro.serve.writer.merge_stores`."""
    iterator = iter(records)
    try:
        pattern, frequency = next(iterator)
    except StopIteration:
        return
    for next_pattern, next_frequency in iterator:
        if next_pattern == pattern:
            frequency += next_frequency
        else:
            yield pattern, frequency
            pattern, frequency = next_pattern, next_frequency
    yield pattern, frequency


__all__ = [
    "Record",
    "DEFAULT_SORT_BUFFER",
    "RUN_BUFFERING",
    "write_record",
    "read_file_uvarint",
    "iter_run",
    "spill_run",
    "sorted_records",
    "sum_equal_patterns",
]
