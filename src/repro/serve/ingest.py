"""Live ingestion: continuously-fresh serving without re-mining.

``lash ingest`` turns the mine-once/serve-many split into a closed loop::

    index build  →  lash ingest add/retire  →  CompactionDaemon  →  serve

The correctness backbone is two additivity facts of the paper's
statistics: pattern frequency is *document support*, which adds over a
disjoint union of corpora, and the generalized f-list ``f0(w, D)`` is a
per-sequence sum.  So mining **only the touched sequences** at σ=1
(:func:`~repro.core.lash.micro_mine`) and folding the result into the
live store is exactly equivalent to re-mining the whole corpus; retiring
sequences (sliding-window retention) is the same micro-mine with every
frequency *negated* (:func:`~repro.query.build.negate_vocabulary`), so
the decrement delta subtracts precisely what those sequences once
contributed.  :func:`~repro.serve.writer.merge_stores` and the
:class:`~repro.serve.compact.StoreCompactor` drop any pattern whose
summed support falls below one — byte-identical to a fresh mine of the
retained corpus (at σ=1 over a stable hierarchy; see the README's
"Live ingestion" section for the exact caveats).

:class:`Ingestor` owns a small state directory next to the corpus:

* ``journal.jsonl`` — one line per ingested sequence, append-only; the
  journal is the durable corpus of record (retire re-reads it to mine
  the decrement) and its line count *is* the next sequence number.
* ``ingest.json`` — published/retained watermarks plus the mining
  parameters, rewritten atomically.

Deltas are published into the compaction spool with a torn-write-proof
protocol: the store is staged under a ``.part`` name the daemon never
scans, a JSON sidecar carrying the payload CRC-32 and the sequence
watermarks is renamed into place first, and only then does the delta
itself get its final ``<name>.store`` name.  A ``.store`` file with a
sidecar is therefore complete by construction, a torn publish leaves
only invisible staging files, and the daemon CRC-verifies every
sidecarred delta before folding it (mismatch → quarantine).  Delta
names are deterministic functions of the sequence ranges they cover,
so a crash between publish and state write is healed by rescanning the
spool — the delta is found, never re-published, never double-applied.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import EncodingError, StoreCorruptError

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

STATE_NAME = "ingest.json"
JOURNAL_NAME = "journal.jsonl"
STATE_FORMAT = "repro-ingest-state"
STATE_VERSION = 1

#: published delta names: the sequence range is the identity, so a
#: crashed publish is recognized by rescanning the spool, not replayed
_DELTA_NAME_RE = re.compile(
    r"(?P<kind>delta|retire)-(?P<from>\d{8})-(?P<through>\d{8})\.store"
    r"(\.\d+)?"  # the daemon suffixes archived duplicates
)


def _delta_name(kind: str, from_seq: int, through_seq: int) -> str:
    return f"{kind}-{from_seq:08d}-{through_seq:08d}.store"


class Ingestor:
    """Append and retire sequences against a live sharded store.

    Create the state once with :meth:`init`, then reattach with
    :meth:`open` — all later invocations need only the state directory.
    :meth:`add` journals a batch and publishes its increment delta;
    :meth:`retire` drops the oldest sequences by publishing a decrement
    delta mined from the journal.  Both are synchronous: when they
    return, the delta (and everything pending before it) sits complete
    in the spool, and the watermarks in ``ingest.json`` reflect it.
    """

    def __init__(self, state_dir: str | Path) -> None:
        self._dir = Path(state_dir)
        state_path = self._dir / STATE_NAME
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise EncodingError(
                f"{self._dir}: no ingest state (run `lash ingest init`)"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreCorruptError(
                f"{state_path}: invalid ingest state: {exc}"
            ) from None
        if state.get("format") != STATE_FORMAT:
            raise EncodingError(f"{state_path}: not an ingest state file")
        if state.get("version") != STATE_VERSION:
            raise EncodingError(
                f"{state_path}: unsupported ingest-state version "
                f"{state.get('version')!r}"
            )
        self._state = state
        self._store = Path(state["store"])
        self._spool = Path(state["spool"])
        self._hierarchy = None  # decoded lazily from the live store

    # ------------------------------------------------------------------
    # creation / attachment
    # ------------------------------------------------------------------

    @classmethod
    def init(
        cls,
        state_dir: str | Path,
        store: str | Path,
        spool: str | Path,
        gamma: int | None = 0,
        lam: int = 5,
    ) -> "Ingestor":
        """Create the ingest state for a live store.

        ``store`` must be a *sharded* store directory (the compaction
        daemon only folds into shard sets) mined at σ=1 — the live
        store keeps every pattern with support ≥ 1 and higher σ is a
        query-time filter (``min_freq``), because a pattern dropped at
        the store level could never regain the support later increments
        give it.  ``gamma``/``lam`` must match the parameters the base
        corpus was mined with; they parameterize every micro-mine.  The
        store's manifest is stamped with the zero watermark so ``/query``
        and ``/stats`` report freshness from the first request on.
        """
        from repro.serve.format import is_sharded_store

        state_dir = Path(state_dir)
        store = Path(store)
        spool = Path(spool)
        if (state_dir / STATE_NAME).exists():
            raise EncodingError(
                f"{state_dir}: ingest state already exists"
            )
        if not is_sharded_store(store):
            raise EncodingError(
                f"{store}: not a sharded store directory; live ingestion "
                "requires a shard set (build with --shards)"
            )
        state_dir.mkdir(parents=True, exist_ok=True)
        spool.mkdir(parents=True, exist_ok=True)
        (state_dir / JOURNAL_NAME).touch()
        state = {
            "format": STATE_FORMAT,
            "version": STATE_VERSION,
            "store": str(store),
            "spool": str(spool),
            "gamma": gamma,
            "lam": lam,
            "published_through": 0,
            "retained_from": 0,
        }
        _write_json(state_dir / STATE_NAME, state)
        _stamp_manifest(store, {"ingested_through": 0, "retained_from": 0})
        return cls(state_dir)

    @classmethod
    def open(cls, state_dir: str | Path) -> "Ingestor":
        return cls(state_dir)

    # ------------------------------------------------------------------
    # the public operations
    # ------------------------------------------------------------------

    def add(self, sequences) -> dict:
        """Journal a batch of sequences and publish its increment delta.

        Every item must already exist in the live store's hierarchy
        (stable-hierarchy requirement — an unknown item raises before
        anything is journaled).  Returns a report of what was published.
        """
        batch = [tuple(seq) for seq in sequences]
        if not batch:
            raise EncodingError("ingest batch is empty")
        if any(not seq for seq in batch):
            raise EncodingError("ingest batch contains an empty sequence")
        hierarchy = self._hierarchy_instance()
        for seq in batch:
            for item in seq:
                if item not in hierarchy:
                    raise EncodingError(
                        f"item {item!r} is not in the live store's "
                        "hierarchy; live ingestion requires a stable "
                        "hierarchy (rebuild the index to add items)"
                    )
        self._recover()
        next_seq = self._journal_length()
        with open(
            self._dir / JOURNAL_NAME, "a", encoding="utf-8"
        ) as journal:
            for offset, seq in enumerate(batch):
                journal.write(
                    json.dumps(
                        {"seq": next_seq + offset, "items": list(seq)},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            journal.flush()
        published = self._publish_pending()
        return {
            "from_seq": next_seq,
            "through_seq": next_seq + len(batch),
            "sequences": len(batch),
            "published": published,
            "ingested_through": self._state["published_through"],
        }

    def retire(self, count: int) -> dict:
        """Retire the ``count`` oldest retained sequences.

        Publishes a decrement delta mined from the journal; once folded,
        the store is byte-identical to a fresh σ=1 mine of the remaining
        window.  Only published sequences can retire, so pending adds are
        flushed first.
        """
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise EncodingError(f"retire count must be >= 1, got {count!r}")
        self._recover()
        self._publish_pending()
        retained_from = self._state["retained_from"]
        through = retained_from + count
        if through > self._state["published_through"]:
            raise EncodingError(
                f"cannot retire {count} sequences: only "
                f"{self._state['published_through'] - retained_from} "
                "are retained"
            )
        name = _delta_name("retire", retained_from, through)
        if not self._already_published(name):
            entries = self._journal_slice(retained_from, through)
            self._publish_delta(
                name,
                entries,
                negate=True,
                meta={
                    "kind": "retire",
                    "from_seq": retained_from,
                    "through_seq": through,
                    "retained_from": through,
                },
            )
        self._state["retained_from"] = through
        self._persist()
        return {
            "from_seq": retained_from,
            "through_seq": through,
            "sequences": count,
            "published": name,
            "retained_from": through,
        }

    def flush(self) -> dict:
        """Publish any adds journaled but not yet in the spool (crash
        recovery path; a no-op when the state is clean)."""
        self._recover()
        published = self._publish_pending()
        return {
            "published": published,
            "ingested_through": self._state["published_through"],
        }

    def status(self) -> dict:
        """Watermarks, journal size, and what still sits in the spool."""
        self._recover()
        next_seq = self._journal_length()
        pending = [
            entry.name
            for entry in sorted(self._spool.iterdir())
            if entry.is_file() and _DELTA_NAME_RE.fullmatch(entry.name)
        ]
        return {
            "state": str(self._dir),
            "store": str(self._store),
            "spool": str(self._spool),
            "gamma": self._state["gamma"],
            "lam": self._state["lam"],
            "journaled": next_seq,
            "published_through": self._state["published_through"],
            "unpublished": next_seq - self._state["published_through"],
            "retained_from": self._state["retained_from"],
            "retained": next_seq - self._state["retained_from"],
            "spool_pending": pending,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _hierarchy_instance(self):
        """The live store's hierarchy — the one every micro-mine must
        share, or item frequencies would stop adding up."""
        if self._hierarchy is None:
            from repro.serve.sharded import open_store

            with open_store(self._store) as store:
                self._hierarchy = store.vocabulary.hierarchy
        return self._hierarchy

    def _journal_length(self) -> int:
        with open(self._dir / JOURNAL_NAME, "rb") as journal:
            return sum(1 for _ in journal)

    def _journal_slice(self, start: int, stop: int) -> list[tuple[str, ...]]:
        entries: list[tuple[str, ...]] = []
        with open(
            self._dir / JOURNAL_NAME, "r", encoding="utf-8"
        ) as journal:
            for index, line in enumerate(journal):
                if index >= stop:
                    break
                if index < start:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StoreCorruptError(
                        f"{self._dir / JOURNAL_NAME}:{index + 1}: "
                        f"invalid journal line: {exc}"
                    ) from None
                if entry.get("seq") != index:
                    raise StoreCorruptError(
                        f"{self._dir / JOURNAL_NAME}:{index + 1}: journal "
                        f"line claims seq {entry.get('seq')!r}, "
                        f"expected {index}"
                    )
                entries.append(tuple(entry["items"]))
        if len(entries) != stop - start:
            raise StoreCorruptError(
                f"{self._dir / JOURNAL_NAME}: journal ends before "
                f"sequence {stop - 1}"
            )
        return entries

    def _already_published(self, name: str) -> bool:
        if (self._spool / name).exists():
            return True
        applied = self._spool / "applied"
        if (applied / name).exists():
            return True
        # the daemon suffixes name collisions while archiving
        if applied.is_dir():
            prefix = name + "."
            for entry in applied.iterdir():
                if entry.name.startswith(prefix):
                    return True
        return False

    def _recover(self) -> None:
        """Heal a crash between a publish and its state write: delta
        names are deterministic in the watermarks, so any published
        range starting at a current watermark is simply adopted."""
        changed = False
        while True:
            found = self._find_published(
                "delta", self._state["published_through"]
            )
            if found is None:
                break
            self._state["published_through"] = found
            changed = True
        while True:
            found = self._find_published(
                "retire", self._state["retained_from"]
            )
            if found is None:
                break
            self._state["retained_from"] = found
            changed = True
        if changed:
            self._persist()

    def _find_published(self, kind: str, from_seq: int) -> int | None:
        prefix = f"{kind}-{from_seq:08d}-"
        best: int | None = None
        for directory in (self._spool, self._spool / "applied"):
            if not directory.is_dir():
                continue
            for entry in directory.iterdir():
                match = _DELTA_NAME_RE.fullmatch(entry.name)
                if match is None or not entry.name.startswith(prefix):
                    continue
                through = int(match.group("through"))
                if best is None or through > best:
                    best = through
        return best

    def _publish_pending(self) -> str | None:
        """Publish one increment delta covering every journaled-but-
        unpublished sequence; returns its name (None when clean)."""
        published_through = self._state["published_through"]
        next_seq = self._journal_length()
        if published_through >= next_seq:
            return None
        name = _delta_name("delta", published_through, next_seq)
        if not self._already_published(name):
            entries = self._journal_slice(published_through, next_seq)
            self._publish_delta(
                name,
                entries,
                negate=False,
                meta={
                    "kind": "add",
                    "from_seq": published_through,
                    "through_seq": next_seq,
                    "ingested_through": next_seq,
                },
            )
        self._state["published_through"] = next_seq
        self._persist()
        return name

    def _publish_delta(
        self,
        name: str,
        sequences: list[tuple[str, ...]],
        negate: bool,
        meta: dict,
    ) -> None:
        """Micro-mine ``sequences`` and publish the signed delta.

        Publish order is the torn-write contract: stage the store under
        a ``.part`` name the spool scanner ignores, rename the CRC
        sidecar into place, and only then rename the store to its final
        ``.store`` name — so a visible delta always has a sidecar that
        vouches for its exact bytes.
        """
        from repro.core.lash import micro_mine
        from repro.core.params import MiningParams
        from repro.query.build import negate_vocabulary
        from repro.serve.format import write_delta_meta
        from repro.serve.writer import write_store

        params = MiningParams(
            sigma=1, gamma=self._state["gamma"], lam=self._state["lam"]
        )
        result = micro_mine(sequences, self._hierarchy_instance(), params)
        patterns = result.patterns
        vocabulary = result.vocabulary
        if negate:
            patterns = {
                pattern: -frequency
                for pattern, frequency in patterns.items()
            }
            vocabulary = negate_vocabulary(vocabulary)
        final = self._spool / name
        part = self._spool / (name + ".part")
        try:
            write_store(part, patterns, vocabulary, delta=True)
            write_delta_meta(final, meta, source=part)
            part.replace(final)
        except BaseException:
            part.unlink(missing_ok=True)
            raise

    def _persist(self) -> None:
        _write_json(self._dir / STATE_NAME, self._state)


def _write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _stamp_manifest(store: Path, ingest: dict) -> None:
    """Fold ``ingest`` watermarks into a sharded store's manifest (as
    monotonic maxima), under the same advisory lock compactions take so
    a concurrent compactor's manifest write cannot be lost."""
    from repro.serve.format import read_manifest, write_manifest

    lock_path = store / ".compact.lock"
    handle = open(lock_path, "a+b")
    try:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        manifest = read_manifest(store)
        current = dict(manifest.get("ingest") or {})
        for field, value in ingest.items():
            current[field] = max(current.get(field, 0), value)
        manifest["ingest"] = current
        files = manifest.pop("shard_files")
        for fixed in ("format", "version", "partitioner", "shards"):
            manifest.pop(fixed, None)
        write_manifest(store, files, manifest)
    finally:
        handle.close()  # releases the flock


__all__ = ["Ingestor", "STATE_NAME", "JOURNAL_NAME"]
