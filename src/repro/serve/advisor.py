"""Stats-driven shard-count advisor (``lash index info --advise``).

Shard routing is fixed at build time: every pattern lives in
``shard_of(first_item_name, num_shards)``
(:mod:`repro.serve.format`), so all patterns sharing a first item are
inseparable — a pathologically hot head item caps how evenly *any*
shard count can spread the bytes.  The advisor measures that skew from
the store itself and simulates the real placement hash over candidate
shard counts, instead of guessing from file size alone:

1. weigh every first-item **group**: the group's pattern-record bytes
   (exact, from the offset table) plus its share of the postings
   sections (distributed by the group's item occurrences — each shard
   rebuilds postings for its own patterns);
2. simulate ``shard_of`` for doubling shard counts and score each
   count's max-shard bytes and imbalance (max/mean);
3. recommend the smallest count whose largest shard fits the target
   with tolerable imbalance — smaller counts mean fewer files, fewer
   merges and fewer fan-out requests, so growing past "fits" buys
   nothing.

Everything here is advisory and read-only; rebalancing itself is
``lash index compact --shards N``.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.serve.format import U64, shard_of
from repro.serve.sharded import ShardedPatternStore
from repro.serve.store import PatternStore

#: aim for shards whose bytes fit comfortably in one mmap'd file that
#: a single process can serve; overridable per call
DEFAULT_TARGET_BYTES = 64 << 20

#: max-shard / mean-shard ratio considered acceptably balanced
DEFAULT_IMBALANCE_LIMIT = 1.5

#: give up doubling past this many shards
DEFAULT_MAX_SHARDS = 256


def group_weights(store) -> dict[str, int]:
    """Bytes attributable to each first-item-name routing group.

    Pattern-record bytes are exact (offset-table diffs); the postings
    and offset-table sections are apportioned by each group's summed
    item occurrences, which is what drives their size in a per-shard
    rebuild.
    """
    if isinstance(store, ShardedPatternStore):
        physical = store._shards()
    elif isinstance(store, PatternStore):
        physical = [store]
    else:
        raise InvalidParameterError(
            f"cannot advise on backend {type(store).__name__}"
        )
    vocabulary = store.vocabulary
    weights: dict[str, int] = {}
    occurrences: dict[str, int] = {}
    total_occurrences = 0
    overhead = 0
    for shard in physical:
        n = shard._num_patterns()
        if n == 0:
            continue
        data = shard._data
        base = shard._off_pat_offsets
        starts = [
            U64.unpack_from(data, base + U64.size * idx)[0]
            for idx in range(n)
        ]
        starts.append(shard._off_post_offsets - shard._off_patterns)
        for idx in range(n):
            pattern, _freq = shard._pattern_at(idx)
            name = vocabulary.name(pattern[0])
            record_bytes = (starts[idx + 1] - starts[idx]) + U64.size
            weights[name] = weights.get(name, 0) + record_bytes
            occurrences[name] = occurrences.get(name, 0) + len(pattern)
            total_occurrences += len(pattern)
        overhead += (shard._off_end - shard._off_post_offsets) + (
            shard._off_pat_offsets - shard._off_lengths
        )
    if total_occurrences:
        for name, count in occurrences.items():
            weights[name] += overhead * count // total_occurrences
    return weights


def simulate_placement(
    weights: dict[str, int], num_shards: int
) -> list[int]:
    """Bytes per shard under the build-time routing hash."""
    shards = [0] * num_shards
    for name, weight in weights.items():
        shards[shard_of(name, num_shards)] += weight
    return shards


def _score(weights: dict[str, int], num_shards: int) -> dict:
    shards = simulate_placement(weights, num_shards)
    total = sum(shards)
    mean = total / num_shards if num_shards else 0.0
    biggest = max(shards) if shards else 0
    return {
        "shards": num_shards,
        "max_bytes": biggest,
        "mean_bytes": int(mean),
        "imbalance": round(biggest / mean, 3) if mean else 1.0,
        "empty_shards": sum(1 for s in shards if s == 0),
    }


def advise_shards(
    store,
    target_bytes: int = DEFAULT_TARGET_BYTES,
    imbalance_limit: float = DEFAULT_IMBALANCE_LIMIT,
    max_shards: int = DEFAULT_MAX_SHARDS,
) -> dict:
    """Recommend a shard count for ``store`` from its measured skew.

    Returns a report dict: the routing-group skew (biggest groups by
    bytes), one score row per simulated count, the recommendation and
    the reason it stopped there.  The hard floor on what any count can
    achieve is the heaviest single group — it is indivisible — so when
    that alone exceeds ``target_bytes`` the advisor says so rather
    than recommending shard counts that cannot help.
    """
    if target_bytes < 1:
        raise InvalidParameterError(
            f"target_bytes must be >= 1, got {target_bytes}"
        )
    weights = group_weights(store)
    total = sum(weights.values())
    heaviest = max(weights.values(), default=0)
    top = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    candidates: list[dict] = []
    recommended: int | None = None
    reason = ""
    count = 1
    while count <= max_shards:
        score = _score(weights, count)
        candidates.append(score)
        if recommended is None and score["max_bytes"] <= target_bytes:
            if score["imbalance"] <= imbalance_limit or count == 1:
                recommended = count
                reason = (
                    f"smallest count whose largest shard "
                    f"({score['max_bytes']} bytes) fits the "
                    f"{target_bytes}-byte target"
                )
                # keep scoring a couple more rows for context
        if recommended is not None and count >= 4 * recommended:
            break
        count *= 2
    if recommended is None:
        best = min(candidates, key=lambda s: s["max_bytes"])
        recommended = best["shards"]
        if heaviest > target_bytes:
            reason = (
                f"no count can fit the target: the heaviest routing "
                f"group alone is {heaviest} bytes (> {target_bytes}); "
                f"picked the count with the smallest largest-shard"
            )
        else:
            reason = (
                f"no count within {max_shards} shards met both target "
                f"and imbalance <= {imbalance_limit}; picked the count "
                f"with the smallest largest-shard"
            )
    return {
        "total_bytes": total,
        "groups": len(weights),
        "heaviest_group_bytes": heaviest,
        "skew": round(heaviest / total, 4) if total else 0.0,
        "top_groups": [
            {"item": name, "bytes": weight} for name, weight in top
        ],
        "candidates": candidates,
        "recommended_shards": recommended,
        "reason": reason,
        "target_bytes": target_bytes,
        "imbalance_limit": imbalance_limit,
    }


__all__ = [
    "advise_shards",
    "group_weights",
    "simulate_placement",
    "DEFAULT_TARGET_BYTES",
    "DEFAULT_IMBALANCE_LIMIT",
    "DEFAULT_MAX_SHARDS",
]
