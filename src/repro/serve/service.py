"""Query service: result caching, batching and stats over a pattern backend.

Wraps any :class:`~repro.query.base.PatternSearchBase` (an in-memory
:class:`~repro.query.index.PatternIndex` or an on-disk
:class:`~repro.serve.store.PatternStore`) behind a small JSON-ready API.
Heavy query traffic is dominated by repeats — popular n-gram lookups,
dashboard refreshes — so full match lists land in a bounded LRU cache
keyed by the *normalized* query (the parsed token tuple: one entry
serves every ``limit``, both ``/query`` and ``/count``, and syntactic
variants like ``(a|b)`` vs ``(b|a)``), and the service keeps the
counters a production deployment would export: served queries, cache
hit-rate, error count and cumulative latency.

All entry points are thread-safe; the HTTP layer calls them from one
thread per request.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import OrderedDict
from typing import Sequence

from repro.analysis.costmodel import MATCH_BUDGET_DEFAULT
from repro.analysis.costmodel import COST_BUCKETS as _COST_BUCKETS
from repro.errors import (
    InvalidParameterError,
    QueryRejectedError,
    ReproError,
    StoreCorruptError,
)
from repro.query.base import PatternSearchBase, QueryMatch
from repro.query.tokens import is_negation_only, normalize_query

DEFAULT_CACHE_SIZE = 1024
DEFAULT_LIMIT = 10
#: rendered matches retained per cache entry; aggregates always cover
#: the full result set, so broad queries don't pin it in memory
MAX_CACHED_MATCHES = 1000

#: upper bucket bounds (seconds) of the request-latency histograms; the
#: implicit final bucket is +Inf.  Spread for an in-process index: most
#: answers are sub-millisecond cache hits, the tail is broad scans.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class LatencyHistogram:
    """Fixed-bucket histogram with Prometheus semantics.

    Buckets store per-range counts; :meth:`snapshot` cumulates them into
    the ``le``-labeled form scrapers expect.  Defaults to the latency
    bounds; the planner's cost histogram passes its own ``buckets``
    (work units, not seconds — the ``sum_seconds`` key name is kept so
    every consumer reads one snapshot shape).  Not thread-safe on its
    own — the owning service observes under its lock.
    """

    __slots__ = ("_buckets", "_counts", "_sum", "_total")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self._buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._total = 0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self._buckets, seconds)
        if index < len(self._counts):
            self._counts[index] += 1
        # past the last bound the observation lands only in +Inf
        self._sum += seconds
        self._total += 1

    def snapshot(self) -> dict:
        """``{"buckets": [[le, cumulative_count], ...], "sum_seconds",
        "count"}`` — the +Inf bucket is ``count`` itself."""
        cumulative = 0
        buckets: list[list[float | int]] = []
        for bound, count in zip(self._buckets, self._counts):
            cumulative += count
            buckets.append([bound, cumulative])
        return {
            "buckets": buckets,
            "sum_seconds": round(self._sum, 6),
            "count": self._total,
        }


def _render(matches: Sequence[QueryMatch]) -> list[dict]:
    return [
        {"pattern": m.render(), "frequency": m.frequency} for m in matches
    ]


def error_message(exc: ReproError) -> str:
    """Client-facing message; KeyError-derived errors (UnknownItemError)
    repr-quote their ``str()``, so prefer the raw argument."""
    if exc.args and isinstance(exc.args[0], str):
        return exc.args[0]
    return str(exc)


class QueryService:
    """LRU-cached, instrumented façade over a pattern search backend.

    Parameters
    ----------
    backend:
        Any pattern search backend (index or store).
    cache_size:
        Maximum cached queries; 0 disables caching.
    max_cached_matches:
        Rendered matches retained per cache entry; requests needing a
        longer prefix recompute instead of reading the cache.
    max_cost:
        Admission ceiling in planner work units
        (:meth:`~repro.query.base.PatternSearchBase.estimate_cost`):
        a cache miss whose estimate exceeds it is refused with
        :class:`QueryRejectedError` (HTTP 429) before any search work
        runs.  ``None`` (the default) admits everything.  Cache *hits*
        always bypass admission — a cached answer costs nothing.
    budget_cost:
        Soft threshold: a miss whose estimate exceeds it still runs,
        but under a ``match_budget``-bounded search; if the budget
        binds, the response is flagged partial and never cached.
    match_budget:
        Match-list cap for budgeted queries.
    """

    def __init__(
        self,
        backend: PatternSearchBase,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_cached_matches: int = MAX_CACHED_MATCHES,
        max_cost: float | None = None,
        budget_cost: float | None = None,
        match_budget: int = MATCH_BUDGET_DEFAULT,
    ) -> None:
        if cache_size < 0:
            raise InvalidParameterError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if max_cached_matches < 1:
            raise InvalidParameterError(
                f"max_cached_matches must be >= 1, got {max_cached_matches}"
            )
        if max_cost is not None and max_cost <= 0:
            raise InvalidParameterError(
                f"max_cost must be > 0 or None, got {max_cost}"
            )
        if budget_cost is not None and budget_cost <= 0:
            raise InvalidParameterError(
                f"budget_cost must be > 0 or None, got {budget_cost}"
            )
        if (
            max_cost is not None
            and budget_cost is not None
            and budget_cost > max_cost
        ):
            raise InvalidParameterError(
                f"budget_cost {budget_cost} exceeds max_cost {max_cost}"
            )
        if match_budget < 1:
            raise InvalidParameterError(
                f"match_budget must be >= 1, got {match_budget}"
            )
        self._backend = backend
        self._cache_size = cache_size
        self._max_cached_matches = max_cached_matches
        self._max_cost = max_cost
        self._budget_cost = budget_cost
        self._match_budget = match_budget
        self._cache: OrderedDict[tuple, dict] = OrderedDict()
        #: estimated recomputation cost per cache key — the weight the
        #: LRU uses when picking an eviction victim
        self._cache_costs: dict[tuple, float] = {}
        self._lock = threading.Lock()
        self._queries = 0
        self._cache_hits = 0
        self._errors = 0
        self._latency_s = 0.0
        self._rejected = 0
        self._budgeted = 0
        self._cache_evictions = 0
        self._cost_hist = LatencyHistogram(buckets=_COST_BUCKETS)
        self._request_hists: dict[str, LatencyHistogram] = {}
        self._compaction: dict | None = None
        #: bumped by swap_backend; a result computed under an older
        #: epoch is never cached (it answered for a retired backend)
        self._epoch = 0

    @property
    def backend(self) -> PatternSearchBase:
        return self._backend

    def swap_backend(self, backend: PatternSearchBase) -> PatternSearchBase:
        """Atomically replace the served backend; returns the old one.

        The cache is dropped (its entries answered for the old pattern
        set) while the serving counters continue.  In-flight requests
        keep the backend reference they already grabbed, so the caller
        must not close the returned backend until those drain — the
        compaction daemon closes a retired backend only after the *next*
        swap.
        """
        with self._lock:
            old = self._backend
            self._backend = backend
            self._cache.clear()
            self._cache_costs.clear()
            self._epoch += 1
        return old

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        """Record one request's wall time into the endpoint's histogram
        (the HTTP layer calls this for every tracked request, errors
        included)."""
        with self._lock:
            hist = self._request_hists.get(endpoint)
            if hist is None:
                hist = self._request_hists[endpoint] = LatencyHistogram()
            hist.observe(seconds)

    def note_compaction(self, info: dict) -> None:
        """Publish background-compaction progress into ``/stats``."""
        with self._lock:
            self._compaction = dict(info)

    # ------------------------------------------------------------------
    # query API — every method returns a JSON-serializable dict
    # ------------------------------------------------------------------

    def query(
        self,
        query: str,
        limit: int | None = DEFAULT_LIMIT,
        min_freq: int | None = None,
    ) -> dict:
        """Ranked matches plus match count and total frequency mass.

        ``limit=None`` returns every match; otherwise ``limit >= 1``
        (``search`` treats ``limit <= 0`` as 1, which would surprise an
        HTTP caller asking for 0 results).  ``min_freq`` is the
        per-query σ override: only patterns with mined frequency ≥ it
        are matched, counted and massed (the filter runs server-side,
        before ``limit``).
        """
        if limit is not None and limit < 1:
            self._reject(f"limit must be >= 1 or null, got {limit}")
        (
            (rendered, count, total),
            hit,
            matches,
            tokens,
            min_freq,
            partial,
            cost,
        ) = self._search(query, min_freq)
        wanted = count if limit is None else min(limit, count)
        if wanted <= len(rendered):
            shown = rendered[:wanted]
        elif matches is not None:
            # a miss just computed the full match list; render the part
            # beyond the cached prefix from it instead of re-searching
            shown = _render(matches[:wanted])
        else:
            # hit on a capped entry that can't cover the request: one
            # full re-search, latency-accounted and not a cache hit
            start = time.perf_counter()
            shown = _render(
                self._backend.search(tokens, limit=limit, min_freq=min_freq)
            )
            partial = self._take_partial() or partial
            with self._lock:
                self._latency_s += time.perf_counter() - start
                self._cache_hits -= 1
        result = {
            "query": query,
            "matches": shown,
            "count": count,
            "total_frequency": total,
            "truncated": count > len(shown),
        }
        if min_freq is not None:
            result["min_freq"] = min_freq
        if partial is not None:
            result["partial"] = partial
        if cost is not None:
            # present on computed (cache-miss) answers only: hits skip
            # the estimator entirely, which is the point of the cache
            result["estimated_cost"] = round(cost, 1)
        self._stamp_freshness(result)
        return result

    def count(self, query: str, min_freq: int | None = None) -> dict:
        """Match count and frequency mass only (no result list)."""
        (_, count, total), _hit, _matches, _tokens, min_freq, partial, cost = (
            self._search(query, min_freq)
        )
        result = {
            "query": query,
            "count": count,
            "total_frequency": total,
        }
        if min_freq is not None:
            result["min_freq"] = min_freq
        if partial is not None:
            result["partial"] = partial
        if cost is not None:
            result["estimated_cost"] = round(cost, 1)
        self._stamp_freshness(result)
        return result

    def _stamp_freshness(self, result: dict) -> None:
        """Attach the per-query freshness bound: the ingest watermark of
        the backend that produced this answer.  Stamped at response time
        (never cached with the entry) so an answer served from cache
        after a compaction swap reports the *live* backend's bound —
        exactly what the answer now reflects, since swaps bump the cache
        epoch and flush stale entries."""
        watermark = getattr(self._backend, "ingested_through", None)
        if watermark is not None:
            result["ingested_through"] = watermark
            retained = getattr(self._backend, "retained_from", None)
            if retained is not None:
                result["retained_from"] = retained

    def topk(self, n: int = DEFAULT_LIMIT) -> dict:
        """The ``n`` globally most frequent patterns (``n >= 1``).

        ``n`` is clamped to ``max_cached_matches`` so one request cannot
        render (and cache) the entire store; the response's ``k`` is the
        clamped value.
        """
        if isinstance(n, bool) or not isinstance(n, int):
            # bool subclasses int: topk(True) would silently mean n=1
            # and poison the ("topk", "", 1) cache key for real callers
            self._reject(f"n must be an integer, got {n!r}")
        if n < 1:
            self._reject(f"n must be >= 1, got {n}")
        n = min(n, self._max_cached_matches)
        spill: dict = {}

        def compute(key: tuple) -> dict:
            matches = self._backend.top(key[2])
            spill["partial"] = self._take_partial()
            return {"k": key[2], "matches": _render(matches)}

        value, _hit = self._cached(
            ("topk", "", n),
            compute,
            should_cache=lambda _v: spill.get("partial") is None,
        )
        partial = spill.get("partial")
        if partial is not None:
            # never mutate what may sit in the cache
            value = {**value, "partial": partial}
        return value

    def _search(self, query: str, min_freq: int | None = None):
        """``((rendered, count, total), was_hit, raw_matches_or_None,
        tokens, min_freq)`` for the full (limit-independent) result
        set.  The query is parsed here and the cache keyed on the
        *normalized token tuple* plus the canonical σ override, so
        syntactic variants — extra whitespace, reordered disjunction
        alternatives like ``(a|b)``/``(b|a)``, collapsed gap runs, a
        no-op ``min_freq=0`` — share one entry.  One entry per
        (normalized query, σ) pair serves every limit and both
        ``/query`` and ``/count``, with aggregates precomputed so cache
        hits cost O(limit), not O(matches).  Only the first
        ``max_cached_matches`` rendered matches are retained (bounding
        memory on broad queries); on a miss the raw match list is
        handed back so the caller can serve beyond the prefix without
        re-searching.

        All-negative queries (``!a ?`` — a negation with no positive
        token) are rejected here: with no postings to prune on they
        would scan most of the store per request.
        """
        if min_freq is not None and (
            not isinstance(min_freq, int)
            or isinstance(min_freq, bool)
            or min_freq < 0
        ):
            self._reject(
                f"min_freq must be an integer >= 0 or null, got {min_freq!r}"
            )
        if min_freq == 0:
            min_freq = None  # frequencies are >= 0: σ=0 admits everything
        try:
            tokens = normalize_query(query)
        except ReproError:
            # parse rejections are served-and-errored requests, exactly
            # like rejections raised inside the backend search
            with self._lock:
                self._queries += 1
                self._errors += 1
            raise
        if is_negation_only(tokens):
            self._reject(
                "all-negative queries are not served (no positive token "
                "to select candidates by); add at least one item, "
                "'^name', disjunction or floored token"
            )
        spill: dict = {}

        def compute(key: tuple) -> tuple[list[dict], int, int]:
            # admission runs only on misses: a cached answer is free, so
            # repeats of an expensive query bypass the gate by design
            cost = self._admit(tokens)
            spill["cost"] = cost
            budget = None
            if (
                cost is not None
                and self._budget_cost is not None
                and cost > self._budget_cost
            ):
                budget = self._match_budget
                with self._lock:
                    self._budgeted += 1
            matches = self._backend.search(
                tokens, limit=budget, min_freq=min_freq
            )
            spill["matches"] = matches
            partial = self._take_partial()
            if budget is not None and len(matches) >= budget:
                # the budget bound the ranking: count and mass below
                # cover only the returned prefix, so the answer is
                # flagged degraded (and the veto keeps it uncached)
                partial = dict(partial or ())
                partial["budgeted"] = True
                partial["match_budget"] = budget
                partial["estimated_cost"] = round(cost, 1)
            spill["partial"] = partial
            return (
                _render(matches[: self._max_cached_matches]),
                len(matches),
                sum(m.frequency for m in matches),
            )

        key = ("search", tokens, min_freq)
        value, hit = self._cached(
            key,
            compute,
            # a degraded answer (shard set unreachable mid-query) must
            # not be served from cache after the cluster heals
            should_cache=lambda _v: spill.get("partial") is None,
            cost=lambda: spill.get("cost"),
        )
        if hit:
            # a hit skipped the estimator; report the cost stored with
            # the entry so hit and miss responses read identically
            with self._lock:
                spill["cost"] = self._cache_costs.get(key)
        return (
            value,
            hit,
            spill.get("matches"),
            tokens,
            min_freq,
            spill.get("partial"),
            spill.get("cost"),
        )

    def batch(
        self,
        queries: Sequence[str],
        limit: int | None = DEFAULT_LIMIT,
        min_freq: int | None = None,
    ) -> list[dict]:
        """Answer many queries in one call (shares the cache per query).

        ``min_freq`` applies to every query of the batch.  One bad
        query does not poison the batch: its entry carries an
        ``error`` field while the other answers come back intact.  A
        corrupt store is not a per-query problem, though — that one
        propagates so the HTTP layer can answer 503 for the whole batch.

        Against a backend exposing ``prefetch`` (the distributed
        router), the batch's cache-missing queries go out first as one
        batched scatter — a single ``multi_search`` frame per server —
        and the per-query loop below consumes the parked answers.  The
        answers are identical either way; only the number of wire round
        trips changes.
        """
        self._prefetch(queries, min_freq)
        try:
            results: list[dict] = []
            for query in queries:
                try:
                    results.append(
                        self.query(query, limit, min_freq=min_freq)
                    )
                except StoreCorruptError:
                    raise
                except ReproError as exc:
                    results.append(
                        {"query": query, "error": error_message(exc)}
                    )
            return results
        finally:
            discard = getattr(self._backend, "discard_prefetch", None)
            if discard is not None:
                discard()

    def _prefetch(self, queries: Sequence[str], min_freq: int | None) -> None:
        """Hand the batch's cache-missing queries to the backend's
        batched-scatter path, when it has one.  Best-effort: parse
        failures and negation-only queries are skipped here (the
        per-query loop reports their errors), and a backend without
        ``prefetch`` makes this a no-op."""
        prefetch = getattr(self._backend, "prefetch", None)
        if prefetch is None:
            return
        if min_freq is not None:
            if (
                not isinstance(min_freq, int)
                or isinstance(min_freq, bool)
                or min_freq < 0
            ):
                return  # _search will reject it; nothing to prefetch
            if min_freq == 0:
                min_freq = None  # the same canonicalization _search does
        pairs = []
        seen: set[tuple] = set()
        for query in queries:
            try:
                tokens = normalize_query(query)
            except ReproError:
                continue
            if is_negation_only(tokens):
                continue
            key = ("search", tokens, min_freq)
            if key in seen:
                continue
            seen.add(key)
            with self._lock:
                if key in self._cache:
                    continue  # a hit never touches the wire anyway
            pairs.append((tokens, min_freq))
        if pairs:
            prefetch(pairs)

    def stats(self) -> dict:
        """Service counters; ``patterns`` comes from the backend header.

        Backends exposing ``describe()`` (the on-disk stores) contribute
        a ``store`` entry — for a sharded store that includes the
        per-shard breakdown, so ``/stats`` shows where the bytes and
        patterns live.
        """
        with self._lock:
            queries = self._queries
            hits = self._cache_hits
            stats = {
                "patterns": len(self._backend),
                "queries": queries,
                "cache_hits": hits,
                "cache_hit_rate": round(hits / queries, 4) if queries else 0.0,
                "cache_entries": len(self._cache),
                "cache_size": self._cache_size,
                "cache_evictions": self._cache_evictions,
                "errors": self._errors,
                "total_latency_ms": round(1000 * self._latency_s, 3),
            }
            stats["admission"] = {
                "max_cost": self._max_cost,
                "budget_cost": self._budget_cost,
                "match_budget": self._match_budget,
                "rejected": self._rejected,
                "budgeted": self._budgeted,
                "cost": self._cost_hist.snapshot(),
            }
            stats["avg_latency_ms"] = (
                round(stats["total_latency_ms"] / queries, 3) if queries
                else 0.0
            )
            if self._request_hists:
                stats["request_latency"] = {
                    endpoint: hist.snapshot()
                    for endpoint, hist in sorted(self._request_hists.items())
                }
            if self._compaction is not None:
                stats["compaction"] = dict(self._compaction)
        describe = getattr(self._backend, "describe", None)
        if describe is not None:
            stats["store"] = describe()
        watermark = getattr(self._backend, "ingested_through", None)
        if watermark is not None:
            freshness = {"ingested_through": watermark}
            retained = getattr(self._backend, "retained_from", None)
            if retained is not None:
                freshness["retained_from"] = retained
            stats["freshness"] = freshness
        plan_stats = getattr(self._backend, "plan_stats", None)
        if plan_stats is not None:
            # compiled-query-plan cache + execution-path counters (the
            # router backend is not a PatternSearchBase and has none;
            # its shard servers each report their own)
            stats["plan_cache"] = plan_stats()
        return stats

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._cache_costs.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _reject(self, message: str) -> None:
        """Validation failures count as served-and-errored requests so
        ``/stats`` reflects them like any other client error."""
        with self._lock:
            self._queries += 1
            self._errors += 1
        raise InvalidParameterError(message)

    def _admit(self, tokens) -> float | None:
        """Price the query and apply the admission ceiling.

        Returns the estimated cost (``None`` when the backend cannot
        estimate — e.g. an old remote server), records it in the cost
        histogram, and raises :class:`QueryRejectedError` when it
        crosses ``max_cost``.  Raised *inside* the cache-miss compute,
        so a rejection can never be cached.
        """
        estimate_fn = getattr(self._backend, "estimate_cost", None)
        if estimate_fn is None:
            return None
        estimate = estimate_fn(tokens)
        if estimate is None:
            return None
        cost = float(estimate.cost)
        with self._lock:
            self._cost_hist.observe(cost)
        if self._max_cost is not None and cost > self._max_cost:
            with self._lock:
                self._rejected += 1
            raise QueryRejectedError(
                f"query rejected: estimated cost {round(cost)} exceeds "
                f"ceiling {round(self._max_cost)}",
                estimated_cost=cost,
                max_cost=self._max_cost,
            )
        return cost

    def _take_partial(self) -> dict | None:
        """Degradation info from the last backend call, for backends
        that can answer partially (the distributed router); ``None``
        for complete answers and for local backends."""
        take = getattr(self._backend, "take_partial", None)
        return take() if take is not None else None

    #: how far past the LRU end the cost-weighted eviction looks: the
    #: victim is the cheapest-to-recompute entry among the oldest few,
    #: so one stale-but-expensive scan is not dropped for a fresh
    #: lookup that costs nothing to redo
    _EVICT_WINDOW = 8

    def _cached(self, key: tuple, compute, should_cache=None, cost=None):
        """``(value, was_cache_hit)`` with LRU bookkeeping.

        ``should_cache(value)`` may veto insertion — used to keep
        degraded (partial) answers out of the cache while still
        serving them.  ``cost()`` (read after compute) supplies the
        entry's estimated recomputation cost: eviction picks the
        cheapest entry among the ``_EVICT_WINDOW`` least-recently-used
        ones instead of pure recency.
        """
        with self._lock:
            self._queries += 1
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                return cached, True
            epoch = self._epoch
        start = time.perf_counter()
        try:
            value = compute(key)
        except ReproError:
            with self._lock:
                self._errors += 1
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            self._latency_s += elapsed
            # a swap_backend between the miss and here cleared the
            # cache for a reason: this value answered for the retired
            # backend, so inserting it would undo the clear and serve
            # stale pre-compaction results indefinitely
            if (
                self._cache_size
                and epoch == self._epoch
                and (should_cache is None or should_cache(value))
            ):
                self._cache[key] = value
                self._cache.move_to_end(key)
                entry_cost = cost() if cost is not None else None
                if entry_cost is not None:
                    self._cache_costs[key] = entry_cost
                while len(self._cache) > self._cache_size:
                    self._evict_one()
        return value, False

    def _evict_one(self) -> None:
        """Drop the cheapest-to-recompute entry among the oldest
        ``_EVICT_WINDOW`` (caller holds the lock).  Entries with no
        estimate weigh 0 — evicted before anything priced.  The
        newest entry is never a candidate: the insertion that
        triggered the eviction must not evict itself."""
        window = []
        cap = min(self._EVICT_WINDOW, len(self._cache) - 1)
        for key in self._cache:
            window.append(key)
            if len(window) >= cap:
                break
        victim = min(
            window, key=lambda key: self._cache_costs.get(key, 0.0)
        )
        del self._cache[victim]
        self._cache_costs.pop(victim, None)
        self._cache_evictions += 1


__all__ = [
    "QueryService",
    "LatencyHistogram",
    "error_message",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_LIMIT",
    "MAX_CACHED_MATCHES",
    "LATENCY_BUCKETS",
]
