"""Query service: result caching, batching and stats over a pattern backend.

Wraps any :class:`~repro.query.base.PatternSearchBase` (an in-memory
:class:`~repro.query.index.PatternIndex` or an on-disk
:class:`~repro.serve.store.PatternStore`) behind a small JSON-ready API.
Heavy query traffic is dominated by repeats — popular n-gram lookups,
dashboard refreshes — so full match lists land in a bounded LRU cache
keyed by the *normalized* query (the parsed token tuple: one entry
serves every ``limit``, both ``/query`` and ``/count``, and syntactic
variants like ``(a|b)`` vs ``(b|a)``), and the service keeps the
counters a production deployment would export: served queries, cache
hit-rate, error count and cumulative latency.

All entry points are thread-safe; the HTTP layer calls them from one
thread per request.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Sequence

from repro.errors import (
    InvalidParameterError,
    ReproError,
    StoreCorruptError,
)
from repro.query.base import PatternSearchBase, QueryMatch
from repro.query.tokens import normalize_query

DEFAULT_CACHE_SIZE = 1024
DEFAULT_LIMIT = 10
#: rendered matches retained per cache entry; aggregates always cover
#: the full result set, so broad queries don't pin it in memory
MAX_CACHED_MATCHES = 1000


def _render(matches: Sequence[QueryMatch]) -> list[dict]:
    return [
        {"pattern": m.render(), "frequency": m.frequency} for m in matches
    ]


def error_message(exc: ReproError) -> str:
    """Client-facing message; KeyError-derived errors (UnknownItemError)
    repr-quote their ``str()``, so prefer the raw argument."""
    if exc.args and isinstance(exc.args[0], str):
        return exc.args[0]
    return str(exc)


class QueryService:
    """LRU-cached, instrumented façade over a pattern search backend.

    Parameters
    ----------
    backend:
        Any pattern search backend (index or store).
    cache_size:
        Maximum cached queries; 0 disables caching.
    max_cached_matches:
        Rendered matches retained per cache entry; requests needing a
        longer prefix recompute instead of reading the cache.
    """

    def __init__(
        self,
        backend: PatternSearchBase,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_cached_matches: int = MAX_CACHED_MATCHES,
    ) -> None:
        if cache_size < 0:
            raise InvalidParameterError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if max_cached_matches < 1:
            raise InvalidParameterError(
                f"max_cached_matches must be >= 1, got {max_cached_matches}"
            )
        self._backend = backend
        self._cache_size = cache_size
        self._max_cached_matches = max_cached_matches
        self._cache: OrderedDict[tuple, dict] = OrderedDict()
        self._lock = threading.Lock()
        self._queries = 0
        self._cache_hits = 0
        self._errors = 0
        self._latency_s = 0.0

    @property
    def backend(self) -> PatternSearchBase:
        return self._backend

    # ------------------------------------------------------------------
    # query API — every method returns a JSON-serializable dict
    # ------------------------------------------------------------------

    def query(self, query: str, limit: int | None = DEFAULT_LIMIT) -> dict:
        """Ranked matches plus match count and total frequency mass.

        ``limit=None`` returns every match; otherwise ``limit >= 1``
        (``search`` treats ``limit <= 0`` as 1, which would surprise an
        HTTP caller asking for 0 results).
        """
        if limit is not None and limit < 1:
            self._reject(f"limit must be >= 1 or null, got {limit}")
        (rendered, count, total), hit, matches, tokens = self._search(query)
        wanted = count if limit is None else min(limit, count)
        if wanted <= len(rendered):
            shown = rendered[:wanted]
        elif matches is not None:
            # a miss just computed the full match list; render the part
            # beyond the cached prefix from it instead of re-searching
            shown = _render(matches[:wanted])
        else:
            # hit on a capped entry that can't cover the request: one
            # full re-search, latency-accounted and not a cache hit
            start = time.perf_counter()
            shown = _render(self._backend.search(tokens, limit=limit))
            with self._lock:
                self._latency_s += time.perf_counter() - start
                self._cache_hits -= 1
        return {
            "query": query,
            "matches": shown,
            "count": count,
            "total_frequency": total,
            "truncated": count > len(shown),
        }

    def count(self, query: str) -> dict:
        """Match count and frequency mass only (no result list)."""
        (_, count, total), _hit, _matches, _tokens = self._search(query)
        return {
            "query": query,
            "count": count,
            "total_frequency": total,
        }

    def topk(self, n: int = DEFAULT_LIMIT) -> dict:
        """The ``n`` globally most frequent patterns (``n >= 1``).

        ``n`` is clamped to ``max_cached_matches`` so one request cannot
        render (and cache) the entire store; the response's ``k`` is the
        clamped value.
        """
        if n < 1:
            self._reject(f"n must be >= 1, got {n}")
        n = min(n, self._max_cached_matches)
        value, _hit = self._cached(
            ("topk", "", n),
            lambda key: {"k": key[2], "matches": _render(self._backend.top(key[2]))},
        )
        return value

    def _search(self, query: str):
        """``((rendered, count, total), was_hit, raw_matches_or_None,
        tokens)`` for the full (limit-independent) result set.  The
        query is parsed here and the cache keyed on the *normalized
        token tuple*, so syntactic variants — extra whitespace,
        reordered disjunction alternatives like ``(a|b)``/``(b|a)`` —
        share one entry.  One entry per normalized query serves every
        limit and both ``/query`` and ``/count``, with aggregates
        precomputed so cache hits cost O(limit), not O(matches).  Only
        the first ``max_cached_matches`` rendered matches are retained
        (bounding memory on broad queries); on a miss the raw match
        list is handed back so the caller can serve beyond the prefix
        without re-searching."""
        try:
            tokens = normalize_query(query)
        except ReproError:
            # parse rejections are served-and-errored requests, exactly
            # like rejections raised inside the backend search
            with self._lock:
                self._queries += 1
                self._errors += 1
            raise
        spill: dict = {}

        def compute(key: tuple) -> tuple[list[dict], int, int]:
            matches = self._backend.search(tokens)
            spill["matches"] = matches
            return (
                _render(matches[: self._max_cached_matches]),
                len(matches),
                sum(m.frequency for m in matches),
            )

        value, hit = self._cached(("search", tokens, None), compute)
        return value, hit, spill.get("matches"), tokens

    def batch(
        self, queries: Sequence[str], limit: int | None = DEFAULT_LIMIT
    ) -> list[dict]:
        """Answer many queries in one call (shares the cache per query).

        One bad query does not poison the batch: its entry carries an
        ``error`` field while the other answers come back intact.  A
        corrupt store is not a per-query problem, though — that one
        propagates so the HTTP layer can answer 503 for the whole batch.
        """
        results: list[dict] = []
        for query in queries:
            try:
                results.append(self.query(query, limit))
            except StoreCorruptError:
                raise
            except ReproError as exc:
                results.append(
                    {"query": query, "error": error_message(exc)}
                )
        return results

    def stats(self) -> dict:
        """Service counters; ``patterns`` comes from the backend header.

        Backends exposing ``describe()`` (the on-disk stores) contribute
        a ``store`` entry — for a sharded store that includes the
        per-shard breakdown, so ``/stats`` shows where the bytes and
        patterns live.
        """
        with self._lock:
            queries = self._queries
            hits = self._cache_hits
            stats = {
                "patterns": len(self._backend),
                "queries": queries,
                "cache_hits": hits,
                "cache_hit_rate": round(hits / queries, 4) if queries else 0.0,
                "cache_entries": len(self._cache),
                "cache_size": self._cache_size,
                "errors": self._errors,
                "total_latency_ms": round(1000 * self._latency_s, 3),
            }
            stats["avg_latency_ms"] = (
                round(stats["total_latency_ms"] / queries, 3) if queries
                else 0.0
            )
        describe = getattr(self._backend, "describe", None)
        if describe is not None:
            stats["store"] = describe()
        return stats

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _reject(self, message: str) -> None:
        """Validation failures count as served-and-errored requests so
        ``/stats`` reflects them like any other client error."""
        with self._lock:
            self._queries += 1
            self._errors += 1
        raise InvalidParameterError(message)

    def _cached(self, key: tuple, compute):
        """``(value, was_cache_hit)`` with LRU bookkeeping."""
        with self._lock:
            self._queries += 1
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                return cached, True
        start = time.perf_counter()
        try:
            value = compute(key)
        except ReproError:
            with self._lock:
                self._errors += 1
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            self._latency_s += elapsed
            if self._cache_size:
                self._cache[key] = value
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return value, False


__all__ = [
    "QueryService",
    "error_message",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_LIMIT",
    "MAX_CACHED_MATCHES",
]
