"""Wire encoding of item sequences (paper Sec. 4.2 / 6.1).

The paper represents items as integers ordered by the f-list ("highly
frequent items are assigned smaller ids"), compresses map output with
variable-length integer encoding, and notes that blanks can be run-length
encoded.  This module implements exactly that:

* unsigned LEB128 varints (small ids → few bytes),
* token stream per sequence: item id ``x`` → varint ``x + 1``; a run of
  ``r`` blanks → escape varint ``0`` followed by varint ``r``,
* a leading varint with the token count.

The encodings feed the engine's ``MAP_OUTPUT_BYTES`` counter so that
communication measurements (Fig. 4(b)) reflect real serialized sizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.constants import BLANK
from repro.errors import EncodingError

Seq = Sequence[int]


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EncodingError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise EncodingError("uvarint too long")


def encode_sequence(sequence: Seq) -> bytes:
    """Serialize a sequence of item ids (blanks allowed, run-length coded)."""
    tokens: list[bytes] = []
    i = 0
    n = len(sequence)
    while i < n:
        item = sequence[i]
        if item == BLANK:
            run = 1
            while i + run < n and sequence[i + run] == BLANK:
                run += 1
            tokens.append(encode_uvarint(0))
            tokens.append(encode_uvarint(run))
            i += run
        else:
            if item < 0:
                raise EncodingError(f"invalid item id {item}")
            tokens.append(encode_uvarint(item + 1))
            i += 1
    return encode_uvarint(len(tokens)) + b"".join(tokens)


def decode_sequence(data: bytes, offset: int = 0) -> tuple[tuple[int, ...], int]:
    """Inverse of :func:`encode_sequence`; returns ``(sequence, next_offset)``."""
    num_tokens, pos = decode_uvarint(data, offset)
    items: list[int] = []
    consumed = 0
    while consumed < num_tokens:
        token, pos = decode_uvarint(data, pos)
        consumed += 1
        if token == 0:
            run, pos = decode_uvarint(data, pos)
            consumed += 1
            if consumed > num_tokens:
                raise EncodingError("blank run without length token")
            items.extend([BLANK] * run)
        else:
            items.append(token - 1)
    return tuple(items), pos


def encoded_size(sequence: Seq) -> int:
    """Number of bytes :func:`encode_sequence` produces (without encoding twice)."""
    return len(encode_sequence(sequence))
