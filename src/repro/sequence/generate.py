"""Enumeration of generalized subsequences (paper Sec. 3.2, Eq. (2)).

``Gλ(T)`` is the set of distinct generalized subsequences of ``T`` that
satisfy the gap and length constraints; ``G1(T)`` its single-item analogue;
``G_{w,λ}(T)`` the subset whose pivot (largest item) is ``w``.

These enumerators power the naïve/semi-naïve baselines, the w-equivalency
property tests, and the brute-force reference miner.  They are exponential in
the worst case — which is the paper's very argument against the baselines.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.constants import BLANK
from repro.hierarchy.vocabulary import Vocabulary

Seq = Sequence[int]


def pivot_of(pattern: Seq) -> int:
    """``p(S)``: the largest (least frequent) item of the pattern."""
    return max(pattern)


def generalized_items(vocabulary: Vocabulary, sequence: Seq) -> set[int]:
    """``G1(T)``: distinct items of ``T`` together with their ancestors."""
    out: set[int] = set()
    for t in sequence:
        if t == BLANK:
            continue
        out.update(vocabulary.ancestors_or_self(t))
    return out


def generalized_subsequences(
    vocabulary: Vocabulary,
    sequence: Seq,
    gamma: int | None,
    lam: int,
    min_length: int = 2,
) -> set[tuple[int, ...]]:
    """``Gλ(T)``: distinct generalized subsequences with ``min_length ≤ |S| ≤ λ``.

    Blank positions are never matched but consume gap budget, so the
    enumeration is valid on rewritten sequences as well.
    """
    results: set[tuple[int, ...]] = set()
    n = len(sequence)

    def extend(prefix: tuple[int, ...], last: int) -> None:
        if len(prefix) >= min_length:
            results.add(prefix)
        if len(prefix) >= lam:
            return
        hi = n if gamma is None else min(last + 2 + gamma, n)
        for k in range(last + 1, hi):
            t = sequence[k]
            if t == BLANK:
                continue
            for item in vocabulary.ancestors_or_self(t):
                extend(prefix + (item,), k)

    for i, t in enumerate(sequence):
        if t == BLANK:
            continue
        for item in vocabulary.ancestors_or_self(t):
            extend((item,), i)
    return results


def pivot_subsequences(
    vocabulary: Vocabulary,
    sequence: Seq,
    gamma: int | None,
    lam: int,
    pivot: int,
    min_length: int = 2,
) -> set[tuple[int, ...]]:
    """``G_{w,λ}(T)``: generalized subsequences whose pivot is ``pivot``.

    Used to define and test w-equivalency (paper Sec. 4.1): two sequences are
    w-equivalent iff this set coincides for both.
    """
    return {
        s
        for s in generalized_subsequences(
            vocabulary, sequence, gamma, lam, min_length
        )
        if max(s) == pivot
    }


def iter_distinct_patterns(
    patterns: set[tuple[int, ...]],
) -> Iterator[tuple[int, ...]]:
    """Deterministic (sorted) iteration order over a pattern set."""
    return iter(sorted(patterns))
