"""Sequence databases, gap/hierarchy-aware matching, and wire encodings."""

from repro.sequence.database import SequenceDatabase, EncodedDatabase
from repro.sequence.subsequence import (
    is_generalized_subsequence,
    is_subsequence,
    occurrence_pairs,
    end_positions,
    start_positions,
    support,
)
from repro.sequence.generate import (
    generalized_items,
    generalized_subsequences,
    pivot_subsequences,
    pivot_of,
)
from repro.sequence.encoding import (
    encode_uvarint,
    decode_uvarint,
    encode_sequence,
    decode_sequence,
    encoded_size,
)

__all__ = [
    "SequenceDatabase",
    "EncodedDatabase",
    "is_generalized_subsequence",
    "is_subsequence",
    "occurrence_pairs",
    "end_positions",
    "start_positions",
    "support",
    "generalized_items",
    "generalized_subsequences",
    "pivot_subsequences",
    "pivot_of",
    "encode_uvarint",
    "decode_uvarint",
    "encode_sequence",
    "decode_sequence",
    "encoded_size",
]
