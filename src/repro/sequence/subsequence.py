"""Gap- and hierarchy-aware subsequence matching (paper Sec. 2).

``S ⊑γ T`` (generalized subsequence): there are positions
``i1 < i2 < … < in`` of ``T`` with ``t_{ij} →* s_j`` and at most ``γ`` items
between consecutive matched positions.  Blanks (from rewriting) never match a
pattern item but do occupy positions, i.e. they count toward the gap.

``gamma=None`` means the unconstrained relation (``γ = ∞``).

All functions work on integer-coded sequences and take the
:class:`~repro.hierarchy.vocabulary.Vocabulary` for the ``→*`` tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constants import BLANK
from repro.hierarchy.vocabulary import Vocabulary

Seq = Sequence[int]


def _window(end: int, gamma: int | None, length: int) -> range:
    """Positions eligible to match the next pattern item after ``end``."""
    if gamma is None:
        return range(end + 1, length)
    return range(end + 1, min(end + 2 + gamma, length))


def occurrence_pairs(
    vocabulary: Vocabulary, pattern: Seq, sequence: Seq, gamma: int | None
) -> set[tuple[int, int]]:
    """All ``(start, end)`` position pairs of embeddings of ``pattern``.

    A pair appears once even when several embeddings share the same first and
    last positions.  Positions are 0-based.  Empty patterns yield no pairs.
    """
    if not pattern:
        return set()
    gen = vocabulary.generalizes_to
    first = pattern[0]
    states: set[tuple[int, int]] = {
        (i, i) for i, t in enumerate(sequence) if t != BLANK and gen(t, first)
    }
    for sym in pattern[1:]:
        if not states:
            break
        nxt: set[tuple[int, int]] = set()
        for start, end in states:
            for k in _window(end, gamma, len(sequence)):
                t = sequence[k]
                if t != BLANK and gen(t, sym):
                    nxt.add((start, k))
        states = nxt
    return states


def end_positions(
    vocabulary: Vocabulary, pattern: Seq, sequence: Seq, gamma: int | None
) -> set[int]:
    """Last positions of embeddings of ``pattern`` in ``sequence``."""
    return {end for _, end in occurrence_pairs(vocabulary, pattern, sequence, gamma)}


def start_positions(
    vocabulary: Vocabulary, pattern: Seq, sequence: Seq, gamma: int | None
) -> set[int]:
    """First positions of embeddings of ``pattern`` in ``sequence``."""
    return {start for start, _ in occurrence_pairs(vocabulary, pattern, sequence, gamma)}


def is_generalized_subsequence(
    vocabulary: Vocabulary, pattern: Seq, sequence: Seq, gamma: int | None
) -> bool:
    """``pattern ⊑γ sequence`` (hierarchy-aware containment).

    Uses an early-exit sweep rather than materializing all pairs.
    """
    if not pattern:
        return True
    gen = vocabulary.generalizes_to
    # frontier of reachable end positions after matching a prefix
    frontier = [
        i for i, t in enumerate(sequence) if t != BLANK and gen(t, pattern[0])
    ]
    for sym in pattern[1:]:
        if not frontier:
            return False
        nxt: set[int] = set()
        for end in frontier:
            for k in _window(end, gamma, len(sequence)):
                t = sequence[k]
                if k not in nxt and t != BLANK and gen(t, sym):
                    nxt.add(k)
        frontier = sorted(nxt)
    return bool(frontier)


def is_subsequence(pattern: Seq, sequence: Seq, gamma: int | None) -> bool:
    """Plain (hierarchy-free) gap-constrained containment ``S ⊆γ T``."""
    if not pattern:
        return True
    frontier = [i for i, t in enumerate(sequence) if t == pattern[0]]
    for sym in pattern[1:]:
        if not frontier:
            return False
        nxt: set[int] = set()
        for end in frontier:
            for k in _window(end, gamma, len(sequence)):
                if k not in nxt and sequence[k] == sym:
                    nxt.add(k)
        frontier = sorted(nxt)
    return bool(frontier)


def support(
    vocabulary: Vocabulary,
    pattern: Seq,
    database: Iterable[Seq],
    gamma: int | None,
) -> int:
    """``f_γ(S, D)``: the number of input sequences supporting ``pattern``."""
    return sum(
        1
        for seq in database
        if is_generalized_subsequence(vocabulary, pattern, seq, gamma)
    )
