"""Sequence databases.

A :class:`SequenceDatabase` is a multiset of sequences of string items — the
``D`` of the paper.  :class:`EncodedDatabase` is its integer-coded twin (ids
from a :class:`~repro.hierarchy.vocabulary.Vocabulary`), which is what all
mining algorithms operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.hierarchy.vocabulary import Vocabulary


@dataclass(frozen=True)
class DatabaseStats:
    """Table 1 characteristics of a sequence database."""

    num_sequences: int
    avg_length: float
    max_length: int
    total_items: int
    unique_items: int

    def row(self) -> dict[str, object]:
        """Render as a Table 1 row."""
        return {
            "Sequences": self.num_sequences,
            "Avg length": round(self.avg_length, 1),
            "Max length": self.max_length,
            "Total items": self.total_items,
            "Unique items": self.unique_items,
        }


class SequenceDatabase:
    """A multiset of string-item sequences."""

    def __init__(self, sequences: Iterable[Sequence[str]] = ()) -> None:
        self._sequences: list[tuple[str, ...]] = [tuple(s) for s in sequences]

    # -- construction ---------------------------------------------------

    @classmethod
    def from_strings(cls, lines: Iterable[str], sep: str | None = None) -> "SequenceDatabase":
        """One sequence per line, items separated by ``sep`` (whitespace)."""
        return cls(
            line.rstrip("\n").split(sep) for line in lines if line.strip()
        )

    @classmethod
    def from_file(cls, path: str | Path, sep: str | None = None) -> "SequenceDatabase":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_strings(f, sep)

    def to_file(self, path: str | Path, sep: str = " ") -> None:
        with open(path, "w", encoding="utf-8") as f:
            for seq in self._sequences:
                f.write(sep.join(seq))
                f.write("\n")

    def append(self, sequence: Sequence[str]) -> None:
        self._sequences.append(tuple(sequence))

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return iter(self._sequences)

    def __getitem__(self, index: int) -> tuple[str, ...]:
        return self._sequences[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceDatabase):
            return NotImplemented
        return self._sequences == other._sequences

    # -- operations -------------------------------------------------------

    def sample(self, fraction: float, seed: int = 0) -> "SequenceDatabase":
        """A reproducible random sample of the sequences (Fig. 6(a))."""
        import random

        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return SequenceDatabase(self._sequences)
        rng = random.Random(seed)
        k = round(len(self._sequences) * fraction)
        return SequenceDatabase(rng.sample(self._sequences, k))

    def stats(self) -> DatabaseStats:
        """Table 1 characteristics."""
        lengths = [len(s) for s in self._sequences]
        unique: set[str] = set()
        for s in self._sequences:
            unique.update(s)
        total = sum(lengths)
        return DatabaseStats(
            num_sequences=len(lengths),
            avg_length=(total / len(lengths)) if lengths else 0.0,
            max_length=max(lengths, default=0),
            total_items=total,
            unique_items=len(unique),
        )

    def encode(self, vocabulary: Vocabulary) -> "EncodedDatabase":
        return EncodedDatabase(
            [vocabulary.encode_sequence(s) for s in self._sequences], vocabulary
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SequenceDatabase(sequences={len(self)})"


class EncodedDatabase:
    """Integer-coded sequence database bound to a vocabulary."""

    def __init__(
        self, sequences: Iterable[Sequence[int]], vocabulary: Vocabulary
    ) -> None:
        self._sequences: list[tuple[int, ...]] = [tuple(s) for s in sequences]
        self._vocabulary = vocabulary

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._sequences)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._sequences[index]

    def decode(self) -> SequenceDatabase:
        return SequenceDatabase(
            self._vocabulary.decode_sequence(s) for s in self._sequences
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EncodedDatabase(sequences={len(self)})"
