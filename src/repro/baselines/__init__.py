"""Baseline GSM algorithms the paper compares LASH against (Sec. 3.2/3.3,
6.3) plus the classic extended-sequence GSP approach it cites (Sec. 1/7)."""

from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.seminaive import SemiNaiveAlgorithm
from repro.baselines.mgfsm import MgFsm
from repro.baselines.gsp import GspAlgorithm

__all__ = ["NaiveAlgorithm", "SemiNaiveAlgorithm", "MgFsm", "GspAlgorithm"]
