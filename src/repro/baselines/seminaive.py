"""The semi-naïve GSM baseline (paper Sec. 3.3).

Two jobs: the generalized f-list job, then the naïve enumeration applied to
sequences whose items were first replaced by their *closest frequent
ancestor* (or a blank when none exists).  Because item ids are f-list ranks,
"closest frequent ancestor" is exactly ``w``-generalization with the largest
frequent item as the threshold — the paper notes the correspondence in
Sec. 4.2.

Emitted patterns never contain blanks (the enumerator skips them) and hence
never contain infrequent items, which is what shrinks the output relative to
the naïve algorithm (``G3(b11aea)``: 19 naïve emissions vs 5 semi-naïve).
"""

from __future__ import annotations

from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.core.rewrite import w_generalize
from repro.hierarchy.flist import build_total_order
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.core.lash import FlistJob
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.sequence.database import SequenceDatabase
from repro.sequence.encoding import encode_uvarint, encoded_size
from repro.sequence.generate import generalized_subsequences


def frequency_threshold_item(vocabulary: Vocabulary, sigma: int) -> int:
    """The largest (last) frequent item id; -1 when nothing is frequent."""
    frequent = vocabulary.frequent_ids(sigma)
    return frequent[-1] if frequent else -1


def generalize_to_frequent(
    vocabulary: Vocabulary, sequence: tuple[int, ...], sigma: int
) -> list[int]:
    """Replace every item by its closest frequent ancestor (or blank)."""
    threshold = frequency_threshold_item(vocabulary, sigma)
    return w_generalize(vocabulary, sequence, threshold)


class SemiNaiveGsmJob(MapReduceJob):
    """Naïve enumeration over frequency-generalized sequences."""

    name = "semi-naive"
    has_combiner = True

    def __init__(self, vocabulary: Vocabulary, params: MiningParams) -> None:
        self.vocabulary = vocabulary
        self.params = params
        self._threshold = frequency_threshold_item(vocabulary, params.sigma)

    def map(self, record: tuple[int, ...]):
        generalized = w_generalize(self.vocabulary, record, self._threshold)
        patterns = generalized_subsequences(
            self.vocabulary, generalized, self.params.gamma, self.params.lam
        )
        for pattern in patterns:
            yield pattern, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        frequency = sum(values)
        if frequency >= self.params.sigma:
            yield key, frequency

    def kv_size(self, key, value) -> int:
        return encoded_size(key) + len(encode_uvarint(value))


class SemiNaiveAlgorithm:
    """Driver: f-list job + enumeration job."""

    algorithm_name = "semi-naive"

    def __init__(
        self,
        params: MiningParams,
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
    ) -> None:
        self.params = params
        self.engine = MapReduceEngine(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        )

    def mine(
        self,
        database: SequenceDatabase,
        hierarchy: Hierarchy | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> MiningResult:
        preprocess_job = None
        if vocabulary is None:
            if hierarchy is None:
                hierarchy = Hierarchy.flat(
                    {item for seq in database for item in seq}
                )
            flist = FlistJob(hierarchy)
            preprocess_job = self.engine.run(flist, list(database))
            frequencies = dict(preprocess_job.output)
            for item in hierarchy:
                frequencies.setdefault(item, 0)
            order = build_total_order(frequencies, hierarchy)
            vocabulary = Vocabulary(
                order, hierarchy, [frequencies[i] for i in order]
            )
        job = SemiNaiveGsmJob(vocabulary, self.params)
        encoded = [vocabulary.encode_sequence(seq) for seq in database]
        mining_job = self.engine.run(job, encoded)
        return MiningResult(
            patterns=dict(mining_job.output),
            vocabulary=vocabulary,
            params=self.params,
            algorithm=self.algorithm_name,
            preprocess_job=preprocess_job,
            mining_job=mining_job,
        )
