"""GSP over extended sequences — the classic hierarchy baseline (Sec. 1/7).

Srikant & Agrawal's approach to hierarchies, as the paper describes it:
*"make use of a mining algorithm that takes as input sequences of itemsets
... The hierarchy is then encoded into itemsets by replacing each item
("lives") by an itemset consisting of the item and its parents ({"lives",
"live", "VERB"})"*.  This module implements that baseline faithfully:

1. Every input sequence is materialized as an **extended sequence** — one
   itemset of ancestors-or-self per position — which multiplies the database
   size by roughly the hierarchy depth (the inefficiency Sec. 7 calls out).
2. Mining is **level-wise candidate-generation-and-test** (GSP): length-`k`
   candidates join frequent `(k-1)`-sequences on prefix/suffix overlap, and
   one MapReduce *counting job per level* scans the database, testing each
   candidate against the extended sequences.

Distribution strategy: candidates are broadcast to every map task and
counted against local input splits — a third strategy next to the
sequence-partitioned naïve/semi-naïve baselines and LASH's item-based
partitioning.  Every level is a full pass over the input, so GSP pays
``λ - 1`` scans where LASH pays one.

Soundness under gap constraints: the classic GSP prune (every *contiguous*
subsequence of a candidate must be frequent) is **unsound** for interior
deletions when ``γ`` is bounded — removing an interior item shortens the
distance between its neighbours and can make an infrequent pattern look
necessary (``acb`` at γ=0 supports ``a·c·b`` but not ``a·b``).  Dropping
end items keeps embeddings intact, so joining on prefix/suffix overlap —
both frequent by Lemma 1 — generates a complete candidate set and is the
only pruning applied.

Level-2 counting enumerates the gap-bounded generalized 2-subsequences of
each input directly instead of probing the ``|L1|²`` candidate pairs — the
standard GSP implementation special-case.
"""

from __future__ import annotations

from repro.core.lash import FlistJob
from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.hierarchy.flist import build_total_order
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.sequence.database import SequenceDatabase
from repro.sequence.encoding import encode_uvarint, encoded_size

Pattern = tuple[int, ...]


def extend_sequence(
    vocabulary: Vocabulary, sequence: tuple[int, ...]
) -> list[frozenset[int]]:
    """The extended-sequence encoding: one ancestors-or-self itemset per
    position (the hierarchy flattened into the data, per [26])."""
    return [
        frozenset(vocabulary.ancestors_or_self(item)) for item in sequence
    ]


def matches_extended(
    extended: list[frozenset[int]], pattern: Pattern, gamma: int | None
) -> bool:
    """Gap-constrained containment of ``pattern`` in an extended sequence.

    Itemset membership replaces the ``→*`` test: pattern item ``s`` matches
    position ``i`` iff ``s ∈ extended[i]``.
    """
    if not pattern:
        return True
    n = len(extended)
    frontier = [i for i in range(n) if pattern[0] in extended[i]]
    for sym in pattern[1:]:
        if not frontier:
            return False
        nxt: set[int] = set()
        for end in frontier:
            hi = n if gamma is None else min(n, end + 2 + gamma)
            for k in range(end + 1, hi):
                if k not in nxt and sym in extended[k]:
                    nxt.add(k)
        frontier = sorted(nxt)
    return bool(frontier)


def join_candidates(frequent: list[Pattern]) -> list[Pattern]:
    """GSP join: ``a + b[-1]`` for frequent ``a``, ``b`` with
    ``a[1:] == b[:-1]`` (complete under gap constraints; see module doc)."""
    by_prefix: dict[Pattern, list[Pattern]] = {}
    for seq in frequent:
        by_prefix.setdefault(seq[:-1], []).append(seq)
    candidates: list[Pattern] = []
    for a in frequent:
        for b in by_prefix.get(a[1:], ()):
            candidates.append(a + (b[-1],))
    return candidates


class GspLevel2Job(MapReduceJob):
    """Count all generalized 2-subsequences over frequent items directly."""

    name = "gsp-L2"
    has_combiner = True

    def __init__(
        self,
        vocabulary: Vocabulary,
        params: MiningParams,
        frequent_items: frozenset[int],
    ) -> None:
        self.vocabulary = vocabulary
        self.params = params
        self.frequent_items = frequent_items

    def map(self, record: tuple[int, ...]):
        gamma = self.params.gamma
        extended = extend_sequence(self.vocabulary, record)
        n = len(extended)
        seen: set[Pattern] = set()
        for i, first_set in enumerate(extended):
            hi = n if gamma is None else min(n, i + 2 + gamma)
            for k in range(i + 1, hi):
                for x in first_set & self.frequent_items:
                    for y in extended[k] & self.frequent_items:
                        seen.add((x, y))
        for pair in seen:
            yield pair, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        frequency = sum(values)
        if frequency >= self.params.sigma:
            yield key, frequency

    def kv_size(self, key, value) -> int:
        return encoded_size(key) + len(encode_uvarint(value))


class GspCountJob(MapReduceJob):
    """Count a broadcast candidate set against extended sequences (k ≥ 3)."""

    name = "gsp-count"
    has_combiner = True

    def __init__(
        self,
        vocabulary: Vocabulary,
        params: MiningParams,
        candidates: list[Pattern],
    ) -> None:
        self.vocabulary = vocabulary
        self.params = params
        # Index by first item so a map call only probes plausible candidates.
        self._by_first: dict[int, list[Pattern]] = {}
        for candidate in candidates:
            self._by_first.setdefault(candidate[0], []).append(candidate)

    def map(self, record: tuple[int, ...]):
        extended = extend_sequence(self.vocabulary, record)
        present: set[int] = set().union(*extended) if extended else set()
        gamma = self.params.gamma
        for first in present:
            for candidate in self._by_first.get(first, ()):
                if all(x in present for x in candidate[1:]) and (
                    matches_extended(extended, candidate, gamma)
                ):
                    yield candidate, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        frequency = sum(values)
        if frequency >= self.params.sigma:
            yield key, frequency

    def kv_size(self, key, value) -> int:
        return encoded_size(key) + len(encode_uvarint(value))


class GspAlgorithm:
    """Driver: f-list preprocessing + one counting job per pattern length.

    The f-list job doubles as level-1 counting: ``f0(w, D)`` — sequences
    containing ``w`` or a descendant — is exactly a single item's support
    over the extended database.

    The per-level candidate and frequent-set sizes are recorded in
    :attr:`level_sizes` (``{length: (candidates, frequent)}``) for
    diagnostics and benchmarks.
    """

    algorithm_name = "gsp"

    def __init__(
        self,
        params: MiningParams,
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
    ) -> None:
        self.params = params
        self.engine = MapReduceEngine(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        )
        self.level_sizes: dict[int, tuple[int, int]] = {}

    def mine(
        self,
        database: SequenceDatabase,
        hierarchy: Hierarchy | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> MiningResult:
        preprocess_job = None
        if vocabulary is None:
            if hierarchy is None:
                hierarchy = Hierarchy.flat(
                    {item for seq in database for item in seq}
                )
            flist = FlistJob(hierarchy)
            preprocess_job = self.engine.run(flist, list(database))
            frequencies = dict(preprocess_job.output)
            for item in hierarchy:
                frequencies.setdefault(item, 0)
            order = build_total_order(frequencies, hierarchy)
            vocabulary = Vocabulary(
                order, hierarchy, [frequencies[i] for i in order]
            )
        encoded = [vocabulary.encode_sequence(seq) for seq in database]

        counters = Counters()
        metrics = JobMetrics(name=self.algorithm_name)
        patterns: dict[Pattern, int] = {}
        self.level_sizes = {}

        # Level 1 comes from the f-list; level 2 is counted by enumeration.
        frequent_items = vocabulary.frequent_ids(self.params.sigma)
        self.level_sizes[1] = (len(vocabulary), len(frequent_items))
        frequent: list[Pattern] = []
        if frequent_items:
            job = GspLevel2Job(
                vocabulary, self.params, frozenset(frequent_items)
            )
            frequent = self._run_level(
                job, encoded, counters, metrics, patterns
            )
            self.level_sizes[2] = (len(frequent_items) ** 2, len(frequent))

        length = 3
        while frequent and length <= self.params.lam:
            candidates = join_candidates(frequent)
            if not candidates:
                break
            job = GspCountJob(vocabulary, self.params, candidates)
            frequent = self._run_level(
                job, encoded, counters, metrics, patterns
            )
            self.level_sizes[length] = (len(candidates), len(frequent))
            length += 1

        mining_job = JobResult(
            output=list(patterns.items()), counters=counters, metrics=metrics
        )
        return MiningResult(
            patterns=patterns,
            vocabulary=vocabulary,
            params=self.params,
            algorithm=self.algorithm_name,
            preprocess_job=preprocess_job,
            mining_job=mining_job,
        )

    def _run_level(
        self,
        job: MapReduceJob,
        encoded: list[tuple[int, ...]],
        counters: Counters,
        metrics: JobMetrics,
        patterns: dict[Pattern, int],
    ) -> list[Pattern]:
        """Run one counting job, merge its profile, absorb its output."""
        result = self.engine.run(job, encoded)
        counters.merge(result.counters)
        metrics.merge(result.metrics)
        level = dict(result.output)
        patterns.update(level)
        return sorted(level)
