"""The naïve GSM baseline (paper Sec. 3.2).

"Word counting" over generalized subsequences: the map phase emits **every**
``S ∈ Gλ(T)`` of every input sequence; the reduce phase counts and filters
by σ.  Simple, correct — and exponential: ``O(l^δλ)`` emissions per sequence
for γ=0 and ``O((δ+1)^l)`` in the unconstrained case, which Fig. 4(a,b)
demonstrates.
"""

from __future__ import annotations

from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.hierarchy.flist import build_vocabulary
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.sequence.database import SequenceDatabase
from repro.sequence.encoding import encode_uvarint, encoded_size
from repro.sequence.generate import generalized_subsequences


class NaiveGsmJob(MapReduceJob):
    """Emit every generalized subsequence; count in the reducer."""

    name = "naive"
    has_combiner = True

    def __init__(self, vocabulary: Vocabulary, params: MiningParams) -> None:
        self.vocabulary = vocabulary
        self.params = params

    def map(self, record: tuple[int, ...]):
        patterns = generalized_subsequences(
            self.vocabulary, record, self.params.gamma, self.params.lam
        )
        for pattern in patterns:
            yield pattern, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        frequency = sum(values)
        if frequency >= self.params.sigma:
            yield key, frequency

    def kv_size(self, key, value) -> int:
        return encoded_size(key) + len(encode_uvarint(value))


class NaiveAlgorithm:
    """Driver: one MapReduce job over the encoded database.

    Item ids still come from the generalized f-list (the paper assigns ids
    this way for every implementation, Sec. 6.1), but the naïve algorithm
    makes no use of the frequencies.
    """

    algorithm_name = "naive"

    def __init__(
        self,
        params: MiningParams,
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
    ) -> None:
        self.params = params
        self.engine = MapReduceEngine(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        )

    def mine(
        self,
        database: SequenceDatabase,
        hierarchy: Hierarchy | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> MiningResult:
        if vocabulary is None:
            if hierarchy is None:
                hierarchy = Hierarchy.flat(
                    {item for seq in database for item in seq}
                )
            vocabulary = build_vocabulary(database, hierarchy)
        job = NaiveGsmJob(vocabulary, self.params)
        encoded = [vocabulary.encode_sequence(seq) for seq in database]
        mining_job = self.engine.run(job, encoded)
        return MiningResult(
            patterns=dict(mining_job.output),
            vocabulary=vocabulary,
            params=self.params,
            algorithm=self.algorithm_name,
            mining_job=mining_job,
        )
