"""MG-FSM (Miliaraki et al., SIGMOD 2013) as reproduced for Fig. 4(e).

MG-FSM is flat (hierarchy-free) frequent sequence mining with item-based
partitioning — LASH's direct ancestor.  The paper compares against it by
running both systems without hierarchies and attributes LASH's 2–5× edge to
PSM replacing MG-FSM's BFS local miner (Sec. 6.3, footnote 3: "LASH is
equivalent to MG-FSM with its local miner replaced by PSM").

Accordingly this driver *is* the LASH machinery with a flat hierarchy and a
BFS local miner; ``Lash`` with ``hierarchy=None`` and the default PSM miner
is the "LASH (no hierarchy)" configuration of the same figure.
"""

from __future__ import annotations

from repro.core.lash import Lash, MinerFactory
from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase


class MgFsm:
    """Flat item-based partitioning with a BFS local miner."""

    algorithm_name = "mg-fsm"

    def __init__(
        self,
        params: MiningParams,
        local_miner: str | MinerFactory = "bfs",
        num_map_tasks: int = 8,
        num_reduce_tasks: int = 8,
    ) -> None:
        self._lash = Lash(
            params,
            local_miner=local_miner,
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
        )

    @property
    def params(self) -> MiningParams:
        return self._lash.params

    def mine(self, database: SequenceDatabase) -> MiningResult:
        flat = Hierarchy.flat({item for seq in database for item in seq})
        result = self._lash.mine(database, flat)
        result.algorithm = self.algorithm_name
        return result
