"""The paper's running example (Fig. 1) and the Eq. (4) partition."""

from __future__ import annotations

from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase


def example_hierarchy() -> Hierarchy:
    """Fig. 1(b): roots a, B, c, D, e, f; B → {b1, b2, b3}; b1 → {b11, b12,
    b13}; D → {d1, d2}."""
    h = Hierarchy()
    for root in ("a", "B", "c", "D", "e", "f"):
        h.add_item(root)
    for child in ("b1", "b2", "b3"):
        h.add_edge(child, "B")
    for child in ("b11", "b12", "b13"):
        h.add_edge(child, "b1")
    for child in ("d1", "d2"):
        h.add_edge(child, "D")
    return h


def example_database() -> SequenceDatabase:
    """Fig. 1(a): the six sequences T1 … T6."""
    return SequenceDatabase(
        [
            ["a", "b1", "a", "b1"],  # T1
            ["a", "b3", "c", "c", "b2"],  # T2
            ["a", "c"],  # T3
            ["b11", "a", "e", "a"],  # T4
            ["a", "b12", "d1", "c"],  # T5
            ["b13", "f", "d2"],  # T6
        ]
    )


def eq4_partition_sequences() -> list[list[str]]:
    """The example partition P_D of Eq. (4) (σ=2, γ=1, λ=4); ``"_"`` marks
    the blank placeholder."""
    return [
        ["a", "D", "D", "a"],
        ["c", "a", "b1", "D"],
        ["c", "a", "_", "D", "B"],
        ["B", "a", "a", "D", "b1", "c"],
    ]
