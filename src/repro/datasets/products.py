"""Synthetic product sessions with a category taxonomy of variable depth.

Stand-in for the Amazon reviews dataset of the paper (Sec. 6.1): user
sessions are product sequences ordered by time; products hang below chains
of categories.  The paper derives hierarchies **h2, h3, h4, h8** "by varying
the number of intermediate categories a product is assigned to" and observes
that most products have no more than 4 parent categories.

We generate one *master* taxonomy in which each product has a ragged
category chain — root category, then ``d-1`` nested subcategories with ``d``
drawn so that chains longer than 4 are rare — and derive ``h_k`` by keeping
at most ``k-1`` categories of each product's chain (counted from the root).
Users shop in a few preferred subtrees with Zipfian product popularity,
which makes generalized patterns ("some camera, then some photography
book") genuinely frequent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.zipf import ZipfSampler
from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase


@dataclass
class ProductDataConfig:
    """Generator knobs; defaults give a small but structured dataset."""

    num_users: int = 2000
    num_products: int = 800
    num_root_categories: int = 12
    subcategories_per_level: int = 3
    max_chain_length: int = 7  # categories per product in the master taxonomy
    #: probability weights for chain lengths 1..max (favouring ≤ 4, paper)
    chain_length_weights: tuple[float, ...] = (0.15, 0.3, 0.3, 0.15, 0.05, 0.03, 0.02)
    avg_session_length: float = 4.5
    max_session_length: int = 40
    zipf_exponent: float = 1.05
    seed: int = 29


@dataclass
class ProductData:
    """Generated sessions plus the h2…h8 hierarchy variants."""

    database: SequenceDatabase
    #: product → full category chain, most specific first
    chains: dict[str, tuple[str, ...]] = field(default_factory=dict)
    max_levels: int = 8

    def hierarchy(self, levels: int) -> Hierarchy:
        """The ``h{levels}`` hierarchy: product plus ≤ ``levels-1`` categories.

        ``levels=2`` connects each product directly to its root category;
        larger values reveal more of the chain (capped by the product's own
        chain length — chains are ragged, as in the real taxonomy).
        """
        if not 2 <= levels <= self.max_levels:
            raise ValueError(
                f"levels must be in [2, {self.max_levels}], got {levels}"
            )
        h = Hierarchy()
        for product, chain in self.chains.items():
            # chain is most-specific-first; keep the levels-1 categories
            # closest to the root and build product → c_spec → … → root
            kept = chain[-(levels - 1):]
            nodes = (product, *kept)
            for child, parent in zip(nodes, nodes[1:]):
                h.add_edge(child, parent)
        return h

    def flat_hierarchy(self) -> Hierarchy:
        return Hierarchy.flat({p for s in self.database for p in s})


def _category_name(path: tuple[int, ...]) -> str:
    return "cat:" + ".".join(str(i) for i in path)


def generate_product_data(config: ProductDataConfig | None = None) -> ProductData:
    """Generate sessions and the master taxonomy."""
    config = config or ProductDataConfig()
    rng = random.Random(config.seed)
    np_rng = np.random.default_rng(config.seed)

    weights = list(config.chain_length_weights)[: config.max_chain_length]
    lengths = list(range(1, len(weights) + 1))

    # master taxonomy: product → (most specific category, …, root category)
    chains: dict[str, tuple[str, ...]] = {}
    products_by_root: dict[int, list[str]] = {}
    for pid in range(config.num_products):
        root = rng.randrange(config.num_root_categories)
        depth = rng.choices(lengths, weights=weights)[0]
        path = (root,)
        for _ in range(depth - 1):
            path = path + (rng.randrange(config.subcategories_per_level),)
        # chain from most specific to root
        chain = tuple(
            _category_name(path[: k]) for k in range(len(path), 0, -1)
        )
        product = f"p{pid:05d}"
        chains[product] = chain
        products_by_root.setdefault(root, []).append(product)

    # user sessions: Zipf popularity within a few preferred root categories
    sessions: list[list[str]] = []
    samplers: dict[int, ZipfSampler] = {}
    for _ in range(config.num_users):
        preferred = rng.sample(
            sorted(products_by_root),
            k=min(len(products_by_root), rng.choice((1, 1, 2, 3))),
        )
        length = min(
            config.max_session_length,
            max(1, int(np_rng.geometric(1.0 / config.avg_session_length))),
        )
        session: list[str] = []
        for _ in range(length):
            root = rng.choice(preferred)
            pool = products_by_root[root]
            sampler = samplers.get(root)
            if sampler is None:
                sampler = samplers[root] = ZipfSampler(
                    len(pool), config.zipf_exponent, np_rng
                )
            session.append(pool[int(sampler.sample())])
        sessions.append(session)

    return ProductData(
        database=SequenceDatabase(sessions),
        chains=chains,
        max_levels=config.max_chain_length + 1,
    )
