"""Synthetic machine event logs with planted failure cascades.

The paper's introduction motivates GSM with *"error logs, or event
sequences"*: concrete events (``evt:net.eth0.drop.3``) generalize through
an error class (``class:net.eth0.drop``) and a component (``comp:net.eth0``)
up to a subsystem (``sys:net``) — a four-level forest.

The generator **plants** failure cascades: class-level templates such as
``disk timeout → raid degraded → fs remount`` are injected into a noise
stream, with every step drawn uniformly from the class's concrete event
codes and with random noise events in between (up to the configured gap).
Because each concrete realization is different, the cascade is *invisible*
to flat sequence mining at any reasonable support — only its class-level
generalization is frequent.  The planted templates are returned as ground
truth, giving integration tests and examples a recall target:
:func:`planted_patterns` lists the class sequences a correct GSM run must
report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase


@dataclass
class EventLogConfig:
    """Generator knobs; defaults give a compact but structured log corpus."""

    num_machines: int = 1500
    avg_log_length: int = 12
    max_log_length: int = 60
    num_subsystems: int = 4
    components_per_subsystem: int = 3
    classes_per_component: int = 3
    events_per_class: int = 4
    num_cascades: int = 3
    cascade_length: int = 3
    #: probability that a log position starts a cascade instead of noise
    cascade_rate: float = 0.12
    #: max noise events interleaved between consecutive cascade steps
    max_interleave: int = 1
    seed: int = 47


@dataclass
class EventLog:
    """Generated logs, their hierarchy, and the planted ground truth."""

    database: SequenceDatabase
    hierarchy: Hierarchy
    #: planted cascade templates as class-level item sequences
    cascades: list[tuple[str, ...]] = field(default_factory=list)
    config: EventLogConfig = field(default_factory=EventLogConfig)

    def planted_patterns(self) -> list[tuple[str, ...]]:
        """The class-level sequences a correct GSM run must find frequent
        (γ ≥ the interleave bound, λ ≥ the cascade length)."""
        return list(self.cascades)

    def flat_hierarchy(self) -> Hierarchy:
        return Hierarchy.flat({e for log in self.database for e in log})


def _names(config: EventLogConfig):
    """Enumerate (event, class, component, subsystem) name tuples."""
    for s in range(config.num_subsystems):
        sys_name = f"sys:{s}"
        for c in range(config.components_per_subsystem):
            comp_name = f"comp:{s}.{c}"
            for k in range(config.classes_per_component):
                class_name = f"class:{s}.{c}.{k}"
                for e in range(config.events_per_class):
                    yield f"evt:{s}.{c}.{k}.{e}", class_name, comp_name, sys_name


def generate_event_log(config: EventLogConfig | None = None) -> EventLog:
    """Generate machine logs with planted cascades (see module doc)."""
    config = config or EventLogConfig()
    if config.cascade_length < 2:
        raise ValueError("cascade_length must be >= 2")
    rng = random.Random(config.seed)

    hierarchy = Hierarchy()
    events_by_class: dict[str, list[str]] = {}
    all_events: list[str] = []
    for event, class_name, comp_name, sys_name in _names(config):
        if class_name not in hierarchy:
            if comp_name not in hierarchy:
                hierarchy.add_edge(comp_name, sys_name)
            hierarchy.add_edge(class_name, comp_name)
        hierarchy.add_edge(event, class_name)
        events_by_class.setdefault(class_name, []).append(event)
        all_events.append(event)

    # Plant cascade templates over distinct classes so each template is a
    # distinguishable class-level pattern.
    classes = sorted(events_by_class)
    rng.shuffle(classes)
    cascades: list[tuple[str, ...]] = []
    needed = config.num_cascades * config.cascade_length
    if needed > len(classes):
        raise ValueError(
            f"not enough event classes ({len(classes)}) for "
            f"{config.num_cascades} cascades of length {config.cascade_length}"
        )
    for i in range(config.num_cascades):
        start = i * config.cascade_length
        cascades.append(tuple(classes[start : start + config.cascade_length]))

    logs: list[list[str]] = []
    for _ in range(config.num_machines):
        length = min(
            config.max_log_length,
            max(2, int(rng.expovariate(1.0 / config.avg_log_length))),
        )
        log: list[str] = []
        while len(log) < length:
            if rng.random() < config.cascade_rate:
                template = rng.choice(cascades)
                for step, class_name in enumerate(template):
                    if step > 0 and config.max_interleave > 0:
                        for _ in range(rng.randint(0, config.max_interleave)):
                            log.append(rng.choice(all_events))
                    log.append(rng.choice(events_by_class[class_name]))
            else:
                log.append(rng.choice(all_events))
        logs.append(log[: config.max_log_length])

    return EventLog(
        database=SequenceDatabase(logs),
        hierarchy=hierarchy,
        cascades=cascades,
        config=config,
    )
