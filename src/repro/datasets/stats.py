"""Dataset and hierarchy characteristics (paper Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hierarchy.hierarchy import Hierarchy


@dataclass(frozen=True)
class HierarchyStats:
    """Table 2 row: structural characteristics of one hierarchy."""

    total_items: int
    leaf_items: int
    root_items: int
    intermediate_items: int
    levels: int
    avg_fan_out: float
    max_fan_out: int

    def row(self) -> dict[str, object]:
        return {
            "Total items": self.total_items,
            "Leaf items": self.leaf_items,
            "Root items": self.root_items,
            "Intermediate items": self.intermediate_items,
            "Levels": self.levels,
            "Avg.fan-out": round(self.avg_fan_out, 1),
            "Max.fan-out": self.max_fan_out,
        }


def hierarchy_stats(hierarchy: Hierarchy) -> HierarchyStats:
    """Compute the Table 2 characteristics of a hierarchy.

    Following the paper's accounting: leaves have no children, roots have no
    parents, intermediates have both; isolated items (no parent, no child)
    count as both a root and a leaf.  Fan-out statistics cover items with at
    least one child.
    """
    fan_outs = hierarchy.fan_outs()
    return HierarchyStats(
        total_items=len(hierarchy),
        leaf_items=len(hierarchy.leaves()),
        root_items=len(hierarchy.roots()),
        intermediate_items=len(hierarchy.intermediate_items()),
        levels=hierarchy.num_levels(),
        avg_fan_out=(sum(fan_outs) / len(fan_outs)) if fan_outs else 0.0,
        max_fan_out=max(fan_outs, default=0),
    )
