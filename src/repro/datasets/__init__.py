"""Dataset substrates: the paper's running example and synthetic stand-ins
for the NYT and Amazon datasets (see DESIGN.md for the substitution note)."""

from repro.datasets.example import (
    example_database,
    example_hierarchy,
    eq4_partition_sequences,
)
from repro.datasets.text import TextCorpusConfig, TextCorpus, generate_text_corpus
from repro.datasets.products import (
    ProductDataConfig,
    ProductData,
    generate_product_data,
)
from repro.datasets.events import (
    EventLogConfig,
    EventLog,
    generate_event_log,
)
from repro.datasets.stats import hierarchy_stats, HierarchyStats

__all__ = [
    "EventLogConfig",
    "EventLog",
    "generate_event_log",
    "example_database",
    "example_hierarchy",
    "eq4_partition_sequences",
    "TextCorpusConfig",
    "TextCorpus",
    "generate_text_corpus",
    "ProductDataConfig",
    "ProductData",
    "generate_product_data",
    "hierarchy_stats",
    "HierarchyStats",
]
