"""Synthetic natural-language corpus with a syntactic hierarchy.

Stand-in for the New York Times corpus of the paper (Sec. 6.1): we cannot
ship the LDC-licensed data, so we generate sentences whose statistics
exercise the same code paths — Zipfian word frequencies, derivational
morphology (lemma → inflected forms), sentence-initial capitalization — and
derive the paper's four hierarchy variants:

* **L**   word → lemma                      (2 levels, many roots, low fan-out)
* **P**   word → POS                        (2 levels, few roots, huge fan-out)
* **LP**  word → lemma → POS                (3 levels)
* **CLP** word → lowercase → lemma → POS    (4 levels)

As in the real data, surface forms frequently coincide with their lowercase
form or lemma, so input sequences naturally mix hierarchy levels.

Sentences come from a small template grammar (determiner–adjective–noun
phrases, verbs with optional objects and prepositional phrases), which makes
generalized patterns like ``the ADJ NOUN`` or ``NOUN VERB in NOUN`` genuinely
frequent — the paper's motivating examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.zipf import ZipfSampler
from repro.hierarchy.hierarchy import Hierarchy
from repro.sequence.database import SequenceDatabase

#: inflectional suffixes per part of speech
_SUFFIXES = {
    "NOUN": ["", "s"],
    "VERB": ["", "s", "ed", "ing"],
    "ADJ": ["", "er", "est"],
    "ADV": [""],
    "DET": [""],
    "PREP": [""],
    "PRON": [""],
}

#: closed-class lemmas (fixed, high-frequency)
_CLOSED = {
    "DET": ["the", "a", "this", "some"],
    "PREP": ["in", "on", "at", "with", "from"],
    "PRON": ["it", "she", "he", "they"],
}

_SENTENCE_TEMPLATES = [
    ["DET", "NOUN", "VERB"],
    ["DET", "ADJ", "NOUN", "VERB", "DET", "NOUN"],
    ["DET", "NOUN", "VERB", "PREP", "DET", "NOUN"],
    ["PRON", "VERB", "DET", "ADJ", "NOUN"],
    ["DET", "ADJ", "NOUN", "VERB", "ADV"],
    ["NOUN", "VERB", "PREP", "NOUN"],
    ["PRON", "VERB", "ADV", "PREP", "DET", "NOUN"],
    ["DET", "NOUN", "PREP", "DET", "NOUN", "VERB", "DET", "NOUN"],
]

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


@dataclass
class TextCorpusConfig:
    """Generator knobs; defaults give a small but non-trivial corpus."""

    num_sentences: int = 5000
    num_nouns: int = 400
    num_verbs: int = 200
    num_adjectives: int = 150
    num_adverbs: int = 60
    zipf_exponent: float = 1.05
    capitalize_first: bool = True
    seed: int = 13


@dataclass
class TextCorpus:
    """Generated corpus plus its four hierarchy variants."""

    database: SequenceDatabase
    hierarchies: dict[str, Hierarchy] = field(default_factory=dict)

    def hierarchy(self, variant: str) -> Hierarchy:
        """``variant`` ∈ {"L", "P", "LP", "CLP"} (or "flat")."""
        if variant == "flat":
            items = {w for s in self.database for w in s}
            return Hierarchy.flat(items)
        try:
            return self.hierarchies[variant]
        except KeyError:
            raise KeyError(
                f"unknown hierarchy variant {variant!r}; "
                f"available: {sorted(self.hierarchies)}"
            ) from None


def _make_lemma(rng: random.Random, syllables: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
        for _ in range(syllables)
    )


def _lemma_inventory(config: TextCorpusConfig, rng: random.Random) -> dict[str, list[str]]:
    """POS → list of lemmas (rank order = popularity order).

    Every inflected form of every lemma is globally unique, so each surface
    form has exactly one derivation chain and the hierarchies stay forests.
    """
    counts = {
        "NOUN": config.num_nouns,
        "VERB": config.num_verbs,
        "ADJ": config.num_adjectives,
        "ADV": config.num_adverbs,
    }
    inventory: dict[str, list[str]] = {p: list(ls) for p, ls in _CLOSED.items()}
    reserved: set[str] = set()
    for pos, lemmas in _CLOSED.items():
        for lemma in lemmas:
            reserved.update(lemma + suffix for suffix in _SUFFIXES[pos])
    for pos, count in counts.items():
        lemmas: list[str] = []
        while len(lemmas) < count:
            lemma = _make_lemma(rng, rng.choice((2, 2, 3)))
            if pos == "ADV":
                lemma += "ly"
            forms = {lemma + suffix for suffix in _SUFFIXES[pos]}
            if reserved & forms:
                continue
            reserved |= forms
            lemmas.append(lemma)
        inventory[pos] = lemmas
    return inventory


def _inflect(lemma: str, pos: str, rng: random.Random) -> str:
    return lemma + rng.choice(_SUFFIXES[pos])


def generate_text_corpus(config: TextCorpusConfig | None = None) -> TextCorpus:
    """Generate the corpus and its L/P/LP/CLP hierarchies."""
    config = config or TextCorpusConfig()
    rng = random.Random(config.seed)
    np_rng = np.random.default_rng(config.seed)
    inventory = _lemma_inventory(config, rng)
    samplers = {
        pos: ZipfSampler(len(lemmas), config.zipf_exponent, np_rng)
        for pos, lemmas in inventory.items()
    }

    #: word → (lowercase form, lemma, POS); built lazily as words appear
    derivations: dict[str, tuple[str, str, str]] = {}
    sentences: list[list[str]] = []
    for _ in range(config.num_sentences):
        template = rng.choice(_SENTENCE_TEMPLATES)
        sentence: list[str] = []
        for slot, pos in enumerate(template):
            lemma = inventory[pos][int(samplers[pos].sample())]
            lower = _inflect(lemma, pos, rng)
            word = lower
            if config.capitalize_first and slot == 0:
                word = lower[0].upper() + lower[1:]
            derivations.setdefault(word, (lower, lemma, pos))
            sentence.append(word)
        sentences.append(sentence)

    database = SequenceDatabase(sentences)
    corpus = TextCorpus(database=database)
    corpus.hierarchies = {
        "L": _build_hierarchy(derivations, case=False, lemma=True, pos=False),
        "P": _build_hierarchy(derivations, case=False, lemma=False, pos=True),
        "LP": _build_hierarchy(derivations, case=False, lemma=True, pos=True),
        "CLP": _build_hierarchy(derivations, case=True, lemma=True, pos=True),
    }
    return corpus


def _build_hierarchy(
    derivations: dict[str, tuple[str, str, str]],
    case: bool,
    lemma: bool,
    pos: bool,
) -> Hierarchy:
    """Chain each word through the requested levels, skipping levels whose
    item coincides with the previous one (e.g. lowercase word == lemma)."""
    h = Hierarchy()
    for word, (lower, lem, tag) in derivations.items():
        chain = [word]
        if case and lower != chain[-1]:
            chain.append(lower)
        if lemma and lem != chain[-1]:
            chain.append(lem)
        if pos:
            chain.append(tag)
        h.add_item(chain[0])
        for child, parent in zip(chain, chain[1:]):
            h.add_edge(child, parent)
    return h
