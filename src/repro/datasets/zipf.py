"""Zipf-distributed sampling utilities.

Natural-language token frequencies and product popularities are famously
Zipfian; both synthetic generators sample ranks from a bounded Zipf
(power-law) distribution with exponent ``s``.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Samples ranks ``0 … n-1`` with ``P(k) ∝ 1 / (k+1)^s``."""

    def __init__(self, n: int, s: float = 1.1, rng: np.random.Generator | None = None):
        if n < 1:
            raise ValueError(f"need at least one rank, got n={n}")
        if s < 0:
            raise ValueError(f"exponent must be non-negative, got s={s}")
        self.n = n
        self.s = s
        self._rng = rng if rng is not None else np.random.default_rng(0)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        self._probabilities = weights / weights.sum()

    def sample(self, size: int | None = None):
        """One rank (``size=None``) or an ndarray of ranks."""
        return self._rng.choice(self.n, size=size, p=self._probabilities)

    def probability(self, rank: int) -> float:
        return float(self._probabilities[rank])
