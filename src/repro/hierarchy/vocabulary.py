"""Integer-coded vocabularies ordered by the LASH total order.

After preprocessing, LASH assigns every item an integer id equal to its rank
in the total order ``<`` (paper Sec. 3.4): the most frequent item gets id 0.
This property makes all pivot/relevance comparisons plain integer
comparisons, and guarantees ``w2 → w1  ⇒  id(w1) < id(w2)`` (ancestors have
smaller ids than their descendants).

A :class:`Vocabulary` is immutable once built; construction happens in
:mod:`repro.hierarchy.flist`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.constants import BLANK, NO_PARENT
from repro.errors import HierarchyError, UnknownItemError
from repro.hierarchy.hierarchy import Hierarchy


class Vocabulary:
    """Item name ↔ id codes plus encoded hierarchy structure.

    Parameters
    ----------
    ordered_items:
        Item names sorted ascending in the LASH total order (rank 0 first,
        i.e. most frequent / most general first).
    hierarchy:
        The string-level hierarchy the order was derived from.
    frequencies:
        Generalized document frequencies ``f0(w, D)`` aligned with
        ``ordered_items``.
    """

    def __init__(
        self,
        ordered_items: Sequence[str],
        hierarchy: Hierarchy,
        frequencies: Sequence[int] | None = None,
    ) -> None:
        self._names: tuple[str, ...] = tuple(ordered_items)
        self._ids: dict[str, int] = {n: i for i, n in enumerate(self._names)}
        if len(self._ids) != len(self._names):
            raise HierarchyError("duplicate item names in vocabulary order")
        self._hierarchy = hierarchy
        if frequencies is None:
            frequencies = [0] * len(self._names)
        if len(frequencies) != len(self._names):
            raise HierarchyError("frequencies not aligned with item order")
        self._freqs: tuple[int, ...] = tuple(int(f) for f in frequencies)

        # Encoded structure.  parent_ids holds the single parent for forest
        # nodes; multi-parent (DAG) nodes record NO_PARENT there and keep the
        # full parent set in _multi_parents.
        n = len(self._names)
        self._parent_ids: list[int] = [NO_PARENT] * n
        self._multi_parents: dict[int, tuple[int, ...]] = {}
        self._anc_or_self: list[tuple[int, ...]] = [()] * n
        self._depths: list[int] = [0] * n
        for item_id, name in enumerate(self._names):
            if name not in hierarchy:
                # Item occurs in the data but not in the hierarchy: treat it
                # as an isolated root.
                self._anc_or_self[item_id] = (item_id,)
                continue
            parent_names = hierarchy.parents(name)
            parent_ids = tuple(sorted(self._require_id(p) for p in parent_names))
            if len(parent_ids) == 1:
                self._parent_ids[item_id] = parent_ids[0]
            elif len(parent_ids) > 1:
                self._multi_parents[item_id] = parent_ids
            anc = sorted(self._require_id(a) for a in hierarchy.ancestors(name))
            for a in anc:
                if a >= item_id:
                    raise HierarchyError(
                        f"order violates hierarchy: ancestor "
                        f"{self._names[a]!r} not smaller than {name!r}"
                    )
            # ascending ids: most general first, the item itself last
            self._anc_or_self[item_id] = tuple(anc) + (item_id,)
            self._depths[item_id] = hierarchy.depth(name)

        # Chain-ness (ancestors totally ordered) per item, computed bottom-up:
        # ids ascend from ancestors to descendants, so parents are done first.
        self._chain: list[bool] = [True] * n
        for item_id in range(n):
            parents = self.parent_ids(item_id)
            if len(parents) > 1:
                self._chain[item_id] = False
            elif parents:
                self._chain[item_id] = self._chain[parents[0]]

        # decoded-pattern memo: serving decodes the same ranked patterns
        # on every repeated query, and name() per item dominates that
        # cost (values are tuples of the interned names — tiny)
        self._decode_cache: dict[tuple[int, ...], tuple[str, ...]] = {}

    def _require_id(self, name: str) -> int:
        try:
            return self._ids[name]
        except KeyError:
            raise HierarchyError(
                f"hierarchy item {name!r} missing from vocabulary order"
            ) from None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._ids

    @property
    def hierarchy(self) -> Hierarchy:
        return self._hierarchy

    def id(self, name: str) -> int:
        """Integer id (= rank in the total order) of ``name``."""
        try:
            return self._ids[name]
        except KeyError:
            raise UnknownItemError(name) from None

    def name(self, item_id: int) -> str:
        """Item name for ``item_id``; blanks render as ``"_"``."""
        if item_id == BLANK:
            return "_"
        try:
            return self._names[item_id]
        except IndexError:
            raise UnknownItemError(item_id) from None

    def frequency(self, item_id: int) -> int:
        """Generalized document frequency ``f0(w, D)`` of the item."""
        return self._freqs[item_id]

    def frequency_of(self, name: str) -> int:
        return self._freqs[self.id(name)]

    def frequent_ids(self, sigma: int) -> list[int]:
        """Ids of items with ``f0 ≥ sigma``, ascending (most frequent first)."""
        return [i for i, f in enumerate(self._freqs) if f >= sigma]

    # ------------------------------------------------------------------
    # hierarchy structure over ids
    # ------------------------------------------------------------------

    def parent_id(self, item_id: int) -> int:
        """Single-parent id or ``NO_PARENT``; errors for DAG nodes."""
        if item_id in self._multi_parents:
            raise HierarchyError(
                f"item {self.name(item_id)!r} has multiple parents"
            )
        return self._parent_ids[item_id]

    def parent_ids(self, item_id: int) -> tuple[int, ...]:
        """All parent ids of the item (possibly empty)."""
        if item_id in self._multi_parents:
            return self._multi_parents[item_id]
        p = self._parent_ids[item_id]
        return () if p == NO_PARENT else (p,)

    def ancestors_or_self(self, item_id: int) -> tuple[int, ...]:
        """Ancestor ids (ascending) ending with ``item_id`` itself.

        Because ancestors are always smaller in the total order, the tuple is
        sorted ascending with the item itself in last position.
        """
        if item_id == BLANK:
            return ()
        return self._anc_or_self[item_id]

    def ancestors(self, item_id: int) -> tuple[int, ...]:
        """Strict ancestor ids, ascending."""
        return self.ancestors_or_self(item_id)[:-1]

    def depth(self, item_id: int) -> int:
        return self._depths[item_id]

    def generalizes_to(self, specific: int, general: int) -> bool:
        """``specific →* general`` over ids; blanks match nothing."""
        if specific == BLANK or general == BLANK:
            return False
        if specific == general:
            return True
        if general > specific:
            return False  # ancestors are always smaller
        anc = self._anc_or_self[specific]
        # anc is sorted ascending; binary membership test
        pos = bisect_right(anc, general) - 1
        return pos >= 0 and anc[pos] == general

    def largest_relevant_ancestor(self, item_id: int, pivot_id: int) -> int:
        """Largest (w.r.t. ``<``) ancestor-or-self of the item that is
        ``≤ pivot``, or :data:`BLANK` when none exists.

        This is the replacement rule of ``w``-generalization (paper
        Sec. 4.2).  For forest hierarchies the ancestors form a chain so the
        maximum qualifying ancestor is unique and the replacement is exact.
        For DAG nodes the replacement is only applied when it loses no
        qualifying generalizations; otherwise the caller must keep the item.
        """
        if item_id == BLANK:
            return BLANK
        anc = self._anc_or_self[item_id]  # ascending
        pos = bisect_right(anc, pivot_id) - 1
        if pos < 0:
            return BLANK
        candidate = anc[pos]
        if self._chain[item_id]:
            return candidate
        # DAG node: the replacement is exact only if every qualifying
        # ancestor of the item is also an ancestor-or-self of the candidate.
        qualifying = anc[: pos + 1]
        cand_anc = set(self.ancestors_or_self(candidate))
        if all(a in cand_anc for a in qualifying):
            return candidate
        return item_id  # keep the original item; matching stays correct

    # ------------------------------------------------------------------
    # encoding sequences
    # ------------------------------------------------------------------

    def encode_sequence(self, seq: Iterable[str]) -> tuple[int, ...]:
        """Translate a sequence of item names to ids."""
        return tuple(self.id(t) for t in seq)

    #: decoded-sequence memo entries retained (plain insert-and-stop:
    #: the hot set is the top of the ranking, which arrives first)
    _DECODE_CACHE_CAP = 1 << 16

    def decode_sequence(self, seq: Iterable[int]) -> tuple[str, ...]:
        """Translate a sequence of ids (blanks allowed) back to names.
        Memoized: repeated queries re-decode the same ranked patterns."""
        key = tuple(seq)
        cached = self._decode_cache.get(key)
        if cached is None:
            cached = tuple(self.name(t) for t in key)
            if len(self._decode_cache) < self._DECODE_CACHE_CAP:
                self._decode_cache[key] = cached
        return cached

    def render(self, seq: Iterable[int]) -> str:
        """Human-readable rendering, e.g. ``"a b1 _ c"``."""
        return " ".join(self.decode_sequence(seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(items={len(self)})"
