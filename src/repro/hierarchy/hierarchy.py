"""String-level item hierarchies.

A :class:`Hierarchy` arranges vocabulary items in a forest: every item has at
most one parent (paper Sec. 2).  Items with multiple parents are also
accepted, turning the structure into a DAG — the paper's footnote 2 notes
that LASH extends to this case, and :mod:`repro.core.rewrite` degrades its
rewrites safely when the forest assumption does not hold.

Items are arbitrary strings.  Items never mentioned in any input sequence may
still appear in the hierarchy (e.g. intermediate product categories).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping

from repro.errors import HierarchyError


class Hierarchy:
    """A forest (or DAG) of string items with generalization edges.

    An edge ``child -> parent`` means the child *directly generalizes* to the
    parent (``u → v`` in the paper).  ``ancestors`` follow these edges
    transitively (``→*`` minus the reflexive part).
    """

    def __init__(self) -> None:
        self._parents: dict[str, tuple[str, ...]] = {}
        self._children: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_item(self, item: str, parent: str | None = None) -> "Hierarchy":
        """Register ``item``; optionally attach it below ``parent``.

        Parents are auto-registered.  Returns ``self`` for chaining.
        """
        if not isinstance(item, str) or not item:
            raise HierarchyError(f"items must be non-empty strings, got {item!r}")
        self._parents.setdefault(item, ())
        self._children.setdefault(item, [])
        if parent is not None:
            self.add_edge(item, parent)
        return self

    def add_edge(self, child: str, parent: str) -> "Hierarchy":
        """Add a generalization edge ``child → parent``."""
        if child == parent:
            raise HierarchyError(f"item {child!r} cannot be its own parent")
        self.add_item(child)
        self.add_item(parent)
        if parent in self._parents[child]:
            return self
        if self._creates_cycle(child, parent):
            raise HierarchyError(
                f"edge {child!r} -> {parent!r} would create a cycle"
            )
        self._parents[child] = self._parents[child] + (parent,)
        self._children[parent].append(child)
        return self

    def _creates_cycle(self, child: str, parent: str) -> bool:
        # A cycle appears iff child is already an ancestor of parent.
        return child in self.ancestors(parent) if parent in self._parents else False

    @classmethod
    def from_parent_map(cls, parent_map: Mapping[str, str | None]) -> "Hierarchy":
        """Build a forest from an ``item -> parent`` mapping.

        ``None`` parents mark roots.  Example::

            Hierarchy.from_parent_map({"b1": "B", "B": None})
        """
        h = cls()
        for item, parent in parent_map.items():
            h.add_item(item, parent)
        return h

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str]]) -> "Hierarchy":
        """Build from ``(child, parent)`` pairs."""
        h = cls()
        for child, parent in edges:
            h.add_edge(child, parent)
        return h

    @classmethod
    def from_file(cls, path) -> "Hierarchy":
        """Read ``item[<TAB>parent]`` lines (no parent column = root)."""
        h = cls()
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if not line.strip():
                    continue
                parts = line.split("\t")
                if len(parts) == 1 or not parts[1]:
                    h.add_item(parts[0])
                else:
                    h.add_edge(parts[0], parts[1])
        return h

    def to_file(self, path) -> None:
        """Write ``item<TAB>parent`` lines (one per edge; roots bare)."""
        with open(path, "w", encoding="utf-8") as f:
            for item in self._parents:
                parents = self._parents[item]
                if not parents:
                    f.write(f"{item}\n")
                for parent in parents:
                    f.write(f"{item}\t{parent}\n")

    @classmethod
    def flat(cls, items: Iterable[str] = ()) -> "Hierarchy":
        """A hierarchy with no edges — every item is a root.

        Mining with a flat hierarchy is exactly flat (MG-FSM style) frequent
        sequence mining.
        """
        h = cls()
        for item in items:
            h.add_item(item)
        return h

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return item in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parents)

    @property
    def items(self) -> tuple[str, ...]:
        """All registered items, in insertion order."""
        return tuple(self._parents)

    def parents(self, item: str) -> tuple[str, ...]:
        """Direct generalizations of ``item`` (empty tuple for roots)."""
        try:
            return self._parents[item]
        except KeyError:
            raise HierarchyError(f"unknown item: {item!r}") from None

    def parent(self, item: str) -> str | None:
        """The unique parent of ``item`` or ``None``; errors on DAG nodes."""
        ps = self.parents(item)
        if len(ps) > 1:
            raise HierarchyError(f"item {item!r} has multiple parents: {ps}")
        return ps[0] if ps else None

    def children(self, item: str) -> tuple[str, ...]:
        try:
            return tuple(self._children[item])
        except KeyError:
            raise HierarchyError(f"unknown item: {item!r}") from None

    def ancestors(self, item: str) -> tuple[str, ...]:
        """All strict ancestors of ``item`` in BFS order (deduplicated)."""
        seen: dict[str, None] = {}
        queue = deque(self.parents(item))
        while queue:
            cur = queue.popleft()
            if cur in seen:
                continue
            seen[cur] = None
            queue.extend(self._parents[cur])
        return tuple(seen)

    def ancestors_or_self(self, item: str) -> tuple[str, ...]:
        """``item`` followed by its strict ancestors."""
        return (item,) + self.ancestors(item)

    def descendants(self, item: str) -> tuple[str, ...]:
        """All strict descendants of ``item`` in BFS order."""
        seen: dict[str, None] = {}
        queue = deque(self.children(item))
        while queue:
            cur = queue.popleft()
            if cur in seen:
                continue
            seen[cur] = None
            queue.extend(self._children[cur])
        return tuple(seen)

    def generalizes_to(self, specific: str, general: str) -> bool:
        """``specific →* general`` (reflexive-transitive generalization)."""
        return specific == general or general in self.ancestors(specific)

    def depth(self, item: str) -> int:
        """Longest edge distance from ``item`` up to a root (roots are 0)."""
        parents = self.parents(item)
        if not parents:
            return 0
        return 1 + max(self.depth(p) for p in parents)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def is_forest(self) -> bool:
        """True when every item has at most one parent."""
        return all(len(ps) <= 1 for ps in self._parents.values())

    def roots(self) -> tuple[str, ...]:
        """Items with no parent (most general)."""
        return tuple(i for i, ps in self._parents.items() if not ps)

    def leaves(self) -> tuple[str, ...]:
        """Items with no children (most specific)."""
        return tuple(i for i, cs in self._children.items() if not cs)

    def intermediate_items(self) -> tuple[str, ...]:
        """Items that have both a parent and at least one child."""
        return tuple(
            i
            for i in self._parents
            if self._parents[i] and self._children[i]
        )

    def num_levels(self) -> int:
        """Number of levels = 1 + maximum depth (a flat hierarchy has 1)."""
        if not self._parents:
            return 0
        return 1 + max(self.depth(i) for i in self._parents)

    def fan_outs(self) -> list[int]:
        """Child counts of all items that have at least one child."""
        return [len(cs) for cs in self._children.values() if cs]

    def copy(self) -> "Hierarchy":
        h = Hierarchy()
        h._parents = dict(self._parents)
        h._children = {k: list(v) for k, v in self._children.items()}
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hierarchy(items={len(self)}, roots={len(self.roots())}, "
            f"levels={self.num_levels()})"
        )
