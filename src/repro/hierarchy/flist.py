"""Generalized f-list computation and the LASH total order (paper Sec. 3.3/3.4).

The *generalized f-list* assigns each item ``w`` its hierarchy-aware document
frequency ``f0(w, D)``: the number of input sequences containing ``w`` **or
any of its descendants**.  The total order ``<`` then sorts items by

1. frequency descending (frequent items are "small"),
2. hierarchy level ascending (more general items first) on frequency ties —
   this guarantees ``w2 → w1 ⇒ w1 < w2``,
3. item name (a deterministic stand-in for the paper's "arbitrary"
   tie-breaking).

The computation here is the direct (driver-side) implementation; the
equivalent MapReduce job used by the distributed drivers lives in
:mod:`repro.core.lash` and :mod:`repro.baselines`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary


def iter_generalized_items(hierarchy: Hierarchy, sequence: Iterable[str]) -> set[str]:
    """``G1(T)`` over names: distinct items of ``T`` plus all ancestors.

    Items absent from the hierarchy are treated as isolated roots.
    """
    out: set[str] = set()
    for token in sequence:
        if token in out:
            continue
        if token in hierarchy:
            out.update(hierarchy.ancestors_or_self(token))
        else:
            out.add(token)
    return out


def compute_generalized_flist(
    database: Iterable[Iterable[str]], hierarchy: Hierarchy
) -> dict[str, int]:
    """Document frequencies ``f0(w, D)`` including descendant occurrences.

    Every item of the hierarchy is present in the result (possibly with
    frequency 0), as are items that occur only in the data.
    """
    freqs: Counter[str] = Counter()
    for sequence in database:
        freqs.update(iter_generalized_items(hierarchy, sequence))
    for item in hierarchy:
        freqs.setdefault(item, 0)
    return dict(freqs)


def build_total_order(
    frequencies: Mapping[str, int], hierarchy: Hierarchy
) -> list[str]:
    """Sort items ascending in the LASH total order (rank 0 first)."""

    def depth(item: str) -> int:
        return hierarchy.depth(item) if item in hierarchy else 0

    # The paper breaks remaining ties "arbitrarily"; we use case-insensitive
    # name order (then exact name) so runs are deterministic and the paper's
    # running-example order (a < B) is reproduced.
    return sorted(
        frequencies,
        key=lambda item: (-frequencies[item], depth(item), item.casefold(), item),
    )


def build_vocabulary(
    database: Iterable[Iterable[str]],
    hierarchy: Hierarchy,
    frequencies: Mapping[str, int] | None = None,
) -> Vocabulary:
    """LASH preprocessing: f-list + total order → integer-coded vocabulary.

    ``frequencies`` may be supplied to reuse a previously computed f-list
    (the paper notes the f-list and order can be reused across runs).
    """
    if frequencies is None:
        frequencies = compute_generalized_flist(database, hierarchy)
    order = build_total_order(frequencies, hierarchy)
    return Vocabulary(order, hierarchy, [frequencies[i] for i in order])
