"""Item hierarchies for generalized sequence mining.

This package provides the *vocabulary with hierarchy* substrate of the LASH
paper (Sec. 2): a forest (optionally a DAG) of items, the hierarchy-aware
*generalized f-list* (item document frequencies that count descendants), and
the LASH total order that turns items into integer ranks.
"""

from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.vocabulary import Vocabulary
from repro.hierarchy.flist import (
    compute_generalized_flist,
    build_total_order,
    build_vocabulary,
)

__all__ = [
    "Hierarchy",
    "Vocabulary",
    "compute_generalized_flist",
    "build_total_order",
    "build_vocabulary",
]
