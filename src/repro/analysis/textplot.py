"""Terminal-friendly charts for experiment results.

The paper's evaluation is a set of bar charts (Figs. 4–6); the benchmark
harness regenerates their series as fixed-width tables.  This module
renders those series as horizontal ASCII bar charts so EXPERIMENTS.md and
terminal output can show the *shape* of each figure, not just numbers.

>>> print(bar_chart(["naive", "semi", "lash"], [24.3, 12.4, 1.5],
...                 unit="s"))
naive  ████████████████████████████████████████  24.3 s
semi   ████████████████████▍                     12.4 s
lash   ██▌                                        1.5 s
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import InvalidParameterError

#: eighth-block characters for sub-cell resolution
_PARTIALS = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]
_FULL = "█"


def _bar(value: float, maximum: float, width: int) -> str:
    """One bar scaled to ``width`` cells of ``maximum``."""
    if maximum <= 0 or value <= 0:
        return ""
    cells = width * value / maximum
    full = int(cells)
    partial = _PARTIALS[int((cells - full) * 8)]
    return _FULL * full + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per label.

    Values must be non-negative; the longest bar spans ``width`` cells.
    """
    if len(labels) != len(values):
        raise InvalidParameterError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        raise InvalidParameterError("empty chart")
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    floats = [float(v) for v in values]
    if any(v < 0 for v in floats):
        raise InvalidParameterError("bar values must be non-negative")
    maximum = max(floats)
    label_width = max(len(label) for label in labels)
    number_width = max(len(f"{v:,.1f}") for v in floats)
    suffix = f" {unit}" if unit else ""
    lines = []
    for label, value in zip(labels, floats):
        bar = _bar(value, maximum, width)
        lines.append(
            f"{label:<{label_width}}  {bar:<{width}}  "
            f"{value:>{number_width},.1f}{suffix}".rstrip()
        )
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Several series per label (e.g. map/shuffle/reduce), one block per
    label with one bar per series, all on a common scale."""
    if not series:
        raise InvalidParameterError("no series to chart")
    for name, values in series.items():
        if len(values) != len(labels):
            raise InvalidParameterError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    floats = {n: [float(v) for v in vs] for n, vs in series.items()}
    maximum = max(max(vs) for vs in floats.values())
    name_width = max(len(name) for name in series)
    number_width = max(
        len(f"{v:,.1f}") for vs in floats.values() for v in vs
    )
    suffix = f" {unit}" if unit else ""
    blocks = []
    for i, label in enumerate(labels):
        lines = [f"{label}:"]
        for name, values in floats.items():
            bar = _bar(values[i], maximum, width)
            lines.append(
                f"  {name:<{name_width}}  {bar:<{width}}  "
                f"{values[i]:>{number_width},.1f}{suffix}".rstrip()
            )
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def parse_report_table(text: str) -> tuple[list[str], list[list[str]]]:
    """Parse a saved benchmark table back into (columns, rows).

    The format is what :class:`benchmarks.reporting.BenchReport` writes:
    a ``== title ==`` line, a header row, a dashed rule, then fixed-width
    rows with columns separated by two or more spaces.  The first header
    cell (the experiment name) is dropped; each returned row starts with
    its label.
    """
    import re

    lines = [
        line for line in text.splitlines()
        if line.strip() and not line.startswith("==")
        and not set(line.strip()) == {"-"}
    ]
    if not lines:
        raise InvalidParameterError("empty report table")
    split = [re.split(r"\s{2,}", line.strip()) for line in lines]
    header, rows = split[0], split[1:]
    return header[1:], rows


def chart_from_report(
    text: str, column: str, width: int = 40, unit: str = ""
) -> str:
    """Render one numeric column of a saved benchmark table as bars."""
    columns, rows = parse_report_table(text)
    try:
        index = columns.index(column) + 1  # +1: rows start with the label
    except ValueError:
        raise InvalidParameterError(
            f"column {column!r} not in {columns}"
        ) from None
    labels, values = [], []
    for row in rows:
        if index >= len(row):
            continue
        try:
            value = float(row[index].replace(",", ""))
        except ValueError:
            continue  # non-numeric cell (e.g. "NA"): skip the row
        labels.append(row[0])
        values.append(value)
    if not labels:
        raise InvalidParameterError(
            f"no numeric values in column {column!r}"
        )
    return bar_chart(labels, values, width=width, unit=unit)


__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "parse_report_table",
    "chart_from_report",
]
