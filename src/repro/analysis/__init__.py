"""Output analysis: redundancy statistics (Table 3), fast closed/maximal
identification (Sec. 6.7 future work), analytical cost models
(Sec. 3.2/4.4/5.2), and result comparison."""

from repro.analysis.redundancy import (
    OutputStats,
    output_statistics,
    trivial_patterns,
    closed_patterns,
    maximal_patterns,
)
from repro.analysis.closedmax import (
    closed_patterns_fast,
    maximal_patterns_fast,
    filter_result,
    mine_closed,
)
from repro.analysis.compare import ResultDiff, compare_results, recode_patterns
from repro.analysis.textplot import (
    bar_chart,
    chart_from_report,
    grouped_bar_chart,
    parse_report_table,
)
from repro.analysis.interestingness import (
    ScoredPattern,
    lift_scores,
    r_interest_scores,
    r_interesting_patterns,
    rank_patterns,
)
from repro.analysis.costmodel import (
    g1_size,
    lash_emitted_sequences,
    lash_rewrite_operations,
    naive_emissions_contiguous,
    naive_emissions_unbounded,
    nonpivot_sequences,
    psm_explored_fraction,
    psm_search_space,
    total_sequences,
)

__all__ = [
    "g1_size",
    "lash_emitted_sequences",
    "lash_rewrite_operations",
    "naive_emissions_contiguous",
    "naive_emissions_unbounded",
    "nonpivot_sequences",
    "psm_explored_fraction",
    "psm_search_space",
    "total_sequences",
    "recode_patterns",
    "OutputStats",
    "output_statistics",
    "trivial_patterns",
    "closed_patterns",
    "maximal_patterns",
    "closed_patterns_fast",
    "maximal_patterns_fast",
    "filter_result",
    "mine_closed",
    "ResultDiff",
    "compare_results",
    "ScoredPattern",
    "lift_scores",
    "r_interest_scores",
    "r_interesting_patterns",
    "rank_patterns",
    "bar_chart",
    "chart_from_report",
    "grouped_bar_chart",
    "parse_report_table",
]
