"""Output-set statistics: non-trivial, closed and maximal patterns (Sec. 6.7).

* A mined sequence is **trivial** when it can be generated from the output
  of a *flat* sequence miner (no hierarchies) by generalizing items — i.e.
  some equally long flat-frequent sequence specializes it item-wise.  The
  non-trivial percentage measures how much GSM adds over flat mining.
* A frequent sequence ``S`` is **maximal** when every supersequence
  ``S' ⊒0 S`` is infrequent, and **closed** when every supersequence has a
  strictly different (lower) frequency.  Following the paper we evaluate
  these within the mined output set (supersequences beyond λ are outside the
  problem's universe).

``S ⊑0 S'`` here is the generalized subsequence relation with gap 0, so a
"supersequence" may be longer *or* more specific (e.g. ``ab1`` is a
supersequence of ``aB``), capturing both redundancy dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.hierarchy.vocabulary import Vocabulary
from repro.sequence.subsequence import is_generalized_subsequence

Pattern = tuple[int, ...]


@dataclass(frozen=True)
class OutputStats:
    """Table 3 row."""

    total: int
    non_trivial: int
    closed: int
    maximal: int

    @property
    def non_trivial_pct(self) -> float:
        return 100.0 * self.non_trivial / self.total if self.total else 0.0

    @property
    def closed_pct(self) -> float:
        return 100.0 * self.closed / self.total if self.total else 0.0

    @property
    def maximal_pct(self) -> float:
        return 100.0 * self.maximal / self.total if self.total else 0.0

    def row(self) -> dict[str, float]:
        return {
            "Non-trivial (%)": round(self.non_trivial_pct, 2),
            "Closed (%)": round(self.closed_pct, 2),
            "Maximal (%)": round(self.maximal_pct, 2),
        }


def _most_general_form(vocabulary: Vocabulary, pattern: Pattern) -> Pattern:
    """Each item replaced by its root ancestor (forest: unique)."""
    return tuple(vocabulary.ancestors_or_self(item)[0] for item in pattern)


def trivial_patterns(
    vocabulary: Vocabulary,
    gsm_patterns: Mapping[Pattern, int],
    flat_patterns: Mapping[Pattern, int],
) -> set[Pattern]:
    """GSM patterns that are itemwise generalizations of flat-mined patterns.

    Both pattern sets must be coded over the same vocabulary.  Candidate
    pairs are bucketed by (length, most-general form): in a forest, a
    specialization shares its root chain with the generalization, making the
    bucket lookup exact.
    """
    buckets: dict[tuple[int, Pattern], list[Pattern]] = {}
    for flat in flat_patterns:
        key = (len(flat), _most_general_form(vocabulary, flat))
        buckets.setdefault(key, []).append(flat)
    trivial: set[Pattern] = set()
    for pattern in gsm_patterns:
        key = (len(pattern), _most_general_form(vocabulary, pattern))
        for flat in buckets.get(key, ()):
            if all(
                vocabulary.generalizes_to(f, g)
                for f, g in zip(flat, pattern)
            ):
                trivial.add(pattern)
                break
    return trivial


def _has_proper_supersequence(
    vocabulary: Vocabulary,
    pattern: Pattern,
    frequency: int,
    patterns: Mapping[Pattern, int],
    by_length: dict[int, list[Pattern]],
    require_equal_frequency: bool,
) -> bool:
    for length in by_length:
        if length < len(pattern):
            continue
        for other in by_length[length]:
            if other == pattern:
                continue
            if require_equal_frequency and patterns[other] != frequency:
                continue
            if is_generalized_subsequence(vocabulary, pattern, other, 0):
                return True
    return False


def maximal_patterns(
    vocabulary: Vocabulary, patterns: Mapping[Pattern, int]
) -> set[Pattern]:
    """Patterns with no frequent proper supersequence in the output set."""
    by_length = _group_by_length(patterns)
    return {
        p
        for p, f in patterns.items()
        if not _has_proper_supersequence(
            vocabulary, p, f, patterns, by_length, require_equal_frequency=False
        )
    }


def closed_patterns(
    vocabulary: Vocabulary, patterns: Mapping[Pattern, int]
) -> set[Pattern]:
    """Patterns every proper supersequence of which has lower frequency."""
    by_length = _group_by_length(patterns)
    return {
        p
        for p, f in patterns.items()
        if not _has_proper_supersequence(
            vocabulary, p, f, patterns, by_length, require_equal_frequency=True
        )
    }


def _group_by_length(patterns: Mapping[Pattern, int]) -> dict[int, list[Pattern]]:
    by_length: dict[int, list[Pattern]] = {}
    for p in patterns:
        by_length.setdefault(len(p), []).append(p)
    return by_length


def output_statistics(
    vocabulary: Vocabulary,
    gsm_patterns: Mapping[Pattern, int],
    flat_patterns: Mapping[Pattern, int] | None = None,
    method: str = "fast",
) -> OutputStats:
    """Compute the Table 3 statistics for one mined output set.

    ``flat_patterns`` — a flat miner's output on the same data and
    parameters, coded over the *same* vocabulary (see
    :func:`repro.analysis.compare.recode_patterns`) — is required for a
    meaningful non-trivial percentage; when omitted, no pattern is
    considered trivial.

    ``method`` selects the closed/maximal computation: ``"fast"`` (the
    neighbor-lemma filters of :mod:`repro.analysis.closedmax`, linear in
    the output size) or ``"pairwise"`` (the literal definition; quadratic,
    kept as the testing oracle).  Both give identical answers.
    """
    if method not in ("fast", "pairwise"):
        raise ValueError(f"method must be 'fast' or 'pairwise', got {method!r}")
    total = len(gsm_patterns)
    if flat_patterns is None:
        trivial: set[Pattern] = set()
    else:
        trivial = trivial_patterns(vocabulary, gsm_patterns, flat_patterns)
    if method == "fast":
        from repro.analysis.closedmax import (
            closed_patterns_fast,
            maximal_patterns_fast,
        )

        closed = closed_patterns_fast(vocabulary, gsm_patterns)
        maximal = maximal_patterns_fast(vocabulary, gsm_patterns)
    else:
        closed = closed_patterns(vocabulary, gsm_patterns)
        maximal = maximal_patterns(vocabulary, gsm_patterns)
    return OutputStats(
        total=total,
        non_trivial=total - len(trivial),
        closed=len(closed),
        maximal=len(maximal),
    )
