"""Analytical cost models from the paper's complexity analyses.

Exact worst-case counts behind the asymptotics quoted in Sec. 3.2, 3.3,
4.4 and 5.2.  "Worst case" means a sequence of ``l`` pairwise-distinct
leaf items, each with ``δ`` ancestors (a uniform-depth hierarchy), so that
every enumerated generalized subsequence is distinct.  The unit-test suite
validates these formulas against the actual enumerators on exactly such
inputs.

* **Naïve emissions** (Sec. 3.2) — ``|Gλ(T)|``:

  - γ = 0: windows of length ``n`` start at ``l-n+1`` positions, each item
    generalizes to one of ``δ+1`` forms, so
    ``Σ_{n=2..min(λ,l)} (l-n+1)·(δ+1)^n`` — exponential in λ, polynomial
    in δ.
  - γ, λ ≥ l: any position subset of size ≥ 2 with any generalization
    per kept item: ``Σ_{n=2..l} C(l,n)(δ+1)^n = (δ+2)^l − 1 − l(δ+1)``
    — the paper's ``O((δ+1)^l)``.

* **G1 size** (Sec. 3.3) — ``(δ+1)·l`` items-with-generalizations per
  sequence, linear in both.

* **LASH bounds** (Sec. 4.4) — at most ``(δ+1)·l`` pivots per sequence,
  hence ``O(δl)`` rewritten sequences of length ≤ ``l`` (polynomial
  communication) and ``O(δl²)`` rewrite time.

* **PSM search space** (Sec. 5.2) — with ``k`` distinct items and all
  length-≤λ sequences frequent, BFS/DFS explore ``Σ_{n=1..λ} k^n``
  sequences while only ``Σ k^n − Σ (k−1)^n`` contain the pivot;
  :func:`psm_explored_fraction` is the paper's
  ``1 − Σ(k−1)^n / Σk^n`` (0.005% for k=100,000, λ=5).

All functions use exact integer arithmetic (Python bigints), so they stay
meaningful in the regimes where the counts overflow doubles.
"""

from __future__ import annotations

from math import comb

from repro.errors import InvalidParameterError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)


def g1_size(l: int, delta: int) -> int:
    """``|G1(T)|`` in the worst case: every item plus its δ ancestors."""
    _require(l >= 0, f"sequence length must be >= 0, got {l}")
    _require(delta >= 0, f"hierarchy depth must be >= 0, got {delta}")
    return (delta + 1) * l


def naive_emissions_contiguous(l: int, delta: int, lam: int) -> int:
    """Worst-case ``|Gλ(T)|`` for γ=0 (Sec. 3.2's first bound), exact."""
    _require(l >= 0, f"sequence length must be >= 0, got {l}")
    _require(delta >= 0, f"hierarchy depth must be >= 0, got {delta}")
    _require(lam >= 2, f"lambda must be >= 2, got {lam}")
    return sum(
        (l - n + 1) * (delta + 1) ** n for n in range(2, min(lam, l) + 1)
    )


def naive_emissions_unbounded(l: int, delta: int) -> int:
    """Worst-case ``|Gλ(T)|`` for γ, λ ≥ l (Sec. 3.2's ``O((δ+1)^l)``)."""
    _require(l >= 0, f"sequence length must be >= 0, got {l}")
    _require(delta >= 0, f"hierarchy depth must be >= 0, got {delta}")
    return sum(comb(l, n) * (delta + 1) ** n for n in range(2, l + 1))


def lash_emitted_sequences(l: int, delta: int) -> int:
    """Upper bound on rewritten sequences LASH emits per input (Sec. 4.4):
    one per pivot, at most ``(δ+1)·l`` pivots."""
    return g1_size(l, delta)


def lash_rewrite_operations(l: int, delta: int) -> int:
    """Sec. 4.4's ``O(δl²)`` rewrite cost: ``O(l)`` per pivot times the
    pivot count."""
    return g1_size(l, delta) * l


def total_sequences(k: int, lam: int) -> int:
    """``Σ_{n=1..λ} k^n`` — the BFS/DFS worst-case search space (Sec. 5.2)."""
    _require(k >= 1, f"distinct-item count must be >= 1, got {k}")
    _require(lam >= 1, f"lambda must be >= 1, got {lam}")
    return sum(k**n for n in range(1, lam + 1))


def nonpivot_sequences(k: int, lam: int) -> int:
    """``Σ_{n=1..λ} (k−1)^n`` — sequences missing the pivot entirely."""
    _require(k >= 1, f"distinct-item count must be >= 1, got {k}")
    return sum((k - 1) ** n for n in range(1, lam + 1))


def psm_search_space(k: int, lam: int) -> int:
    """Pivot sequences PSM explores in the worst case (Sec. 5.2)."""
    return total_sequences(k, lam) - nonpivot_sequences(k, lam)


def psm_explored_fraction(k: int, lam: int) -> float:
    """``1 − Σ(k−1)^n / Σk^n``: the fraction of the BFS/DFS space PSM
    touches.  The paper's example: k=100,000, λ=5 → 0.00005 (0.005%)."""
    return psm_search_space(k, lam) / total_sequences(k, lam)


# ---------------------------------------------------------------------------
# Serving-cost constants
#
# The per-query planner (`repro.query.cost`) and the admission-control
# layer (`repro.serve.service`) price query execution in abstract *work
# units* — roughly "one postings entry touched".  The constants below
# are shared so the planner's strategy choice, the service's admission
# thresholds and the router's deadline scaling all speak the same
# currency.  Absolute values are calibration, not physics: only the
# *ratios* matter for strategy choice, and the unit tests pin the
# decisions (skewed query → pruned, dense query → exact), not the raw
# numbers.
# ---------------------------------------------------------------------------

#: work to decode one postings entry and OR it into a candidate bitmap
COST_POSTINGS_ENTRY = 1.0
#: work per (candidate × query-token) cell of the DP verifier — measured
#: against the NYT-shape planner battery, one DP candidate costs tens of
#: postings-entry units, not a fraction of one
COST_DP_CELL = 1.5
#: work to decode + rank-check one candidate pattern
COST_PATTERN_DECODE = 4.0
#: work per byte of position-space bitmap swept per chain node
#: (the exact path's big-int AND/shift passes)
COST_BITMAP_BYTE = 0.02
#: work to visit one pattern during a pure length-range scan
COST_LENGTH_SCAN = 2.0

#: candidate-mask node skip rule: after sorting concrete nodes by
#: estimated postings size, a node whose estimate exceeds this multiple
#: of the cheapest node's costs more to AND in than the DP verification
#: it could save — the planner leaves it out (the mask stays a superset,
#: so answers cannot change)
NODE_SKIP_FACTOR = 8.0

#: default per-query match budget handed to budgeted (cost-capped)
#: executions by the admission controller
MATCH_BUDGET_DEFAULT = 1000

#: estimated-cost histogram buckets for /stats and /metrics (work units)
COST_BUCKETS = (
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)

#: estimated cost at which the router grants a fan-out its full
#: deadline; cheaper queries get a proportionally smaller per-query
#: budget so they fail over fast instead of waiting out a dead replica
COST_FULL_DEADLINE = 100_000.0
#: floor on the scaled router deadline, as a fraction of the full one
MIN_DEADLINE_FRACTION = 0.1
