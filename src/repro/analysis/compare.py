"""Comparing mining results across algorithms and vocabularies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.result import MiningResult
from repro.hierarchy.vocabulary import Vocabulary

Pattern = tuple[int, ...]


@dataclass
class ResultDiff:
    """Differences between two pattern sets (name-coded)."""

    missing: dict[tuple[str, ...], int] = field(default_factory=dict)
    extra: dict[tuple[str, ...], int] = field(default_factory=dict)
    frequency_mismatches: dict[tuple[str, ...], tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def agree(self) -> bool:
        return not (self.missing or self.extra or self.frequency_mismatches)

    def summary(self) -> str:
        if self.agree:
            return "results agree"
        return (
            f"missing={len(self.missing)} extra={len(self.extra)} "
            f"frequency mismatches={len(self.frequency_mismatches)}"
        )


def compare_results(expected: MiningResult, actual: MiningResult) -> ResultDiff:
    """Diff two results; robust to differing vocabularies (compares names)."""
    left = expected.decoded()
    right = actual.decoded()
    diff = ResultDiff()
    for pattern, freq in left.items():
        if pattern not in right:
            diff.missing[pattern] = freq
        elif right[pattern] != freq:
            diff.frequency_mismatches[pattern] = (freq, right[pattern])
    for pattern, freq in right.items():
        if pattern not in left:
            diff.extra[pattern] = freq
    return diff


def recode_patterns(
    patterns: Mapping[Pattern, int],
    source: Vocabulary,
    target: Vocabulary,
) -> dict[Pattern, int]:
    """Translate integer-coded patterns between vocabularies via item names.

    Needed e.g. to compare a flat miner's output (flat vocabulary) with a
    hierarchical run (f-list vocabulary) in the Table 3 analysis.
    """
    out: dict[Pattern, int] = {}
    for pattern, freq in patterns.items():
        out[tuple(target.id(source.name(i)) for i in pattern)] = freq
    return out
