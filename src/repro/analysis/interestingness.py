"""Interestingness ranking for generalized sequences.

GSM output is large and partly redundant (paper Sec. 2 "Discussion" and
Sec. 6.7): the frequency of ``aB`` is partly explained by its
specialization ``ab1``, and the frequency of any pattern is partly
explained by its items being common.  This module ranks patterns by how
*surprising* their frequency is, adapting two classic measures to
generalized sequences:

**R-interestingness** (Srikant & Agrawal, "Mining Generalized Association
Rules" [27], cited by the paper).  The expected frequency of ``S`` given a
mined itemwise generalization ``S'`` scales ``f(S')`` by how selective each
specialization step is:

.. math::

    E[f(S) \\mid S'] = f(S') \\cdot \\prod_i \\frac{f_0(s_i)}{f_0(s'_i)}

``S`` is *R-interesting* when ``f(S) ≥ R · E[f(S) | S']`` for every mined
proper itemwise generalization ``S'``.  Patterns without a mined
generalization are interesting by definition (nothing explains them).

**Lift** against itemwise independence: ``f(S) / (N · ∏ f_0(s_i)/N)``,
the sequence analogue of association-rule lift.  Lift ignores the
hierarchy; R-interestingness ignores cross-item correlation — reporting
both gives complementary rankings.

>>> from repro.analysis.interestingness import rank_patterns
>>> ranked = rank_patterns(result, measure="r-interest")
>>> ranked[0]                                      # doctest: +SKIP
ScoredPattern(pattern=('b1', 'D'), frequency=2, score=3.4)
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Mapping

from repro.core.result import MiningResult
from repro.errors import InvalidParameterError
from repro.hierarchy.vocabulary import Vocabulary

Pattern = tuple[int, ...]

MEASURES = ("r-interest", "lift")


@dataclass(frozen=True)
class ScoredPattern:
    """One ranked pattern: decoded items, mined frequency, and score.

    For ``r-interest`` the score is ``min_{S'} f(S)/E[f(S)|S']`` over the
    mined proper generalizations ``S'`` (∞ when none exist); for ``lift``
    it is the ratio of observed to independence-expected frequency.
    """

    pattern: tuple[str, ...]
    frequency: int
    score: float

    def render(self) -> str:
        return " ".join(self.pattern)


def _generalization_index(
    patterns: Mapping[Pattern, int]
) -> dict[int, list[Pattern]]:
    """Group patterns by length for same-length generalization scans."""
    by_length: dict[int, list[Pattern]] = {}
    for pattern in patterns:
        by_length.setdefault(len(pattern), []).append(pattern)
    return by_length


def r_interest_scores(
    patterns: Mapping[Pattern, int], vocabulary: Vocabulary
) -> dict[Pattern, float]:
    """``min f(S)/E[f(S)|S']`` per pattern over mined generalizations.

    Uses the generalized f-list frequencies carried by the vocabulary for
    the per-item selectivity ratios.  Patterns with no mined proper
    generalization score ``inf``.
    """
    by_length = _generalization_index(patterns)
    scores: dict[Pattern, float] = {}
    for pattern, frequency in patterns.items():
        worst = inf
        for other in by_length.get(len(pattern), ()):
            if other == pattern:
                continue
            if not all(
                vocabulary.generalizes_to(s, g)
                for s, g in zip(pattern, other)
            ):
                continue
            expected = float(patterns[other])
            for s, g in zip(pattern, other):
                fs, fg = vocabulary.frequency(s), vocabulary.frequency(g)
                if fg:
                    expected *= fs / fg
            if expected > 0:
                worst = min(worst, frequency / expected)
        scores[pattern] = worst
    return scores


def lift_scores(
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    num_sequences: int,
) -> dict[Pattern, float]:
    """Observed over independence-expected frequency per pattern.

    ``num_sequences`` is the database size ``|D|`` the item frequencies
    were counted against.
    """
    if num_sequences <= 0:
        raise InvalidParameterError(
            f"num_sequences must be positive, got {num_sequences}"
        )
    scores: dict[Pattern, float] = {}
    for pattern, frequency in patterns.items():
        expected = float(num_sequences)
        for item in pattern:
            expected *= vocabulary.frequency(item) / num_sequences
        scores[pattern] = frequency / expected if expected > 0 else inf
    return scores


def r_interesting_patterns(
    patterns: Mapping[Pattern, int],
    vocabulary: Vocabulary,
    r: float = 1.1,
) -> dict[Pattern, int]:
    """The subset of patterns that are R-interesting (score ≥ ``r``)."""
    if r <= 0:
        raise InvalidParameterError(f"R must be positive, got {r}")
    scores = r_interest_scores(patterns, vocabulary)
    return {
        pattern: frequency
        for pattern, frequency in patterns.items()
        if scores[pattern] >= r
    }


def rank_patterns(
    result: MiningResult,
    measure: str = "r-interest",
    num_sequences: int | None = None,
) -> list[ScoredPattern]:
    """Rank a mining result's patterns by decreasing interestingness.

    Parameters
    ----------
    result:
        Any miner's output.
    measure:
        ``"r-interest"`` (hierarchy-aware, default) or ``"lift"``.
    num_sequences:
        Database size for the lift measure; defaults to the largest item
        frequency in the vocabulary (a lower bound for ``|D|``) when not
        given.

    Ties are broken by frequency (descending), then pattern text.
    """
    if measure not in MEASURES:
        raise InvalidParameterError(
            f"measure must be one of {MEASURES}, got {measure!r}"
        )
    vocabulary = result.vocabulary
    if measure == "r-interest":
        scores = r_interest_scores(result.patterns, vocabulary)
    else:
        if num_sequences is None:
            num_sequences = max(
                (vocabulary.frequency(i) for i in range(len(vocabulary))),
                default=0,
            )
        scores = lift_scores(result.patterns, vocabulary, num_sequences)
    ranked = [
        ScoredPattern(
            pattern=vocabulary.decode_sequence(pattern),
            frequency=frequency,
            score=scores[pattern],
        )
        for pattern, frequency in result.patterns.items()
    ]
    ranked.sort(key=lambda sp: (-sp.score, -sp.frequency, sp.pattern))
    return ranked


__all__ = [
    "MEASURES",
    "ScoredPattern",
    "r_interest_scores",
    "lift_scores",
    "r_interesting_patterns",
    "rank_patterns",
]
