"""Fast closed/maximal pattern identification (paper Sec. 6.7, future work).

The paper computes Table 3's closed/maximal percentages and notes that
*"direct mining of maximal or closed sequences in the context of
hierarchies has not been studied in the literature"*.  This module supplies
the efficient identification the brute-force definition in
:mod:`repro.analysis.redundancy` cannot scale to, based on a lattice
argument:

**Neighbor lemma.**  Within the GSM output universe (frequent generalized
sequences of length 2…λ), a pattern ``S`` has a proper supersequence
``S' ⊒0 S`` with frequency ``f`` in the output **iff** it has an *atomic
neighbor* in the output with frequency ``≥ f``, where an atomic neighbor is
obtained from ``S`` by exactly one of

* replacing one item by one of its hierarchy children (one-step
  specialization),
* prepending one item, or
* appending one item.

*Proof sketch.*  ``S ⊑0 S'`` embeds ``S`` into a contiguous window of
``S'`` with itemwise generalization.  Walk from ``S`` to ``S'`` by first
specializing items one hierarchy level at a time (length preserved), then
prepending the items left of the window outside-in, then appending the
right ones.  Every intermediate ``S''`` satisfies
``S ⊑0 S'' ⊑0 S'``, so ``f(S) ≥ f(S'') ≥ f(S')`` (Lemma 1) and
``|S| ≤ |S''| ≤ |S'| ≤ λ``: each intermediate is frequent and inside the
output universe.  The first step of the walk is an atomic neighbor; its
frequency is ``≥ f(S')``.  The converse is immediate (a neighbor *is* a
proper supersequence).  ∎

Consequences, checking only ``O(|S|·fanout + |W|)`` neighbors per pattern
instead of all pattern pairs:

* ``S`` is **maximal** iff it has no atomic neighbor in the output at all.
* ``S`` is **closed** iff it has no atomic neighbor in the output with
  frequency equal to ``f(S)``.  (A neighbor's frequency can never exceed
  ``f(S)``.)

Prepend/append neighbors are found by indexing the output by first-item
and last-item drops, so the per-pattern cost is independent of the
vocabulary size.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.params import MiningParams
from repro.core.result import MiningResult
from repro.hierarchy.vocabulary import Vocabulary

Pattern = tuple[int, ...]

_MODES = ("closed", "maximal")


def _child_index(vocabulary: Vocabulary) -> dict[int, tuple[int, ...]]:
    """Item id → ids of its hierarchy children (empty for leaves and items
    absent from the hierarchy)."""
    hierarchy = vocabulary.hierarchy
    index: dict[int, tuple[int, ...]] = {}
    for item_id in range(len(vocabulary)):
        name = vocabulary.name(item_id)
        if name not in hierarchy:
            index[item_id] = ()
            continue
        index[item_id] = tuple(
            vocabulary.id(child)
            for child in hierarchy.children(name)
            if child in vocabulary
        )
    return index


def _best_neighbor_frequency(
    pattern: Pattern,
    patterns: Mapping[Pattern, int],
    children: dict[int, tuple[int, ...]],
    drop_first: dict[Pattern, int],
    drop_last: dict[Pattern, int],
) -> int | None:
    """Highest frequency among the pattern's atomic neighbors in the output,
    or ``None`` when it has no neighbor (i.e. the pattern is maximal)."""
    best: int | None = None

    def consider(freq: int | None) -> None:
        nonlocal best
        if freq is not None and (best is None or freq > best):
            best = freq

    # One-step specializations.
    for j, item in enumerate(pattern):
        for child in children[item]:
            consider(patterns.get(pattern[:j] + (child,) + pattern[j + 1 :]))
    # Extensions: any output pattern whose first/last drop equals ``pattern``.
    consider(drop_first.get(pattern))
    consider(drop_last.get(pattern))
    return best


def _drop_indexes(
    patterns: Mapping[Pattern, int],
) -> tuple[dict[Pattern, int], dict[Pattern, int]]:
    """``P[1:] → max f(P)`` and ``P[:-1] → max f(P)`` over the output."""
    drop_first: dict[Pattern, int] = {}
    drop_last: dict[Pattern, int] = {}
    for p, f in patterns.items():
        key_f, key_l = p[1:], p[:-1]
        if drop_first.get(key_f, -1) < f:
            drop_first[key_f] = f
        if drop_last.get(key_l, -1) < f:
            drop_last[key_l] = f
    return drop_first, drop_last


def closed_patterns_fast(
    vocabulary: Vocabulary, patterns: Mapping[Pattern, int]
) -> set[Pattern]:
    """Closed patterns via the neighbor lemma (agrees with
    :func:`repro.analysis.redundancy.closed_patterns`)."""
    children = _child_index(vocabulary)
    drop_first, drop_last = _drop_indexes(patterns)
    closed: set[Pattern] = set()
    for pattern, frequency in patterns.items():
        best = _best_neighbor_frequency(
            pattern, patterns, children, drop_first, drop_last
        )
        if best is None or best < frequency:
            closed.add(pattern)
    return closed


def maximal_patterns_fast(
    vocabulary: Vocabulary, patterns: Mapping[Pattern, int]
) -> set[Pattern]:
    """Maximal patterns via the neighbor lemma (agrees with
    :func:`repro.analysis.redundancy.maximal_patterns`)."""
    children = _child_index(vocabulary)
    drop_first, drop_last = _drop_indexes(patterns)
    return {
        pattern
        for pattern in patterns
        if _best_neighbor_frequency(
            pattern, patterns, children, drop_first, drop_last
        )
        is None
    }


def filter_result(result: MiningResult, mode: str) -> MiningResult:
    """A copy of ``result`` restricted to its closed or maximal patterns."""
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    keep = (
        closed_patterns_fast(result.vocabulary, result.patterns)
        if mode == "closed"
        else maximal_patterns_fast(result.vocabulary, result.patterns)
    )
    return MiningResult(
        patterns={p: f for p, f in result.patterns.items() if p in keep},
        vocabulary=result.vocabulary,
        params=result.params,
        algorithm=f"{result.algorithm}+{mode}",
        preprocess_job=result.preprocess_job,
        mining_job=result.mining_job,
        local_stats=result.local_stats,
    )


def mine_closed(
    database,
    hierarchy=None,
    sigma: int = 1,
    gamma: int | None = 0,
    lam: int = 5,
    mode: str = "closed",
    local_miner: str = "psm",
) -> MiningResult:
    """Mine frequent generalized sequences and keep only the closed (or
    maximal) ones.

    >>> result = mine_closed(db, hierarchy, sigma=2, gamma=1, lam=3,
    ...                      mode="maximal")
    """
    from repro.core.lash import Lash
    from repro.sequence.database import SequenceDatabase

    if not isinstance(database, SequenceDatabase):
        database = SequenceDatabase(database)
    lash = Lash(MiningParams(sigma, gamma, lam), local_miner=local_miner)
    return filter_result(lash.mine(database, hierarchy), mode)
