"""Local miner interface and exploration accounting.

A *local miner* runs inside a reduce task on one partition ``P_w`` and must
produce exactly the locally frequent pivot sequences
``G_{σ,γ,λ}(w, P_w)`` with their frequencies (paper Alg. 1, line 8).

Miners track an :class:`ExplorationStats` so the search-space comparison of
Fig. 4(d) (candidate sequences per output sequence) can be reproduced.  The
counting convention matches the paper's worked example (Sec. 5.2): every
candidate sequence whose support is evaluated counts once — including
infrequent ones — while sequences skipped by PSM's right-expansion index are
never evaluated and therefore never counted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.params import MiningParams
from repro.hierarchy.vocabulary import Vocabulary

#: weighted partition type: rewritten sequence → multiplicity
Partition = dict[tuple[int, ...], int]


@dataclass
class ExplorationStats:
    """Search-space accounting for one or more ``mine_partition`` calls."""

    candidates: int = 0
    outputs: int = 0

    def candidates_per_output(self) -> float:
        """Fig. 4(d)'s measure (∞-safe: 0 outputs → candidate count)."""
        return self.candidates / self.outputs if self.outputs else float(
            self.candidates
        )

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        self.candidates += other.candidates
        self.outputs += other.outputs
        return self


def normalize_partition(
    partition: Partition | Iterable[tuple[tuple[int, ...], int]] | Iterable[tuple[int, ...]],
) -> list[tuple[tuple[int, ...], int]]:
    """Accept ``{seq: weight}``, ``[(seq, weight)]`` or bare ``[seq]``."""
    if isinstance(partition, Mapping):
        return list(partition.items())
    out: list[tuple[tuple[int, ...], int]] = []
    for entry in partition:
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], tuple)
            and isinstance(entry[1], int)
        ):
            out.append((entry[0], entry[1]))
        else:
            out.append((tuple(entry), 1))
    return out


class LocalMiner(ABC):
    """Base class: bind a vocabulary and parameters, mine partitions."""

    #: registry name used by drivers ("psm", "bfs", ...)
    name: str = "local"

    def __init__(self, vocabulary: Vocabulary, params: MiningParams) -> None:
        self.vocabulary = vocabulary
        self.params = params
        self.stats = ExplorationStats()

    def reset_stats(self) -> None:
        self.stats = ExplorationStats()

    @abstractmethod
    def mine_partition(
        self,
        partition: Partition | Iterable,
        pivot: int,
    ) -> dict[tuple[int, ...], int]:
        """Return ``{pivot sequence: frequency}`` for one partition."""
