"""Hierarchy-aware SPAM-style bitmap miner (Ayres et al., cited in Sec. 7).

SPAM represents the database *vertically* as one bitmap per item over a
global position space (all partition sequences concatenated) and grows
patterns depth-first.  The bitmap of a pattern marks the end positions of
its embeddings; a sequence extension ("S-step") turns that bitmap into the
mask of gap-reachable follow positions and intersects it with the extension
item's bitmap — two big-integer operations instead of a database scan.

Adaptation to the generalized setting of the paper:

* **Hierarchies** — an item's bitmap contains the positions of the item
  *and of all its descendants* (``t →* w`` occurrences), so extensions see
  generalized matches exactly like the hierarchy-aware DFS miner does.
* **Gap constraint** — the follow mask is ``OR`` of the pattern bitmap
  shifted by ``1 … γ+1``; sequences are separated by ``γ+1`` guard
  positions so shifted bits can never leak into the next sequence.  For
  ``γ = None`` SPAM's classic "transformed bitmap" applies: per sequence,
  every position after the first embedding end is reachable.
* **S-step pruning** — with an *unbounded* gap the candidate items for a
  node's children are the items that were frequent extensions at the node
  itself (if ``S·y`` is infrequent, so is ``S·x·y`` — Lemma 1), SPAM's
  standard DFS pruning.  With a bounded ``γ`` that implication fails (an
  interleaved item can pull a previously out-of-range occurrence into gap
  range: ``acb`` supports ``a·c·b`` at γ=0 but not ``a·b``), so children
  retry the full frequent-item set.

Like BFS and DFS (Sec. 5.1), SPAM mines *all* locally frequent sequences
and filters pivot sequences at output time, so as a LASH local miner it
carries the same over-exploration overhead that PSM avoids.  Exploration
counting follows the repository convention: every candidate whose support
is evaluated counts once.
"""

from __future__ import annotations

from repro.constants import BLANK
from repro.miners.base import LocalMiner, normalize_partition


class SpamMiner(LocalMiner):
    """Vertical bitmap pattern-growth miner over one partition."""

    name = "spam"

    def mine_partition(self, partition, pivot: int) -> dict[tuple[int, ...], int]:
        entries = normalize_partition(partition)
        output: dict[tuple[int, ...], int] = {}
        if not entries:
            return output
        self._pivot = pivot
        self._layout(entries)
        item_bitmaps = self._build_item_bitmaps(entries)

        # Level 1: frequent items form both the DFS roots and the initial
        # candidate set for S-steps.
        self.stats.candidates += len(item_bitmaps)
        frequent_items = [
            item
            for item in sorted(item_bitmaps)
            if self._support(item_bitmaps[item]) >= self.params.sigma
        ]
        self._item_bitmaps = item_bitmaps

        for item in frequent_items:
            self._grow((item,), item_bitmaps[item], frequent_items, output)
        return output

    # ------------------------------------------------------------------
    # position-space layout
    # ------------------------------------------------------------------

    def _layout(self, entries) -> None:
        """Assign every partition sequence a span in the global bit space."""
        gamma = self.params.gamma
        guard = 1 if gamma is None else gamma + 1
        offsets: list[int] = []
        masks: list[int] = []
        weights: list[int] = []
        position = 0
        for seq, weight in entries:
            offsets.append(position)
            masks.append(((1 << len(seq)) - 1) << position)
            weights.append(weight)
            position += len(seq) + guard
        self._offsets = offsets
        self._seq_masks = masks
        self._weights = weights

    def _build_item_bitmaps(self, entries) -> dict[int, int]:
        """Item (or ancestor) id → bitmap of generalized occurrence positions."""
        vocabulary = self.vocabulary
        pivot = self._pivot
        bitmaps: dict[int, int] = {}
        for (seq, _weight), offset in zip(entries, self._offsets):
            for i, item in enumerate(seq):
                if item == BLANK:
                    continue
                bit = 1 << (offset + i)
                for anc in vocabulary.ancestors_or_self(item):
                    if anc > pivot:
                        continue
                    bitmaps[anc] = bitmaps.get(anc, 0) | bit
        return bitmaps

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def _grow(
        self,
        pattern: tuple[int, ...],
        bitmap: int,
        candidates: list[int],
        output: dict[tuple[int, ...], int],
    ) -> None:
        if len(pattern) == self.params.lam:
            return
        follow = self._follow_mask(bitmap)
        surviving: list[int] = []
        children: list[tuple[tuple[int, ...], int]] = []
        self.stats.candidates += len(candidates)
        for item in candidates:
            extended = follow & self._item_bitmaps[item]
            if not extended:
                continue
            weight = self._support(extended)
            if weight < self.params.sigma:
                continue
            surviving.append(item)
            new_pattern = pattern + (item,)
            if max(new_pattern) == self._pivot:
                output[new_pattern] = weight
                self.stats.outputs += 1
            children.append((new_pattern, extended))
        # S-step pruning is only sound without a gap bound (see module doc).
        child_candidates = surviving if self.params.gamma is None else candidates
        for new_pattern, extended in children:
            self._grow(new_pattern, extended, child_candidates, output)

    def _follow_mask(self, bitmap: int) -> int:
        """Positions reachable from any embedding end under the gap bound."""
        gamma = self.params.gamma
        if gamma is not None:
            mask = 0
            for shift in range(1, gamma + 2):
                mask |= bitmap << shift
            return mask
        # Unbounded gap: per sequence, everything after the first end.
        mask = 0
        for seq_mask in self._seq_masks:
            local = bitmap & seq_mask
            if not local:
                continue
            first = local & -local  # lowest set bit
            mask |= seq_mask & ~((first << 1) - 1)
        return mask

    def _support(self, bitmap: int) -> int:
        """Weighted number of partition sequences with at least one bit set."""
        total = 0
        for seq_mask, weight in zip(self._seq_masks, self._weights):
            if bitmap & seq_mask:
                total += weight
        return total
