"""Hierarchy-aware BFS miner (SPADE-style level-wise mining, Sec. 5.1).

Level-wise candidate-generation-and-test with a vertical database layout:

1. One scan builds a posting list for every generalized 2-sequence
   ``S ∈ G2(T)`` — the paper's hierarchy-aware twist on SPADE's index
   (e.g. ``T = c a b1 D`` with γ=1 lands in the posting lists of
   ``ca, cb1, cB, ab1, aB, aD, b1D, BD``).
2. Candidates of length ``l+1`` join two frequent ``l``-sequences that
   overlap in ``l-1`` items; the support comes from extending the posting
   list of the length-``l`` prefix with the candidate's last item under the
   gap constraint.

The full level has to be materialized before the next one starts, which is
what blows BFS up on deep hierarchies (the paper's λ=7 run died with
"insufficient memory"; :attr:`peak_postings` tracks the analogous quantity).

As a LASH local miner, BFS computes all frequent sequences and filters pivot
sequences at output time.
"""

from __future__ import annotations

from repro.constants import BLANK
from repro.miners.base import LocalMiner, normalize_partition

#: posting list: per supporting sequence (sequence, weight, end positions)
_Posting = list[tuple[tuple[int, ...], int, frozenset[int]]]


class BfsMiner(LocalMiner):
    """Level-wise miner over a partition; filters pivot sequences at output."""

    name = "bfs"

    #: largest number of posting lists held for one level (memory proxy)
    peak_postings: int = 0

    def mine_partition(self, partition, pivot: int) -> dict[tuple[int, ...], int]:
        entries = normalize_partition(partition)
        self._pivot = pivot
        self.peak_postings = 0
        output: dict[tuple[int, ...], int] = {}
        sigma = self.params.sigma

        # level 1: frequent items (drives the paper's candidate counts)
        item_weights = self._item_scan(entries)
        self.stats.candidates += len(item_weights)
        frequent_items = {
            item for item, weight in item_weights.items() if weight >= sigma
        }

        # level 2: direct posting-list construction from one scan
        postings = self._build_2seq_postings(entries, frequent_items)
        self.stats.candidates += len(postings)
        level: dict[tuple[int, ...], _Posting] = {}
        for seq2, posting in postings.items():
            weight = sum(w for _, w, _ in posting)
            if weight < sigma:
                continue
            level[seq2] = posting
            self._emit(seq2, weight, output)
        self.peak_postings = max(self.peak_postings, len(postings))

        # levels 3..λ: join + prefix extension
        length = 2
        while level and length < self.params.lam:
            next_level: dict[tuple[int, ...], _Posting] = {}
            frequent = set(level)
            for prefix in sorted(frequent):
                for other in sorted(frequent):
                    if prefix[1:] != other[:-1]:
                        continue
                    candidate = prefix + (other[-1],)
                    self.stats.candidates += 1
                    posting = self._extend(level[prefix], other[-1])
                    weight = sum(w for _, w, _ in posting)
                    if weight < sigma:
                        continue
                    next_level[candidate] = posting
                    self._emit(candidate, weight, output)
            self.peak_postings = max(
                self.peak_postings, len(level) + len(next_level)
            )
            level = next_level
            length += 1
        return output

    # ------------------------------------------------------------------

    def _emit(
        self,
        seq: tuple[int, ...],
        weight: int,
        output: dict[tuple[int, ...], int],
    ) -> None:
        if max(seq) == self._pivot:
            output[seq] = weight
            self.stats.outputs += 1

    def _item_scan(self, entries) -> dict[int, int]:
        agg: dict[int, int] = {}
        for seq, weight in entries:
            seen: set[int] = set()
            for item in seq:
                if item == BLANK:
                    continue
                for anc in self.vocabulary.ancestors_or_self(item):
                    if anc <= self._pivot:
                        seen.add(anc)
            for item in seen:
                agg[item] = agg.get(item, 0) + weight
        return agg

    def _build_2seq_postings(
        self, entries, frequent_items: set[int]
    ) -> dict[tuple[int, int], _Posting]:
        """One scan: posting lists of all generalized 2-sequences whose items
        are frequent (infrequent items cannot occur in frequent sequences)."""
        gamma = self.params.gamma
        vocabulary = self.vocabulary
        postings: dict[tuple[int, int], _Posting] = {}
        for seq, weight in entries:
            n = len(seq)
            found: dict[tuple[int, int], set[int]] = {}
            for i, first in enumerate(seq):
                if first == BLANK:
                    continue
                hi = n if gamma is None else min(n, i + 2 + gamma)
                for k in range(i + 1, hi):
                    second = seq[k]
                    if second == BLANK:
                        continue
                    for anc_a in vocabulary.ancestors_or_self(first):
                        if anc_a > self._pivot or anc_a not in frequent_items:
                            continue
                        for anc_b in vocabulary.ancestors_or_self(second):
                            if anc_b > self._pivot or anc_b not in frequent_items:
                                continue
                            found.setdefault((anc_a, anc_b), set()).add(k)
            for pair, ends in found.items():
                postings.setdefault(pair, []).append(
                    (seq, weight, frozenset(ends))
                )
        return postings

    def _extend(self, posting: _Posting, last_item: int) -> _Posting:
        """Posting list of ``P + (last_item,)`` from the posting list of ``P``."""
        gamma = self.params.gamma
        vocabulary = self.vocabulary
        out: _Posting = []
        for seq, weight, ends in posting:
            n = len(seq)
            new_ends: set[int] = set()
            for end in ends:
                hi = n if gamma is None else min(n, end + 2 + gamma)
                for k in range(end + 1, hi):
                    item = seq[k]
                    if item != BLANK and vocabulary.generalizes_to(
                        item, last_item
                    ):
                        new_ends.add(k)
            if new_ends:
                out.append((seq, weight, frozenset(new_ends)))
        return out
