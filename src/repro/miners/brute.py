"""Brute-force reference miner.

Enumerates ``G_{w,λ}(T)`` for every partition sequence via the exponential
enumerator and counts weighted supports exactly.  Slow but obviously
correct — the oracle against which PSM/BFS/DFS are validated.
"""

from __future__ import annotations

from repro.miners.base import LocalMiner, normalize_partition
from repro.sequence.generate import generalized_subsequences


class BruteForceMiner(LocalMiner):
    """Oracle miner: enumerate all pivot sequences, count, filter by σ."""

    name = "brute"

    def mine_partition(self, partition, pivot: int) -> dict[tuple[int, ...], int]:
        params = self.params
        counts: dict[tuple[int, ...], int] = {}
        for seq, weight in normalize_partition(partition):
            patterns = generalized_subsequences(
                self.vocabulary, seq, params.gamma, params.lam
            )
            for pattern in patterns:
                if max(pattern) == pivot:
                    counts[pattern] = counts.get(pattern, 0) + weight
        self.stats.candidates += len(counts)
        output = {
            pattern: freq
            for pattern, freq in counts.items()
            if freq >= params.sigma
        }
        self.stats.outputs += len(output)
        return output
