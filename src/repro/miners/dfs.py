"""Hierarchy-aware DFS miner (PrefixSpan-style pattern growth, Sec. 5.1).

The miner starts from frequent single items and recursively right-expands
every frequent sequence, mining **all** locally frequent sequences.  Used as
a LASH local miner it therefore over-explores: non-pivot sequences (``ca``,
``aB``, …) are evaluated, recursed into, and discarded by a final filter —
exactly the overhead the paper quantifies in Fig. 4(c,d).

The projected database of a sequence ``S`` stores, per supporting partition
sequence, the set of *end positions* of embeddings of ``S`` (the support set
``D_S``); a right-expansion looks at the gap window after each end position
and at the generalizations of the items found there
(``W^right_S(T) = {w' | S·w' ⊑γ T}``).

Exploration counting matches the paper's Sec. 5.2 example: the initial item
scan plus every candidate evaluated in a ``W^right`` scan count once (the
example partition yields 5 + 17 + 13 + 2 = 37 candidates).
"""

from __future__ import annotations

from repro.constants import BLANK
from repro.miners.base import LocalMiner, normalize_partition

#: projected entry: (sequence, weight, end positions)
_Entry = tuple[tuple[int, ...], int, frozenset[int]]


class DfsMiner(LocalMiner):
    """Pattern-growth miner over a partition; filters pivot sequences last."""

    name = "dfs"

    def mine_partition(self, partition, pivot: int) -> dict[tuple[int, ...], int]:
        entries = normalize_partition(partition)
        self._pivot = pivot
        output: dict[tuple[int, ...], int] = {}

        items = self._initial_scan(entries)
        self.stats.candidates += len(items)
        for item in sorted(items):
            weight, projected = items[item]
            if weight < self.params.sigma:
                continue
            self._grow((item,), projected, output)
        return output

    # ------------------------------------------------------------------

    def _initial_scan(self, entries) -> dict[int, list]:
        """Frequent-item scan: item → [weight, projected entries]."""
        agg: dict[int, list] = {}
        for seq, weight in entries:
            found: dict[int, set[int]] = {}
            for i, item in enumerate(seq):
                if item == BLANK:
                    continue
                for anc in self.vocabulary.ancestors_or_self(item):
                    if anc > self._pivot:
                        continue
                    found.setdefault(anc, set()).add(i)
            for item, ends in found.items():
                payload = agg.get(item)
                if payload is None:
                    payload = agg[item] = [0, []]
                payload[0] += weight
                payload[1].append((seq, weight, frozenset(ends)))
        return agg

    def _grow(
        self,
        seq: tuple[int, ...],
        entries: list[_Entry],
        output: dict[tuple[int, ...], int],
    ) -> None:
        if len(seq) == self.params.lam:
            return
        candidates = self._right_scan(entries)
        self.stats.candidates += len(candidates)
        for item in sorted(candidates):
            weight, projected = candidates[item]
            if weight < self.params.sigma:
                continue
            new_seq = seq + (item,)
            if max(new_seq) == self._pivot:
                output[new_seq] = weight
                self.stats.outputs += 1
            self._grow(new_seq, projected, output)

    def _right_scan(self, entries: list[_Entry]) -> dict[int, list]:
        """``W^right_S``: expansion item → [weight, projected entries]."""
        gamma = self.params.gamma
        vocabulary = self.vocabulary
        agg: dict[int, list] = {}
        for seq, weight, ends in entries:
            n = len(seq)
            found: dict[int, set[int]] = {}
            for end in ends:
                hi = n if gamma is None else min(n, end + 2 + gamma)
                for k in range(end + 1, hi):
                    item = seq[k]
                    if item == BLANK:
                        continue
                    for anc in vocabulary.ancestors_or_self(item):
                        if anc > self._pivot:
                            continue
                        found.setdefault(anc, set()).add(k)
            for item, new_ends in found.items():
                payload = agg.get(item)
                if payload is None:
                    payload = agg[item] = [0, []]
                payload[0] += weight
                payload[1].append((seq, weight, frozenset(new_ends)))
        return agg
