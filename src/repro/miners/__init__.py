"""Sequential (local) GSM miners used in the reduce phase (paper Sec. 5)."""

from repro.miners.base import LocalMiner, ExplorationStats, normalize_partition
from repro.miners.brute import BruteForceMiner
from repro.miners.bfs import BfsMiner
from repro.miners.dfs import DfsMiner
from repro.miners.spam import SpamMiner

__all__ = [
    "LocalMiner",
    "ExplorationStats",
    "normalize_partition",
    "BruteForceMiner",
    "BfsMiner",
    "DfsMiner",
    "SpamMiner",
]
