"""repro — a reproduction of "LASH: Large-Scale Sequence Mining with
Hierarchies" (Beedkar & Gemulla, SIGMOD 2015).

Public API::

    from repro import Hierarchy, SequenceDatabase, MiningParams, Lash, mine

    h = Hierarchy.from_parent_map({"lives": "live", "live": "VERB"})
    db = SequenceDatabase([["she", "lives", "here"], ...])
    result = mine(db, h, sigma=2, gamma=0, lam=3)
    result.top(10)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.constants import BLANK, BLANK_SYMBOL
from repro.errors import (
    EncodingError,
    HierarchyError,
    InvalidParameterError,
    ReproError,
    UnknownItemError,
)
from repro.hierarchy import (
    Hierarchy,
    Vocabulary,
    build_total_order,
    build_vocabulary,
    compute_generalized_flist,
)
from repro.sequence import SequenceDatabase, EncodedDatabase
from repro.core import (
    ClosedLash,
    ClosedMiningResult,
    Lash,
    MiningParams,
    MiningResult,
    PivotSequenceMiner,
    mine_closed_direct,
    mine_top_k,
)
from repro.core.lash import mine
from repro.analysis.closedmax import mine_closed
from repro.miners import (
    BfsMiner,
    BruteForceMiner,
    DfsMiner,
    ExplorationStats,
    SpamMiner,
)
from repro.baselines import (
    GspAlgorithm,
    MgFsm,
    NaiveAlgorithm,
    SemiNaiveAlgorithm,
)
from repro.mapreduce import ClusterSpec, MapReduceEngine
from repro.query import (
    PatternIndex,
    Q,
    code_patterns,
    normalize_query,
    parse_query,
)


def __getattr__(name):
    # the serving stack (http.server etc.) stays opt-in: resolve its
    # exports lazily so `import repro` never pays for it
    if name in (
        "PatternStore",
        "ShardedPatternStore",
        "open_store",
        "merge_stores",
        "QueryService",
    ):
        from repro import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "BLANK",
    "BLANK_SYMBOL",
    "ReproError",
    "HierarchyError",
    "UnknownItemError",
    "InvalidParameterError",
    "EncodingError",
    "Hierarchy",
    "Vocabulary",
    "build_total_order",
    "build_vocabulary",
    "compute_generalized_flist",
    "SequenceDatabase",
    "EncodedDatabase",
    "Lash",
    "MiningParams",
    "MiningResult",
    "PivotSequenceMiner",
    "mine",
    "mine_closed",
    "mine_closed_direct",
    "mine_top_k",
    "ClosedLash",
    "ClosedMiningResult",
    "BfsMiner",
    "BruteForceMiner",
    "DfsMiner",
    "SpamMiner",
    "ExplorationStats",
    "GspAlgorithm",
    "MgFsm",
    "NaiveAlgorithm",
    "SemiNaiveAlgorithm",
    "ClusterSpec",
    "MapReduceEngine",
    "PatternIndex",
    "PatternStore",
    "ShardedPatternStore",
    "open_store",
    "merge_stores",
    "QueryService",
    "Q",
    "code_patterns",
    "normalize_query",
    "parse_query",
    "__version__",
]
