"""Setup shim.

The execution environment has no network access and no ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build the editable wheel.  This shim
lets ``python setup.py develop`` provide the classic editable install; all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
