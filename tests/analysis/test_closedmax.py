"""Tests for fast closed/maximal identification (neighbor lemma)."""

import pytest
from hypothesis import given, settings

from repro import Lash, MiningParams, mine, mine_closed
from repro.analysis.closedmax import (
    closed_patterns_fast,
    filter_result,
    maximal_patterns_fast,
)
from repro.analysis.redundancy import closed_patterns, maximal_patterns
from tests.property.strategies import dag_hierarchies, mining_instances


@pytest.fixture
def paper_result(fig1_database, fig1_hierarchy):
    return mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)


class TestNeighborLemmaOnPaperExample:
    def test_agrees_with_bruteforce_closed(self, paper_result):
        fast = closed_patterns_fast(
            paper_result.vocabulary, paper_result.patterns
        )
        brute = closed_patterns(paper_result.vocabulary, paper_result.patterns)
        assert fast == brute

    def test_agrees_with_bruteforce_maximal(self, paper_result):
        fast = maximal_patterns_fast(
            paper_result.vocabulary, paper_result.patterns
        )
        brute = maximal_patterns(
            paper_result.vocabulary, paper_result.patterns
        )
        assert fast == brute

    def test_ab1_not_closed(self, paper_result):
        """f(aB)=3 but f(ab1)=2: aB is closed, Ba (f=2) vs b1a (f=2) is not."""
        V = paper_result.vocabulary
        closed = closed_patterns_fast(V, paper_result.patterns)
        # aB has frequency 3; its specialization ab1 has frequency 2 — so the
        # specialization does not kill aB, but aBc (f=2) ≠ 3 either: check
        # that aB survives while BD (f=2, with specialization b1D also f=2)
        # does not.
        assert V.encode_sequence(["a", "B"]) in closed
        assert V.encode_sequence(["B", "D"]) not in closed
        assert V.encode_sequence(["b1", "D"]) in closed

    def test_maximal_subset_of_closed(self, paper_result):
        V = paper_result.vocabulary
        closed = closed_patterns_fast(V, paper_result.patterns)
        maximal = maximal_patterns_fast(V, paper_result.patterns)
        assert maximal <= closed


class TestFilterResult:
    def test_closed_filter(self, paper_result):
        filtered = filter_result(paper_result, "closed")
        assert set(filtered.patterns) == closed_patterns_fast(
            paper_result.vocabulary, paper_result.patterns
        )
        assert filtered.algorithm.endswith("+closed")

    def test_maximal_filter(self, paper_result):
        filtered = filter_result(paper_result, "maximal")
        assert set(filtered.patterns) == maximal_patterns_fast(
            paper_result.vocabulary, paper_result.patterns
        )

    def test_invalid_mode_rejected(self, paper_result):
        with pytest.raises(ValueError):
            filter_result(paper_result, "open")

    def test_frequencies_preserved(self, paper_result):
        filtered = filter_result(paper_result, "closed")
        for pattern, freq in filtered.patterns.items():
            assert paper_result.patterns[pattern] == freq


class TestMineClosed:
    def test_convenience_api(self, fig1_database, fig1_hierarchy):
        result = mine_closed(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3
        )
        assert result.algorithm == "lash[psm]+closed"
        assert len(result) > 0

    def test_accepts_plain_lists(self, fig1_hierarchy):
        result = mine_closed(
            [["a", "b1"], ["a", "b1"]], fig1_hierarchy, sigma=2, lam=2
        )
        assert result.frequency("a", "b1") == 2

    def test_maximal_mode(self, fig1_database, fig1_hierarchy):
        maximal = mine_closed(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3,
            mode="maximal",
        )
        closed = mine_closed(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3,
            mode="closed",
        )
        assert set(maximal.patterns) <= set(closed.patterns)


class TestOutputStatisticsMethods:
    def test_fast_and_pairwise_agree(self, paper_result):
        from repro.analysis import output_statistics

        fast = output_statistics(
            paper_result.vocabulary, paper_result.patterns, method="fast"
        )
        pairwise = output_statistics(
            paper_result.vocabulary, paper_result.patterns, method="pairwise"
        )
        assert fast == pairwise

    def test_unknown_method_rejected(self, paper_result):
        from repro.analysis import output_statistics

        with pytest.raises(ValueError):
            output_statistics(
                paper_result.vocabulary, paper_result.patterns, method="magic"
            )


@settings(max_examples=30, deadline=None)
@given(mining_instances())
def test_fast_matches_bruteforce_on_random_instances(instance):
    """The neighbor lemma must agree with the pairwise definition."""
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    result = Lash(params).mine(database, hierarchy)
    V, patterns = result.vocabulary, result.patterns
    assert closed_patterns_fast(V, patterns) == closed_patterns(V, patterns)
    assert maximal_patterns_fast(V, patterns) == maximal_patterns(V, patterns)


@settings(max_examples=15, deadline=None)
@given(mining_instances(hierarchy_strategy=dag_hierarchies()))
def test_fast_matches_bruteforce_on_dags(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    result = Lash(params).mine(database, hierarchy)
    V, patterns = result.vocabulary, result.patterns
    assert closed_patterns_fast(V, patterns) == closed_patterns(V, patterns)
    assert maximal_patterns_fast(V, patterns) == maximal_patterns(V, patterns)
