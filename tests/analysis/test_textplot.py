"""ASCII chart rendering (repro.analysis.textplot)."""

from __future__ import annotations

import pytest

from repro.analysis.textplot import (
    bar_chart,
    chart_from_report,
    grouped_bar_chart,
    parse_report_table,
)
from repro.errors import InvalidParameterError


# ----------------------------------------------------------------------
# bar_chart
# ----------------------------------------------------------------------


def test_longest_bar_spans_width():
    chart = bar_chart(["a", "b"], [10.0, 5.0], width=20)
    lines = chart.splitlines()
    assert lines[0].count("█") == 20
    assert lines[1].count("█") == 10


def test_values_appear_with_unit():
    chart = bar_chart(["naive", "lash"], [24.3, 1.5], unit="s")
    assert "24.3 s" in chart and "1.5 s" in chart


def test_labels_aligned():
    chart = bar_chart(["short", "a-much-longer-label"], [1, 2])
    lines = chart.splitlines()
    # bars start at the same column
    assert lines[0].index("█") == lines[1].index("█")


def test_zero_values_render_empty_bars():
    chart = bar_chart(["x", "y"], [0.0, 3.0])
    lines = chart.splitlines()
    assert "█" not in lines[0]
    assert "█" in lines[1]


def test_all_zero_is_fine():
    chart = bar_chart(["x", "y"], [0, 0])
    assert "█" not in chart


def test_partial_blocks_increase_resolution():
    chart = bar_chart(["a", "b"], [100, 37], width=10)
    lines = chart.splitlines()
    # 3.7 cells -> 3 full blocks plus a partial
    assert lines[1].count("█") == 3
    assert any(p and p in lines[1] for p in "▏▎▍▌▋▊▉")


def test_mismatched_lengths_rejected():
    with pytest.raises(InvalidParameterError):
        bar_chart(["a"], [1, 2])


def test_empty_rejected():
    with pytest.raises(InvalidParameterError):
        bar_chart([], [])


def test_negative_rejected():
    with pytest.raises(InvalidParameterError):
        bar_chart(["a"], [-1.0])


def test_bad_width_rejected():
    with pytest.raises(InvalidParameterError):
        bar_chart(["a"], [1.0], width=0)


# ----------------------------------------------------------------------
# grouped_bar_chart
# ----------------------------------------------------------------------


def test_grouped_common_scale():
    chart = grouped_bar_chart(
        ["s=10", "s=100"],
        {"Map": [2.0, 1.0], "Reduce": [4.0, 0.5]},
        width=20,
    )
    lines = chart.splitlines()
    assert lines[0] == "s=10:"
    # the global maximum (Reduce at s=10) spans the full width
    reduce_line = next(l for l in lines if "Reduce" in l and "4.0" in l)
    assert reduce_line.count("█") == 20
    map_line = next(l for l in lines if "Map" in l and "2.0" in l)
    assert map_line.count("█") == 10


def test_grouped_requires_aligned_series():
    with pytest.raises(InvalidParameterError):
        grouped_bar_chart(["a", "b"], {"x": [1.0]})


def test_grouped_requires_series():
    with pytest.raises(InvalidParameterError):
        grouped_bar_chart(["a"], {})


# ----------------------------------------------------------------------
# report parsing / charting
# ----------------------------------------------------------------------

REPORT = """\
== Fig 4(a): total time (s): baselines vs LASH, gamma=0 ==
Fig 4(a)     Naive  Semi-naive  LASH  Speedup  Patterns
-------------------------------------------------------
P(60,0,3)    1.70   0.67        0.87  2.00     404
P(20,0,3)    2.03   1.31        1.06  1.90     1120
CLP(20,0,5)  24.31  12.44       1.54  15.80    4992
"""


def test_parse_report_table():
    columns, rows = parse_report_table(REPORT)
    assert columns == ["Naive", "Semi-naive", "LASH", "Speedup", "Patterns"]
    assert rows[0][0] == "P(60,0,3)"
    assert rows[2][1] == "24.31"


def test_chart_from_report():
    chart = chart_from_report(REPORT, "Naive", width=10, unit="s")
    lines = chart.splitlines()
    assert len(lines) == 3
    assert lines[2].count("█") == 10  # CLP row dominates
    assert "24.3 s" in lines[2]


def test_chart_from_report_unknown_column():
    with pytest.raises(InvalidParameterError):
        chart_from_report(REPORT, "Bogus")


def test_chart_from_report_skips_non_numeric():
    report = REPORT + "NA-row       NA     NA          NA    NA       NA\n"
    chart = chart_from_report(report, "Naive")
    assert "NA-row" not in chart


def test_chart_from_report_all_non_numeric():
    report = (
        "== t ==\nexp  A\n------\nrow  NA\n"
    )
    with pytest.raises(InvalidParameterError):
        chart_from_report(report, "A")


def test_parse_empty_rejected():
    with pytest.raises(InvalidParameterError):
        parse_report_table("")


def test_roundtrip_with_real_benchreport(tmp_path):
    """A BenchReport written by the harness parses back cleanly."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parents[2] / "benchmarks"))
    try:
        from reporting import BenchReport
    finally:
        sys.path.pop(0)
    report = BenchReport("Demo", "roundtrip")
    report.add("row-1", {"A": 1.5, "B": 3})
    report.add("row-2", {"A": 2.5, "B": 4})
    text = report.render()
    columns, rows = parse_report_table(text)
    assert columns == ["A", "B"]
    assert [row[0] for row in rows] == ["row-1", "row-2"]
    chart = chart_from_report(text, "A")
    assert chart.splitlines()[1].count("█") == 40
