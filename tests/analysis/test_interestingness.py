"""Interestingness ranking (repro.analysis.interestingness).

Hand-computed expectations use the paper's Fig. 1 example (σ=2, γ=1, λ=3):
patterns aa:2, ab1:2, b1a:2, aB:3, Ba:2, aBc:2, Bc:2, ac:2, b1D:2, BD:2;
generalized item frequencies a:5, B:5, b1:4, c:3, D:2 (Fig. 2's f-list).
"""

from __future__ import annotations

from math import inf, isclose

import pytest

from repro import mine
from repro.analysis.interestingness import (
    ScoredPattern,
    lift_scores,
    r_interest_scores,
    r_interesting_patterns,
    rank_patterns,
)
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def fig1_result():
    from tests.conftest import paper_database, paper_hierarchy

    return mine(
        paper_database(), paper_hierarchy(), sigma=2, gamma=1, lam=3
    )


def by_name(result, scores):
    return {
        result.vocabulary.decode_sequence(p): s for p, s in scores.items()
    }


# ----------------------------------------------------------------------
# R-interestingness
# ----------------------------------------------------------------------


def test_patterns_without_generalization_score_inf(fig1_result):
    scores = by_name(
        fig1_result,
        r_interest_scores(fig1_result.patterns, fig1_result.vocabulary),
    )
    # aa has no mined generalization of the same length
    assert scores[("a", "a")] == inf
    # aB's only candidate generalization would be itself; none mined above
    assert scores[("a", "B")] == inf


def test_specialization_scored_against_its_generalization(fig1_result):
    """ab1 is explained by aB:  E[f(ab1)] = f(aB) · f0(b1)/f0(B) = 3·4/5,
    so score = 2 / 2.4."""
    scores = by_name(
        fig1_result,
        r_interest_scores(fig1_result.patterns, fig1_result.vocabulary),
    )
    assert isclose(scores[("a", "b1")], 2 / (3 * 4 / 5))
    # b1D against BD: E = 2 · 4/5 = 1.6 -> 2/1.6 = 1.25 (over-expressed!)
    assert isclose(scores[("b1", "D")], 2 / (2 * 4 / 5))
    # b1a against Ba: same ratio as ab1 but f(Ba)=2: E = 2·0.8 -> 2/1.6
    assert isclose(scores[("b1", "a")], 1.25)


def test_score_is_min_over_generalizations():
    """With two mined generalizations the weaker explanation governs."""
    from repro.hierarchy import Hierarchy
    from repro.sequence import SequenceDatabase

    h = Hierarchy()
    h.add_item("X")
    h.add_item("x1", "X")
    h.add_item("Y")
    h.add_item("y1", "Y")
    db = SequenceDatabase(
        [["x1", "y1"]] * 4 + [["x1", "Y"]] * 2 + [["X", "y1"]] * 2
    )
    result = mine(db, h, sigma=2, gamma=0, lam=2)
    scores = by_name(
        result, r_interest_scores(result.patterns, result.vocabulary)
    )
    # (x1, y1): generalizations mined: (X, Y), (x1, Y), (X, y1)
    assert ("x1", "y1") in scores
    candidates = []
    f = result.decoded()
    f0 = {
        name: result.vocabulary.frequency_of(name)
        for name in ("X", "x1", "Y", "y1")
    }
    for gen in ((("X", "Y")), (("x1", "Y")), (("X", "y1"))):
        expected = f[gen]
        for s, g in zip(("x1", "y1"), gen):
            expected *= f0[s] / f0[g]
        candidates.append(f[("x1", "y1")] / expected)
    assert isclose(scores[("x1", "y1")], min(candidates))


def test_r_interesting_filter_keeps_unexplained(fig1_result):
    kept = r_interesting_patterns(
        fig1_result.patterns, fig1_result.vocabulary, r=1.1
    )
    names = {
        fig1_result.vocabulary.decode_sequence(p) for p in kept
    }
    assert ("a", "a") in names          # inf score
    assert ("b1", "D") in names         # 1.25 >= 1.1
    assert ("a", "b1") not in names     # 0.833 < 1.1


def test_r_interesting_r_one_keeps_at_least_expected(fig1_result):
    kept_low = r_interesting_patterns(
        fig1_result.patterns, fig1_result.vocabulary, r=0.5
    )
    kept_high = r_interesting_patterns(
        fig1_result.patterns, fig1_result.vocabulary, r=2.0
    )
    assert set(kept_high) <= set(kept_low)


def test_r_must_be_positive(fig1_result):
    with pytest.raises(InvalidParameterError):
        r_interesting_patterns(
            fig1_result.patterns, fig1_result.vocabulary, r=0
        )


# ----------------------------------------------------------------------
# lift
# ----------------------------------------------------------------------


def test_lift_hand_computed(fig1_result):
    scores = by_name(
        fig1_result,
        lift_scores(fig1_result.patterns, fig1_result.vocabulary, 6),
    )
    # aa: f=2, E = 6 · (5/6)² = 25/6
    assert isclose(scores[("a", "a")], 2 / (6 * (5 / 6) ** 2))
    # b1D: f=2, E = 6 · (4/6)(2/6) = 8/6 -> lift 1.5
    assert isclose(scores[("b1", "D")], 1.5)


def test_lift_rejects_bad_database_size(fig1_result):
    with pytest.raises(InvalidParameterError):
        lift_scores(fig1_result.patterns, fig1_result.vocabulary, 0)


# ----------------------------------------------------------------------
# ranking API
# ----------------------------------------------------------------------


def test_rank_patterns_r_interest_order(fig1_result):
    ranked = rank_patterns(fig1_result, measure="r-interest")
    assert len(ranked) == len(fig1_result.patterns)
    scores = [sp.score for sp in ranked]
    assert scores == sorted(scores, reverse=True)
    # the inf-scored unexplained patterns rank first
    assert ranked[0].score == inf


def test_rank_patterns_lift(fig1_result):
    ranked = rank_patterns(fig1_result, measure="lift", num_sequences=6)
    assert isinstance(ranked[0], ScoredPattern)
    scores = [sp.score for sp in ranked]
    assert scores == sorted(scores, reverse=True)


def test_rank_patterns_lift_default_database_size(fig1_result):
    """Without num_sequences the max item frequency (5) stands in; scores
    change but the relative order of equal-length patterns is preserved."""
    ranked = rank_patterns(fig1_result, measure="lift")
    assert len(ranked) == len(fig1_result.patterns)


def test_rank_patterns_rejects_unknown_measure(fig1_result):
    with pytest.raises(InvalidParameterError):
        rank_patterns(fig1_result, measure="chi2")


def test_scored_pattern_render(fig1_result):
    ranked = rank_patterns(fig1_result)
    assert " " in ranked[0].render()


def test_b1d_beats_its_generalization(fig1_result):
    """The paper highlights b1D: frequent although unexpected.  It must
    outrank its own generalization BD and the redundant ab1."""
    ranked = rank_patterns(fig1_result, measure="r-interest")
    position = {sp.pattern: i for i, sp in enumerate(ranked)}
    assert position[("b1", "D")] < position[("a", "b1")]
