"""Unit tests for result comparison utilities."""

import pytest

from repro import MgFsm, MiningParams, mine
from repro.analysis import compare_results, recode_patterns


class TestCompareResults:
    def test_agreement(self, fig1_database, fig1_hierarchy):
        a = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        b = mine(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3,
            local_miner="bfs",
        )
        diff = compare_results(a, b)
        assert diff.agree
        assert diff.summary() == "results agree"

    def test_disagreement_reported(self, fig1_database, fig1_hierarchy):
        a = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        b = mine(fig1_database, fig1_hierarchy, sigma=3, gamma=1, lam=3)
        diff = compare_results(a, b)
        assert not diff.agree
        assert diff.missing  # σ=3 lost patterns
        assert "missing" in diff.summary()

    def test_cross_vocabulary_comparison(self, fig1_database):
        """Flat vs MG-FSM use different id spaces but identical names."""
        params = MiningParams(2, 1, 3)
        a = mine(fig1_database, None, sigma=2, gamma=1, lam=3)
        b = MgFsm(params).mine(fig1_database)
        assert compare_results(a, b).agree


class TestRecode:
    def test_roundtrip(self, fig1_database, fig1_hierarchy):
        gsm = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        flat = mine(fig1_database, None, sigma=2, gamma=1, lam=3)
        recoded = recode_patterns(
            flat.patterns, flat.vocabulary, gsm.vocabulary
        )
        assert len(recoded) == len(flat.patterns)
        back = recode_patterns(recoded, gsm.vocabulary, flat.vocabulary)
        assert back == dict(flat.patterns)
