"""Cost-model tests: exact formulas vs the actual enumerators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Hierarchy, InvalidParameterError, SequenceDatabase
from repro.analysis.costmodel import (
    g1_size,
    lash_emitted_sequences,
    lash_rewrite_operations,
    naive_emissions_contiguous,
    naive_emissions_unbounded,
    nonpivot_sequences,
    psm_explored_fraction,
    psm_search_space,
    total_sequences,
)
from repro.hierarchy import build_vocabulary
from repro.sequence.generate import generalized_items, generalized_subsequences


def worst_case_instance(l: int, delta: int):
    """A sequence of ``l`` distinct leaves, each under a δ-deep chain."""
    h = Hierarchy()
    leaves = []
    for i in range(l):
        chain = [f"x{i}.{d}" for d in range(delta + 1)]  # root .. leaf
        h.add_item(chain[0])
        for child, parent in zip(chain[1:], chain):
            h.add_edge(child, parent)
        leaves.append(chain[-1])
    db = SequenceDatabase([leaves])
    vocabulary = build_vocabulary(db, h)
    return vocabulary, vocabulary.encode_sequence(leaves)


class TestFormulasMatchEnumerators:
    @pytest.mark.parametrize("l,delta", [(1, 0), (3, 1), (4, 2), (5, 0)])
    def test_g1_size_exact(self, l, delta):
        vocabulary, seq = worst_case_instance(l, delta)
        assert len(generalized_items(vocabulary, seq)) == g1_size(l, delta)

    @pytest.mark.parametrize(
        "l,delta,lam", [(3, 1, 3), (4, 1, 2), (4, 2, 3), (5, 0, 4), (2, 3, 2)]
    )
    def test_contiguous_emissions_exact(self, l, delta, lam):
        vocabulary, seq = worst_case_instance(l, delta)
        enumerated = generalized_subsequences(vocabulary, seq, 0, lam)
        assert len(enumerated) == naive_emissions_contiguous(l, delta, lam)

    @pytest.mark.parametrize("l,delta", [(2, 0), (3, 1), (4, 1), (3, 2)])
    def test_unbounded_emissions_exact(self, l, delta):
        vocabulary, seq = worst_case_instance(l, delta)
        enumerated = generalized_subsequences(vocabulary, seq, None, l)
        assert len(enumerated) == naive_emissions_unbounded(l, delta)


class TestPaperNumbers:
    def test_sec52_example(self):
        """k=100,000 and λ=5 ⇒ PSM explores 0.005% of the space."""
        fraction = psm_explored_fraction(100_000, 5)
        assert round(100 * fraction, 3) == 0.005

    def test_fraction_much_smaller_than_one(self):
        assert psm_explored_fraction(1000, 4) < 0.01

    def test_search_space_decomposition(self):
        k, lam = 7, 3
        assert psm_search_space(k, lam) + nonpivot_sequences(k, lam) == (
            total_sequences(k, lam)
        )

    def test_exponential_vs_polynomial_communication(self):
        """Sec. 4.4: LASH polynomial, naïve exponential — the gap must be
        enormous already at moderate sizes."""
        l, delta = 20, 3
        assert lash_emitted_sequences(l, delta) == 80
        assert naive_emissions_unbounded(l, delta) > 10**10

    def test_rewrite_cost_quadratic(self):
        assert lash_rewrite_operations(10, 2) == 30 * 10


class TestValidation:
    def test_bad_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            g1_size(-1, 0)
        with pytest.raises(InvalidParameterError):
            naive_emissions_contiguous(3, 1, 1)
        with pytest.raises(InvalidParameterError):
            total_sequences(0, 3)

    def test_single_item_sequence_emits_nothing(self):
        assert naive_emissions_contiguous(1, 4, 5) == 0
        assert naive_emissions_unbounded(1, 4) == 0


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(1, 10**6),
    lam=st.integers(1, 8),
)
def test_fraction_bounds(k, lam):
    fraction = psm_explored_fraction(k, lam)
    assert 0.0 < fraction <= 1.0
    if k > 1:
        # union bound: a pivot sequence fixes ≥1 of λ positions to the pivot
        assert fraction <= lam / k + 1e-12


@settings(max_examples=30, deadline=None)
@given(l=st.integers(2, 6), delta=st.integers(0, 3))
def test_contiguous_below_unbounded(l, delta):
    assert naive_emissions_contiguous(l, delta, l) <= (
        naive_emissions_unbounded(l, delta)
    )
