"""Unit tests for Table 3 statistics (non-trivial / closed / maximal)."""

import pytest

from repro import Lash, MiningParams, mine
from repro.analysis import (
    closed_patterns,
    maximal_patterns,
    output_statistics,
    recode_patterns,
    trivial_patterns,
)


@pytest.fixture
def result(fig1_database, fig1_hierarchy):
    return mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)


@pytest.fixture
def flat_result(fig1_database):
    return mine(fig1_database, None, sigma=2, gamma=1, lam=3)


class TestTrivial:
    def test_paper_example_trivial_set(self, result, flat_result):
        """Flat mining on Fig. 1 finds only {aa: 2, ac: 2} (b11 does not
        match b1 without the hierarchy), so exactly those two patterns are
        trivial — the other eight need generalization to surface."""
        V = result.vocabulary
        assert flat_result.decoded() == {("a", "a"): 2, ("a", "c"): 2}
        flat = recode_patterns(
            flat_result.patterns, flat_result.vocabulary, V
        )
        trivial = trivial_patterns(V, result.patterns, flat)
        rendered = {V.render(p) for p in trivial}
        assert rendered == {"a a", "a c"}

    def test_nontrivial_requires_hierarchy(self, result, flat_result):
        V = result.vocabulary
        flat = recode_patterns(flat_result.patterns, flat_result.vocabulary, V)
        stats = output_statistics(V, result.patterns, flat)
        assert stats.total == 10
        assert stats.non_trivial == 8
        assert stats.non_trivial_pct == pytest.approx(80.0)

    def test_without_flat_everything_nontrivial(self, result):
        stats = output_statistics(result.vocabulary, result.patterns)
        assert stats.non_trivial == stats.total


class TestClosedMaximal:
    def test_paper_example_maximal(self, result):
        """aBc ⊒0-subsumes aB, Bc, ac; specializations subsume
        generalizations (ab1 ⊐ aB, b1D ⊐ BD, b1a ⊐ Ba, aa maximal)."""
        V = result.vocabulary
        maximal = {V.render(p) for p in maximal_patterns(V, result.patterns)}
        assert "a B c" in maximal
        assert "a B" not in maximal  # inside aBc and specialized by ab1
        assert "B D" not in maximal  # specialized by b1D
        assert "b1 D" in maximal
        assert "a a" in maximal

    def test_paper_example_closed(self, result):
        V = result.vocabulary
        closed = {V.render(p) for p in closed_patterns(V, result.patterns)}
        # aB (3) has no equal-frequency supersequence: closed
        assert "a B" in closed
        # Bc (2) is subsumed by aBc with equal frequency 2: not closed
        assert "B c" not in closed
        # BD (2) subsumed by b1D (2): not closed
        assert "B D" not in closed

    def test_maximal_subset_of_closed(self, result):
        V = result.vocabulary
        maximal = maximal_patterns(V, result.patterns)
        closed = closed_patterns(V, result.patterns)
        assert maximal <= closed

    def test_empty_patterns(self, result):
        V = result.vocabulary
        assert maximal_patterns(V, {}) == set()
        assert closed_patterns(V, {}) == set()
        stats = output_statistics(V, {})
        assert stats.total == 0
        assert stats.closed_pct == 0.0


class TestStatsShape:
    def test_percentages(self):
        from repro.analysis.redundancy import OutputStats

        s = OutputStats(total=8, non_trivial=6, closed=4, maximal=2)
        assert s.non_trivial_pct == 75.0
        assert s.closed_pct == 50.0
        assert s.maximal_pct == 25.0
        assert s.row()["Closed (%)"] == 50.0

    def test_lower_sigma_lowers_maximal_pct(self, fig1_database, fig1_hierarchy):
        """Table 3's trend: lower support ⇒ more redundancy."""
        V_high = mine(fig1_database, fig1_hierarchy, sigma=3, gamma=1, lam=3)
        V_low = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        high = output_statistics(V_high.vocabulary, V_high.patterns)
        low = output_statistics(V_low.vocabulary, V_low.patterns)
        if high.total and low.total:
            assert low.maximal_pct <= high.maximal_pct + 1e-9
