"""Integration tests for the LASH driver — the paper's running example."""

import pytest

from repro.core import Lash, MiningParams
from repro.core.lash import mine, resolve_miner
from repro.errors import InvalidParameterError
from repro.mapreduce import C

#: the paper's complete GSM output for σ=2, γ=1, λ=3 (Sec. 2)
PAPER_OUTPUT = {
    ("a", "a"): 2,
    ("a", "b1"): 2,
    ("b1", "a"): 2,
    ("a", "B"): 3,
    ("B", "a"): 2,
    ("a", "B", "c"): 2,
    ("B", "c"): 2,
    ("a", "c"): 2,
    ("b1", "D"): 2,
    ("B", "D"): 2,
}


class TestPaperExample:
    @pytest.mark.parametrize(
        "miner", ["psm", "psm-level", "psm-noindex", "bfs", "dfs", "brute"]
    )
    def test_exact_output_all_miners(self, fig1_database, fig1_hierarchy, miner):
        result = mine(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3,
            local_miner=miner,
        )
        assert result.decoded() == PAPER_OUTPUT

    def test_output_independent_of_engine_layout(
        self, fig1_database, fig1_hierarchy
    ):
        params = MiningParams(2, 1, 3)
        outputs = [
            Lash(params, num_map_tasks=m, num_reduce_tasks=r)
            .mine(fig1_database, fig1_hierarchy)
            .decoded()
            for m, r in [(1, 1), (3, 2), (16, 16)]
        ]
        assert all(o == PAPER_OUTPUT for o in outputs)

    def test_frequency_accessor(self, fig1_database, fig1_hierarchy):
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        assert result.frequency("a", "B") == 3
        assert result.frequency("B", "D") == 2
        assert result.frequency("a", "D") == 0  # infrequent

    def test_gap_zero_variant(self, fig1_database, fig1_hierarchy):
        """With γ=0 the aBc pattern keeps support 1 < σ (paper Sec. 2)."""
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=0, lam=3)
        assert result.frequency("a", "B", "c") == 0
        assert result.frequency("a", "B") == 3  # a b3 / a b1 / a b12 adjacency

    def test_sigma_one_superset(self, fig1_database, fig1_hierarchy):
        low = mine(fig1_database, fig1_hierarchy, sigma=1, gamma=1, lam=3)
        high = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        low_patterns = low.decoded()
        for pattern, freq in high.decoded().items():
            assert low_patterns[pattern] == freq

    def test_flat_mining_without_hierarchy(self, fig1_database):
        """hierarchy=None mines flat sequences (MG-FSM mode, Fig. 4(e))."""
        result = mine(fig1_database, None, sigma=2, gamma=1, lam=3)
        got = result.decoded()
        assert got[("a", "a")] == 2  # T1 and T4
        assert ("a", "B") not in got  # no hierarchy: B never matches b1
        assert ("b1", "D") not in got

    def test_vocabulary_reuse(self, fig1_database, fig1_hierarchy):
        params = MiningParams(2, 1, 3)
        lash = Lash(params)
        vocabulary, _ = lash.preprocess(fig1_database, fig1_hierarchy)
        result = lash.mine(fig1_database, vocabulary=vocabulary)
        assert result.decoded() == PAPER_OUTPUT
        assert result.preprocess_job is None


class TestDriverMechanics:
    def test_counters_populated(self, fig1_database, fig1_hierarchy):
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        counters = result.counters
        assert counters[C.MAP_INPUT_RECORDS] == 6
        # 14 rewrites survive across the 5 partitions (Fig. 2:
        # P_a:2 + P_B:4 + P_b1:3 + P_c:3 + P_D:2)
        assert counters[C.MAP_OUTPUT_RECORDS] == 14
        assert counters[C.MAP_OUTPUT_BYTES] > 0

    def test_metrics_present(self, fig1_database, fig1_hierarchy):
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        times = result.phase_times()
        assert times.map_s > 0
        assert times.reduce_s >= 0
        assert result.total_metrics().map_task_s

    def test_local_stats_attached(self, fig1_database, fig1_hierarchy):
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        assert result.local_stats.outputs == len(PAPER_OUTPUT)

    def test_unknown_miner_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_miner("nope")

    def test_custom_miner_factory(self, fig1_database, fig1_hierarchy):
        from repro.core.psm import PivotSequenceMiner

        factory = lambda v, p: PivotSequenceMiner(v, p, index_mode="level")
        result = mine(
            fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3,
            local_miner=factory,
        )
        assert result.decoded() == PAPER_OUTPUT

    def test_accepts_plain_lists(self, fig1_hierarchy):
        result = mine(
            [["a", "b1"], ["a", "b2"]], fig1_hierarchy, sigma=2, gamma=0, lam=2
        )
        assert result.decoded() == {("a", "B"): 2}
