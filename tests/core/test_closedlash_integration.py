"""Integration: ClosedLash with the external shuffle, failure injection,
rewrite ablations and datasets beyond the running example."""

from __future__ import annotations

import pytest

from repro import ClosedLash, MiningParams, mine
from repro.analysis.closedmax import filter_result
from repro.core import NO_REWRITE
from repro.mapreduce import FailurePlan, SPILLED_RECORDS


def reference(database, hierarchy, params, mode):
    full = mine(
        database, hierarchy,
        sigma=params.sigma, gamma=params.gamma, lam=params.lam,
    )
    return filter_result(full, mode).patterns


@pytest.mark.parametrize("mode", ["closed", "maximal"])
def test_closedlash_with_spilling(tmp_path, fig1_database, fig1_hierarchy,
                                  mode):
    params = MiningParams(2, 1, 3)
    driver = ClosedLash(params, mode=mode, spill_dir=tmp_path)
    result = driver.mine(fig1_database, fig1_hierarchy)
    assert result.patterns == reference(
        fig1_database, fig1_hierarchy, params, mode
    )
    # all three jobs shuffled through disk
    assert result.mining_job.counters[SPILLED_RECORDS] > 0
    assert result.reconcile_job.counters[SPILLED_RECORDS] > 0
    assert list(tmp_path.rglob("*.run")) == []


def test_closedlash_under_failures(fig1_database, fig1_hierarchy):
    params = MiningParams(2, 1, 3)
    plan = FailurePlan(probability=0.3, seed=11, max_attempts=10)
    clean = ClosedLash(params, mode="closed").mine(
        fig1_database, fig1_hierarchy
    )
    failing = ClosedLash(params, mode="closed", failure_plan=plan).mine(
        fig1_database, fig1_hierarchy
    )
    assert failing.patterns == clean.patterns


def test_closedlash_without_rewrites(fig1_database, fig1_hierarchy):
    """Correctness does not depend on the Sec. 4 rewrites."""
    params = MiningParams(2, 1, 3)
    result = ClosedLash(params, mode="maximal", rewrite_plan=NO_REWRITE).mine(
        fig1_database, fig1_hierarchy
    )
    assert result.patterns == reference(
        fig1_database, fig1_hierarchy, params, "maximal"
    )


def test_closedlash_on_product_data():
    from repro.datasets import ProductDataConfig, generate_product_data

    data = generate_product_data(
        ProductDataConfig(num_users=200, num_products=60, seed=5)
    )
    params = MiningParams(10, 1, 3)
    hierarchy = data.hierarchy(4)
    for mode in ("closed", "maximal"):
        result = ClosedLash(params, mode=mode).mine(data.database, hierarchy)
        assert result.patterns == reference(
            data.database, hierarchy, params, mode
        )


def test_closedlash_on_text_data():
    from repro.datasets import TextCorpusConfig, generate_text_corpus

    corpus = generate_text_corpus(
        TextCorpusConfig(num_sentences=300, seed=9)
    )
    params = MiningParams(8, 0, 3)
    hierarchy = corpus.hierarchy("CLP")
    result = ClosedLash(params, mode="closed").mine(
        corpus.database, hierarchy
    )
    expected = reference(corpus.database, hierarchy, params, "closed")
    assert result.patterns == expected
    assert len(result.patterns) > 0


def test_closed_preserves_top_pattern(fig1_database, fig1_hierarchy):
    """The most frequent pattern is always closed (nothing in the output
    can match its frequency as a supersequence unless equal — and then it
    would itself be pruned, not the top)."""
    full = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    top_frequency = max(full.patterns.values())
    closed = ClosedLash(MiningParams(2, 1, 3), mode="closed").mine(
        fig1_database, fig1_hierarchy
    )
    assert max(closed.patterns.values()) == top_frequency
