"""Unit tests for the rewrite pipeline — pinned to the paper's Sec. 4 examples."""

import pytest

from repro.constants import BLANK
from repro.core import MiningParams
from repro.core.rewrite import (
    blank_isolated_pivots,
    blank_unreachable,
    compress_blanks,
    pivot_distances,
    rewrite_for_pivot,
    w_generalize,
)
from repro.sequence.generate import pivot_subsequences


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) if n != "_" else BLANK for n in names)


class TestWGeneralization:
    def test_paper_t2_pivot_B(self, V):
        """T2 = a b3 c c b2, pivot B → a B _ _ B (paper Sec. 4.2)."""
        t2 = enc(V, "a", "b3", "c", "c", "b2")
        got = w_generalize(V, t2, V.id("B"))
        assert got == list(enc(V, "a", "B", "_", "_", "B"))

    def test_paper_sec43_example_pivot_D(self, V):
        """a b1 a c d1 a d2 c f b2 c → a b1 a c D a D c _ B c (Sec. 4.3)."""
        t = enc(V, "a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c")
        got = w_generalize(V, t, V.id("D"))
        assert got == list(
            enc(V, "a", "b1", "a", "c", "D", "a", "D", "c", "_", "B", "c")
        )

    def test_relevant_items_unchanged(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        assert w_generalize(V, t1, V.id("b1")) == list(t1)

    def test_descendant_of_pivot_becomes_pivot(self, V):
        # b12 generalizes to b1 when the pivot is b1
        got = w_generalize(V, enc(V, "b12"), V.id("b1"))
        assert got == [V.id("b1")]

    def test_blank_when_no_relevant_ancestor(self, V):
        # e has no ancestors; irrelevant for pivot a
        got = w_generalize(V, enc(V, "e", "a"), V.id("a"))
        assert got == [BLANK, V.id("a")]

    def test_existing_blanks_preserved(self, V):
        got = w_generalize(V, (V.id("a"), BLANK), V.id("a"))
        assert got == [V.id("a"), BLANK]


class TestIsolatedPivots:
    def test_isolated_pivot_blanked(self, V):
        # T2 for pivot B: second B is isolated under γ=1 (Sec. 4.4: P_B
        # contains aB, not aB__B)
        seq = enc(V, "a", "B", "_", "_", "B")
        got = blank_isolated_pivots(V, seq, V.id("B"), gamma=1)
        assert got == list(enc(V, "a", "B", "_", "_", "_"))

    def test_adjacent_pivot_pair_kept(self, V):
        seq = enc(V, "D", "D")
        got = blank_isolated_pivots(V, seq, V.id("D"), gamma=0)
        assert got == list(seq)

    def test_mutually_isolated_pair_blanked(self, V):
        seq = enc(V, "D", "_", "D")
        got = blank_isolated_pivots(V, seq, V.id("D"), gamma=0)
        assert got == [BLANK, BLANK, BLANK]

    def test_non_pivot_items_untouched(self, V):
        seq = enc(V, "a", "_", "D")
        got = blank_isolated_pivots(V, seq, V.id("D"), gamma=0)
        assert got == list(enc(V, "a", "_", "_"))

    def test_unbounded_gap_never_isolated(self, V):
        seq = enc(V, "D", "_", "_", "_", "a")
        got = blank_isolated_pivots(V, seq, V.id("D"), gamma=None)
        assert got == list(seq)


class TestPivotDistances:
    def test_paper_distance_table(self, V):
        """The full distance table of Sec. 4.3 for γ=1, pivot D."""
        seq = enc(V, "a", "b1", "a", "c", "D", "a", "D", "c", "_", "B", "c")
        got = pivot_distances(V, seq, V.id("D"), gamma=1)
        assert got == [3, 3, 2, 2, 1, 2, 1, 2, 2, 3, 4]

    def test_blank_not_usable_as_hop(self, V):
        # index 11's left path must avoid the blank at index 9 (Sec. 4.3)
        seq = enc(V, "D", "_", "c")
        # c reachable via {D, c} only if gap allows: γ=1 → ok (distance 2)
        assert pivot_distances(V, seq, V.id("D"), gamma=1) == [1, 2, 2]
        # γ=0: c is unreachable (blank can't serve as hop)
        got = pivot_distances(V, seq, V.id("D"), gamma=0)
        assert got[2] == float("inf")

    def test_no_pivot_all_infinite(self, V):
        seq = enc(V, "a", "c")
        got = pivot_distances(V, seq, V.id("D"), gamma=1)
        assert got == [float("inf")] * 2


class TestUnreachability:
    SEQ = ("a", "b1", "a", "c", "D", "a", "D", "c", "_", "B", "c")

    def test_lambda_2_reduction(self, V):
        """λ=2 keeps indexes 3–9: acDaDc_ (paper Sec. 4.3)."""
        seq = enc(V, *self.SEQ)
        dist = pivot_distances(V, seq, V.id("D"), gamma=1)
        got = blank_unreachable(seq, dist, lam=2)
        assert tuple(got) == enc(
            V, "_", "_", "a", "c", "D", "a", "D", "c", "_", "_", "_"
        )
        assert compress_blanks(got, gamma=1) == enc(
            V, "a", "c", "D", "a", "D", "c"
        )

    def test_lambda_3_reduction(self, V):
        """λ=3 removes only index 11: ab1acDaDc_B (paper Sec. 4.3)."""
        seq = enc(V, *self.SEQ)
        dist = pivot_distances(V, seq, V.id("D"), gamma=1)
        got = blank_unreachable(seq, dist, lam=3)
        assert compress_blanks(got, gamma=1) == enc(
            V, "a", "b1", "a", "c", "D", "a", "D", "c", "_", "B"
        )

    def test_interior_blanking_not_deletion(self, V):
        """D x⁶ D with γ=0, λ=2 must NOT become DD (gap safety)."""
        seq = enc(V, "D", "c", "c", "c", "c", "c", "c", "D")
        params = MiningParams(sigma=1, gamma=0, lam=2)
        rewritten = rewrite_for_pivot(V, seq, V.id("D"), params)
        if rewritten is not None:
            pivots = pivot_subsequences(
                V, rewritten, gamma=0, lam=2, pivot=V.id("D")
            )
            assert enc(V, "D", "D") not in pivots


class TestCompressBlanks:
    def test_edge_trim(self, V):
        seq = (BLANK, V.id("a"), V.id("c"), BLANK)
        assert compress_blanks(seq, gamma=1) == (V.id("a"), V.id("c"))

    def test_interior_run_capped(self, V):
        a, c = V.id("a"), V.id("c")
        seq = (a, BLANK, BLANK, BLANK, BLANK, c)
        assert compress_blanks(seq, gamma=1) == (a, BLANK, BLANK, c)

    def test_short_run_untouched(self, V):
        a, c = V.id("a"), V.id("c")
        seq = (a, BLANK, c)
        assert compress_blanks(seq, gamma=1) == seq

    def test_unbounded_gap_drops_blanks(self, V):
        a, c = V.id("a"), V.id("c")
        assert compress_blanks((a, BLANK, BLANK, c), gamma=None) == (a, c)

    def test_all_blank(self, V):
        assert compress_blanks((BLANK, BLANK), gamma=2) == ()


class TestRewriteForPivot:
    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    def test_fig2_pB_rewrites(self, V):
        """The four P_B rewrites of Sec. 4.4."""
        B = V.id("B")
        cases = {
            ("a", "b1", "a", "b1"): ("a", "B", "a", "B"),
            ("a", "b3", "c", "c", "b2"): ("a", "B"),
            ("b11", "a", "e", "a"): ("B", "a", "_", "a"),
            ("a", "b12", "d1", "c"): ("a", "B"),
        }
        for source, expected in cases.items():
            got = rewrite_for_pivot(V, enc(V, *source), B, self.PARAMS)
            assert got == enc(V, *expected), source

    def test_fig2_dropped_sequences(self, V):
        """T6 = b13 f d2 contributes nothing to P_B (isolated pivot)."""
        got = rewrite_for_pivot(
            V, enc(V, "b13", "f", "d2"), V.id("B"), self.PARAMS
        )
        assert got is None

    def test_fig2_pa_rewrites(self, V):
        a = V.id("a")
        got = rewrite_for_pivot(V, enc(V, "a", "b1", "a", "b1"), a, self.PARAMS)
        assert got == enc(V, "a", "_", "a")
        # T3 = a c: isolated pivot a → dropped
        assert rewrite_for_pivot(V, enc(V, "a", "c"), a, self.PARAMS) is None

    def test_fig2_pD_rewrites(self, V):
        D = V.id("D")
        got = rewrite_for_pivot(
            V, enc(V, "a", "b12", "d1", "c"), D, self.PARAMS
        )
        assert got == enc(V, "a", "b1", "D", "c")
        got = rewrite_for_pivot(V, enc(V, "b13", "f", "d2"), D, self.PARAMS)
        assert got == enc(V, "b1", "_", "D")

    def test_too_short_returns_none(self, V):
        assert (
            rewrite_for_pivot(V, enc(V, "D"), V.id("D"), self.PARAMS) is None
        )

    def test_w_equivalence_on_paper_database(self, V, fig1_database):
        """Every rewrite is w-equivalent to its source (Lemma 3 + Sec. 4.3)."""
        params = self.PARAMS
        for seq in fig1_database:
            encoded = V.encode_sequence(seq)
            for pivot in range(5):  # a, B, b1, c, D
                original = pivot_subsequences(
                    V, encoded, params.gamma, params.lam, pivot
                )
                rewritten = rewrite_for_pivot(V, encoded, pivot, params)
                got = (
                    set()
                    if rewritten is None
                    else pivot_subsequences(
                        V, rewritten, params.gamma, params.lam, pivot
                    )
                )
                assert got == original, (seq, V.name(pivot))
