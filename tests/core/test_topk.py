"""Top-k mining (repro.core.topk)."""

from __future__ import annotations

import pytest

from repro import mine, mine_top_k
from repro.errors import InvalidParameterError


def full_output(fig1_database, fig1_hierarchy):
    return mine(fig1_database, fig1_hierarchy, sigma=1, gamma=1, lam=3)


def test_top_1_is_most_frequent(fig1_database, fig1_hierarchy):
    result = mine_top_k(fig1_database, fig1_hierarchy, k=1, gamma=1, lam=3)
    assert result.decoded() == {("a", "B"): 3}


def test_top_k_matches_full_output_head(fig1_database, fig1_hierarchy):
    """The top-k frequencies equal the k largest frequencies of a full
    σ=1 run."""
    full = full_output(fig1_database, fig1_hierarchy)
    all_freqs = sorted(full.patterns.values(), reverse=True)
    for k in (1, 3, 5, 10):
        result = mine_top_k(
            fig1_database, fig1_hierarchy, k=k, gamma=1, lam=3
        )
        got = sorted(result.patterns.values(), reverse=True)
        assert got == all_freqs[: len(got)]
        assert len(result.patterns) == min(k, len(full.patterns))


def test_top_k_subsets_nest(fig1_database, fig1_hierarchy):
    """Deterministic tie-breaking makes top-k ⊆ top-(k+1)."""
    previous: set = set()
    for k in (1, 2, 3, 5, 8):
        result = mine_top_k(
            fig1_database, fig1_hierarchy, k=k, gamma=1, lam=3
        )
        current = set(result.patterns)
        assert previous <= current
        previous = current


def test_k_larger_than_output_returns_everything(
    fig1_database, fig1_hierarchy
):
    full = full_output(fig1_database, fig1_hierarchy)
    result = mine_top_k(
        fig1_database, fig1_hierarchy, k=10_000, gamma=1, lam=3
    )
    assert result.patterns == full.patterns


def test_frequencies_are_exact(fig1_database, fig1_hierarchy):
    full = full_output(fig1_database, fig1_hierarchy)
    result = mine_top_k(fig1_database, fig1_hierarchy, k=5, gamma=1, lam=3)
    for pattern, frequency in result.patterns.items():
        assert full.patterns[pattern] == frequency


def test_flat_mining(fig1_database):
    result = mine_top_k(fig1_database, None, k=3, gamma=1, lam=3)
    assert len(result.patterns) == 3
    flat_full = mine(fig1_database, None, sigma=1, gamma=1, lam=3)
    top_freqs = sorted(flat_full.patterns.values(), reverse=True)[:3]
    assert sorted(result.patterns.values(), reverse=True) == top_freqs


def test_plain_lists_accepted():
    result = mine_top_k([["x", "y"], ["x", "y"], ["x"]], k=1, lam=2)
    assert result.decoded() == {("x", "y"): 2}


def test_empty_database():
    result = mine_top_k([["x"]], k=5, lam=3)
    assert result.patterns == {}  # no length-2 patterns exist


def test_invalid_k(fig1_database, fig1_hierarchy):
    with pytest.raises(InvalidParameterError):
        mine_top_k(fig1_database, fig1_hierarchy, k=0)


def test_algorithm_label(fig1_database, fig1_hierarchy):
    result = mine_top_k(fig1_database, fig1_hierarchy, k=3, gamma=1, lam=3)
    assert result.algorithm.startswith("top-k-lash")


def test_effective_sigma_recorded(fig1_database, fig1_hierarchy):
    """The returned params expose the threshold of the final run — every
    kept pattern meets it."""
    result = mine_top_k(fig1_database, fig1_hierarchy, k=5, gamma=1, lam=3)
    assert all(
        f >= result.params.sigma for f in result.patterns.values()
    )


@pytest.mark.parametrize("local_miner", ["bfs", "dfs"])
def test_alternative_local_miners(fig1_database, fig1_hierarchy, local_miner):
    psm = mine_top_k(fig1_database, fig1_hierarchy, k=4, gamma=1, lam=3)
    other = mine_top_k(
        fig1_database, fig1_hierarchy, k=4, gamma=1, lam=3,
        local_miner=local_miner,
    )
    assert other.patterns == psm.patterns
