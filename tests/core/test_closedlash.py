"""Direct closed/maximal mining (repro.core.closedlash).

The gold standard throughout is post-processing the full GSM output with
:func:`repro.analysis.closedmax.filter_result`; the direct algorithm must
produce the identical pattern→frequency mapping in both modes.
"""

from __future__ import annotations

import pytest

from repro import Lash, MiningParams, mine, mine_closed_direct
from repro.analysis.closedmax import filter_result
from repro.core.closedlash import (
    ClosedLash,
    ReconcileJob,
    _CAND,
    _COVER,
    cross_pivot_covers,
    prune_locally,
)
from repro.errors import InvalidParameterError
from repro.mapreduce.engine import MapReduceEngine


def reference(database, hierarchy, sigma, gamma, lam, mode):
    full = mine(database, hierarchy, sigma=sigma, gamma=gamma, lam=lam)
    return filter_result(full, mode).patterns


# ----------------------------------------------------------------------
# end-to-end agreement on the paper's running example
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["closed", "maximal"])
def test_fig1_agrees_with_posthoc(fig1_database, fig1_hierarchy, mode):
    direct = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode=mode
    )
    expected = reference(fig1_database, fig1_hierarchy, 2, 1, 3, mode)
    assert direct.patterns == expected


def test_fig1_closed_contains_maximal(fig1_database, fig1_hierarchy):
    closed = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    maximal = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="maximal"
    )
    assert set(maximal.patterns) <= set(closed.patterns)


def test_fig1_closed_subset_of_full_output(fig1_database, fig1_hierarchy):
    full = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    closed = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    for pattern, frequency in closed.patterns.items():
        assert full.patterns[pattern] == frequency


def test_fig1_known_nonclosed_pattern(fig1_database, fig1_hierarchy):
    """``Bc`` (f=2) is covered by ``aBc`` (f=2): non-closed, non-maximal."""
    closed = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    decoded = closed.decoded()
    assert ("B", "c") not in decoded
    assert ("a", "B", "c") in decoded


def test_fig1_aB_closed_but_not_maximal(fig1_database, fig1_hierarchy):
    """``aB`` (f=3) has supersequence ``aBc`` (f=2): closed, not maximal."""
    closed = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    maximal = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="maximal"
    )
    assert ("a", "B") in closed.decoded()
    assert ("a", "B") not in maximal.decoded()


def test_flat_mining_agreement(fig1_database):
    """Without a hierarchy the direct algorithm still matches post-hoc."""
    direct = mine_closed_direct(
        fig1_database, None, sigma=2, gamma=1, lam=3, mode="closed"
    )
    full = mine(fig1_database, None, sigma=2, gamma=1, lam=3)
    assert direct.patterns == filter_result(full, "closed").patterns


@pytest.mark.parametrize("mode", ["closed", "maximal"])
@pytest.mark.parametrize("gamma", [0, 2, None])
def test_gamma_sweep_agreement(fig1_database, fig1_hierarchy, mode, gamma):
    direct = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=gamma, lam=4, mode=mode
    )
    expected = reference(fig1_database, fig1_hierarchy, 2, gamma, 4, mode)
    assert direct.patterns == expected


def test_vocabulary_reuse(fig1_database, fig1_hierarchy):
    params = MiningParams(2, 1, 3)
    vocabulary, _ = Lash(params).preprocess(fig1_database, fig1_hierarchy)
    driver = ClosedLash(params, mode="maximal")
    result = driver.mine(fig1_database, vocabulary=vocabulary)
    assert result.patterns == reference(
        fig1_database, fig1_hierarchy, 2, 1, 3, "maximal"
    )
    assert result.preprocess_job is None


# ----------------------------------------------------------------------
# local pruning
# ----------------------------------------------------------------------


def _pivot_partition_output(database, hierarchy, params, pivot_name):
    """Mine one partition of the Fig. 1 example and return (patterns, voc,
    pivot id)."""
    from repro.core.partition import build_partitions
    from repro.core.psm import PivotSequenceMiner

    vocabulary, _ = Lash(params).preprocess(database, hierarchy)
    partitions = build_partitions(vocabulary, [
        vocabulary.encode_sequence(seq) for seq in database
    ], params)
    pivot = vocabulary.id(pivot_name)
    miner = PivotSequenceMiner(vocabulary, params)
    return miner.mine_partition(partitions[pivot], pivot), vocabulary, pivot


def test_prune_locally_drops_prefix_witnessed(
    fig1_database, fig1_hierarchy
):
    """In partition ``P_c``: ``Bc`` and ``ac`` are witnessed by ``aBc``
    only through prepends that stay in the same partition."""
    params = MiningParams(2, 1, 3)
    mined, vocabulary, _ = _pivot_partition_output(
        fig1_database, fig1_hierarchy, params, "c"
    )
    decoded = {
        vocabulary.decode_sequence(p): f for p, f in mined.items()
    }
    assert decoded == {("a", "B", "c"): 2, ("B", "c"): 2, ("a", "c"): 2}
    survivors = prune_locally(mined, vocabulary, "closed")
    rendered = {vocabulary.decode_sequence(p) for p in survivors}
    # Bc (f=2) covered by aBc (f=2) -> pruned; ac (f=2) covered by aBc? No:
    # ac is not an atomic neighbor of aBc (aBc drops to Bc or aB, and no
    # one-step specialization of ac yields aBc) -> survives locally.
    assert ("B", "c") not in rendered
    assert ("a", "B", "c") in rendered
    assert ("a", "c") in rendered


def test_prune_locally_maximal_strictness(fig1_database, fig1_hierarchy):
    """Maximal pruning also removes patterns with lower-frequency
    witnesses."""
    params = MiningParams(2, 1, 3)
    mined, vocabulary, _ = _pivot_partition_output(
        fig1_database, fig1_hierarchy, params, "B"
    )
    closed_survivors = prune_locally(mined, vocabulary, "closed")
    maximal_survivors = prune_locally(mined, vocabulary, "maximal")
    assert set(maximal_survivors) <= set(closed_survivors)
    # aB (f=3) is witnessed by aBc only in partition c — both survive here.
    assert vocabulary.encode_sequence(("a", "B")) in maximal_survivors


def test_prune_locally_specialization_witness():
    """A same-partition one-step specialization with equal frequency kills
    closedness."""
    from repro.hierarchy import Hierarchy, build_vocabulary
    from repro.sequence import SequenceDatabase

    h = Hierarchy()
    h.add_item("A")
    h.add_item("a1", "A")
    db = SequenceDatabase([["a1", "a1"], ["a1", "a1"]])
    vocabulary = build_vocabulary(db, h)
    # Patterns over ids: A < a1 in the order.
    A, a1 = vocabulary.id("A"), vocabulary.id("a1")
    # partition of pivot a1 mines both (a1, a1) and, e.g., (A, a1)
    patterns = {(a1, a1): 2, (A, a1): 2, (a1, A): 2}
    survivors = prune_locally(patterns, vocabulary, "closed")
    # (A, a1) specializes one step to (a1, a1) with equal frequency: pruned.
    assert (A, a1) not in survivors
    assert (a1, A) not in survivors
    assert (a1, a1) in survivors


def test_prune_locally_rejects_bad_mode(fig1_vocabulary):
    with pytest.raises(InvalidParameterError):
        prune_locally({}, fig1_vocabulary, "open")


# ----------------------------------------------------------------------
# cross-pivot cover emission
# ----------------------------------------------------------------------


def test_cross_pivot_covers_only_smaller_pivots(fig1_database, fig1_hierarchy):
    params = MiningParams(2, 1, 3)
    mined, vocabulary, pivot = _pivot_partition_output(
        fig1_database, fig1_hierarchy, params, "c"
    )
    for covered, frequency in cross_pivot_covers(mined, vocabulary, pivot):
        assert max(covered) < pivot
        assert frequency >= params.sigma


def test_cross_pivot_covers_drop_and_generalize():
    """Hand-checked cover set for one pattern."""
    from repro.hierarchy import Hierarchy, build_vocabulary
    from repro.sequence import SequenceDatabase

    h = Hierarchy()
    h.add_item("A")
    h.add_item("a1", "A")
    h.add_item("x")
    db = SequenceDatabase([["x", "a1"], ["x", "A"], ["x"]])
    vocabulary = build_vocabulary(db, h)
    x, A, a1 = vocabulary.id("x"), vocabulary.id("A"), vocabulary.id("a1")
    assert a1 > x and a1 > A  # a1 is the largest item (least frequent)
    patterns = {(x, a1): 1}
    covers = set(cross_pivot_covers(patterns, vocabulary, a1))
    # drops leave the universe (length 1); generalizing a1 -> A lowers the
    # pivot to max(x, A).
    assert covers == {((x, A), 1)}


def test_cover_emission_includes_pruned_patterns():
    """Covers are emitted for *all* mined patterns, not only survivors —
    otherwise a pattern pruned in its own partition could stop witnessing
    a smaller-pivot pattern."""
    from repro.hierarchy import Hierarchy, build_vocabulary
    from repro.sequence import SequenceDatabase

    h = Hierarchy()
    h.add_item("x")
    h.add_item("y")
    db = SequenceDatabase([["x", "x", "y", "y"]] * 3 + [["x"]])
    vocabulary = build_vocabulary(db, h)
    x, y = vocabulary.id("x"), vocabulary.id("y")
    assert x < y
    # partition of pivot y: (x,x,y) is pruned (witnessed by its append
    # extension (x,x,y,y)) but is itself the only witness of (x,x), which
    # lives in partition x.
    mined = {(x, x, y): 3, (x, x, y, y): 3}
    survivors = prune_locally(mined, vocabulary, "maximal")
    assert set(survivors) == {(x, x, y, y)}
    covered_by_all = set(cross_pivot_covers(mined, vocabulary, y))
    covered_by_survivors = set(
        cross_pivot_covers(survivors, vocabulary, y)
    )
    assert ((x, x), 3) in covered_by_all
    assert covered_by_survivors < covered_by_all


# ----------------------------------------------------------------------
# reconciliation job
# ----------------------------------------------------------------------


def _run_reconcile(records, mode):
    engine = MapReduceEngine(num_map_tasks=2, num_reduce_tasks=2)
    return dict(engine.run(ReconcileJob(mode), records).output)


def test_reconcile_maximal_drops_covered():
    records = [
        ((1, 2), (_CAND, 5)),
        ((1, 2), (_COVER, 3)),
        ((2, 2), (_CAND, 4)),
    ]
    assert _run_reconcile(records, "maximal") == {(2, 2): 4}


def test_reconcile_closed_keeps_strictly_higher():
    records = [
        ((1, 2), (_CAND, 5)),
        ((1, 2), (_COVER, 3)),  # strictly lower: closed
        ((2, 2), (_CAND, 4)),
        ((2, 2), (_COVER, 4)),  # equal: not closed
    ]
    assert _run_reconcile(records, "closed") == {(1, 2): 5}


def test_reconcile_cover_without_candidate_is_dropped():
    records = [((9, 9), (_COVER, 7))]
    assert _run_reconcile(records, "closed") == {}


def test_reconcile_combiner_reduces_cover_traffic():
    """The combiner folds covers to their maximum without changing the
    answer."""
    records = [((1, 2), (_COVER, f)) for f in (1, 2, 3)] + [
        ((1, 2), (_CAND, 3))
    ]
    # equal max cover -> not closed, covered -> not maximal
    assert _run_reconcile(records, "closed") == {}
    assert _run_reconcile(records, "maximal") == {}
    records[-1] = ((1, 2), (_CAND, 9))
    assert _run_reconcile(records, "closed") == {(1, 2): 9}


# ----------------------------------------------------------------------
# driver-level details
# ----------------------------------------------------------------------


def test_invalid_mode_rejected():
    with pytest.raises(InvalidParameterError):
        ClosedLash(MiningParams(2, 1, 3), mode="semi-closed")
    with pytest.raises(InvalidParameterError):
        mine_closed_direct([["a", "b"]], None, mode="")


def test_result_metadata(fig1_database, fig1_hierarchy):
    result = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    assert result.algorithm == "closed-lash[closed,psm]"
    assert result.reconcile_job is not None
    assert result.mining_job is not None
    # merged metrics include all three jobs' task times
    merged = result.total_metrics()
    assert len(merged.map_task_s) >= len(result.metrics.map_task_s)


def test_reconcile_shuffle_smaller_than_mining_shuffle(
    fig1_database, fig1_hierarchy
):
    """The reconciliation job ships candidates+covers, which is far less
    than the rewritten-sequence shuffle of the mining job."""
    result = mine_closed_direct(
        fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3, mode="closed"
    )
    from repro.mapreduce.counters import C

    mining_bytes = result.mining_job.counters[C.SHUFFLE_BYTES]
    reconcile_bytes = result.reconcile_job.counters[C.SHUFFLE_BYTES]
    assert 0 < reconcile_bytes < mining_bytes


@pytest.mark.parametrize("local_miner", ["psm", "bfs", "dfs", "brute"])
def test_any_local_miner(fig1_database, fig1_hierarchy, local_miner):
    direct = mine_closed_direct(
        fig1_database,
        fig1_hierarchy,
        sigma=2,
        gamma=1,
        lam=3,
        mode="maximal",
        local_miner=local_miner,
    )
    assert direct.patterns == reference(
        fig1_database, fig1_hierarchy, 2, 1, 3, "maximal"
    )
