"""Tests for partition size/skew/replication statistics."""

import pytest

from repro import MiningParams
from repro.core import (
    NO_REWRITE,
    build_partitions,
    partition_statistics,
    replication_factor,
)
from repro.hierarchy import build_vocabulary


@pytest.fixture
def fig1_partitions(fig1_database, fig1_hierarchy):
    vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
    params = MiningParams(2, 1, 3)
    encoded = [vocabulary.encode_sequence(t) for t in fig1_database]
    return vocabulary, encoded, build_partitions(vocabulary, encoded, params)


class TestPartitionStatistics:
    def test_counts_on_paper_partitions(self, fig1_partitions):
        _, _, partitions = fig1_partitions
        stats = partition_statistics(partitions)
        # Fig. 2: partitions P_a, P_B, P_b1, P_c, P_D
        assert stats.num_partitions == 5
        assert stats.distinct_sequences <= stats.total_sequences
        assert stats.total_items > 0
        assert stats.max_partition_items <= stats.total_items

    def test_aggregation_counted_in_weights(self, fig1_partitions):
        """P_a = {a_a: 2}: one distinct sequence of weight 2 (Fig. 2)."""
        vocabulary, _, partitions = fig1_partitions
        p_a = partitions[vocabulary.id("a")]
        assert sum(p_a.values()) == 2
        assert len(p_a) == 1

    def test_imbalance_and_share_bounds(self, fig1_partitions):
        _, _, partitions = fig1_partitions
        stats = partition_statistics(partitions)
        assert stats.imbalance >= 1.0
        assert 0.0 < stats.max_share <= 1.0
        assert stats.max_share >= 1.0 / stats.num_partitions

    def test_empty(self):
        stats = partition_statistics({})
        assert stats.num_partitions == 0
        assert stats.imbalance == 0.0
        assert stats.max_share == 0.0

    def test_row_rendering(self, fig1_partitions):
        _, _, partitions = fig1_partitions
        row = partition_statistics(partitions).row()
        assert row["Partitions"] == 5
        assert "Imbalance" in row


class TestReplicationFactor:
    def test_rewrites_reduce_replication_volume(
        self, fig1_database, fig1_hierarchy
    ):
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        params = MiningParams(2, 1, 3)
        encoded = [vocabulary.encode_sequence(t) for t in fig1_database]
        full = build_partitions(vocabulary, encoded, params)
        bare = build_partitions(vocabulary, encoded, params, NO_REWRITE)
        assert (
            partition_statistics(full).total_items
            < partition_statistics(bare).total_items
        )
        # replication factor counts copies; rewrites can only lower it
        assert replication_factor(full, len(encoded)) <= (
            replication_factor(bare, len(encoded))
        )

    def test_zero_inputs(self):
        assert replication_factor({}, 0) == 0.0
