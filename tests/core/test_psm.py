"""Unit tests for the pivot sequence miner — pinned to Sec. 5.2 / Fig. 3."""

import pytest

from repro.constants import BLANK
from repro.core import MiningParams, PivotSequenceMiner
from repro.core.psm import mine_partitions
from repro.miners import BfsMiner, BruteForceMiner, DfsMiner


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) if n != "_" else BLANK for n in names)


@pytest.fixture
def eq4_partition(V):
    """The example partition P_D of Eq. (4): σ=2, γ=1, λ=4."""
    return {
        enc(V, "a", "D", "D", "a"): 1,
        enc(V, "c", "a", "b1", "D"): 1,
        enc(V, "c", "a", "_", "D", "B"): 1,
        enc(V, "B", "a", "a", "D", "b1", "c"): 1,
    }


EQ4_PARAMS = MiningParams(sigma=2, gamma=1, lam=4)


def decode(V, mined):
    return {tuple(V.name(i) for i in seq): f for seq, f in mined.items()}


class TestEq4Partition:
    """All miners agree on P_D; search-space sizes follow the paper."""

    EXPECTED = {
        ("a", "D"): 4,
        ("D", "B"): 2,
        ("c", "a", "D"): 2,
        ("a", "D", "B"): 2,
    }

    @pytest.mark.parametrize("index_mode", ["exact", "level", "none"])
    def test_psm_output(self, V, eq4_partition, index_mode):
        miner = PivotSequenceMiner(V, EQ4_PARAMS, index_mode=index_mode)
        got = miner.mine_partition(eq4_partition, V.id("D"))
        assert decode(V, got) == self.EXPECTED

    def test_dfs_explores_exactly_37(self, V, eq4_partition):
        """Paper Sec. 5.2: DFS evaluates 5 items + 17 + 13 + 2 = 37."""
        miner = DfsMiner(V, EQ4_PARAMS)
        got = miner.mine_partition(eq4_partition, V.id("D"))
        assert decode(V, got) == self.EXPECTED
        assert miner.stats.candidates == 37

    def test_psm_explores_far_fewer_than_dfs(self, V, eq4_partition):
        """Paper: PSM explores roughly a third of the DFS search space."""
        psm = PivotSequenceMiner(V, EQ4_PARAMS, index_mode="none")
        psm.mine_partition(eq4_partition, V.id("D"))
        dfs = DfsMiner(V, EQ4_PARAMS)
        dfs.mine_partition(eq4_partition, V.id("D"))
        assert psm.stats.candidates < dfs.stats.candidates / 1.5

    def test_index_prunes_search_space(self, V, eq4_partition):
        """Fig. 3: Da infrequent ⇒ aDa never evaluated with the index."""
        plain = PivotSequenceMiner(V, EQ4_PARAMS, index_mode="none")
        plain.mine_partition(eq4_partition, V.id("D"))
        indexed = PivotSequenceMiner(V, EQ4_PARAMS, index_mode="exact")
        indexed.mine_partition(eq4_partition, V.id("D"))
        assert indexed.stats.candidates < plain.stats.candidates

    def test_exact_exploration_counts(self, V, eq4_partition):
        """Regression anchors (hand-derived from the Fig. 3 trace):
        no index explores 18 candidates, exact/level index 14."""
        for mode, expected in [("none", 18), ("exact", 14), ("level", 14)]:
            miner = PivotSequenceMiner(V, EQ4_PARAMS, index_mode=mode)
            miner.mine_partition(eq4_partition, V.id("D"))
            assert miner.stats.candidates == expected, mode

    def test_bfs_and_brute_agree(self, V, eq4_partition):
        for miner in (BfsMiner(V, EQ4_PARAMS), BruteForceMiner(V, EQ4_PARAMS)):
            got = miner.mine_partition(eq4_partition, V.id("D"))
            assert decode(V, got) == self.EXPECTED


class TestPsmMechanics:
    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    def test_empty_partition(self, V):
        miner = PivotSequenceMiner(V, self.PARAMS)
        assert miner.mine_partition({}, V.id("D")) == {}

    def test_pivot_below_sigma_short_circuits(self, V):
        miner = PivotSequenceMiner(V, self.PARAMS)
        partition = {enc(V, "a", "D"): 1}
        assert miner.mine_partition(partition, V.id("D")) == {}
        assert miner.stats.candidates == 0

    def test_weights_counted(self, V):
        miner = PivotSequenceMiner(V, self.PARAMS)
        partition = {enc(V, "a", "D"): 5}
        got = miner.mine_partition(partition, V.id("D"))
        assert decode(V, got) == {("a", "D"): 5}

    def test_pivot_never_right_expanded(self, V):
        """DD is mined via left-expansion; aDDa-style inputs still work."""
        params = MiningParams(sigma=2, gamma=1, lam=4)
        miner = PivotSequenceMiner(V, params)
        partition = {enc(V, "D", "D"): 2}
        got = miner.mine_partition(partition, V.id("D"))
        assert decode(V, got) == {("D", "D"): 2}

    def test_lambda_bounds_length(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        miner = PivotSequenceMiner(V, params)
        partition = {enc(V, "a", "a", "D"): 1}
        got = miner.mine_partition(partition, V.id("D"))
        assert all(len(seq) <= 2 for seq in got)

    def test_blanks_respected(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        miner = PivotSequenceMiner(V, params)
        partition = {enc(V, "a", "_", "D"): 1}
        got = miner.mine_partition(partition, V.id("D"))
        assert got == {}  # blank blocks the γ=0 window

    def test_hierarchy_matches_in_partition(self, V):
        """Pattern Bc is found in 'a b1 _ c' via b1 →* B (Fig. 2, P_c)."""
        params = MiningParams(sigma=1, gamma=1, lam=3)
        miner = PivotSequenceMiner(V, params)
        partition = {enc(V, "a", "b1", "_", "c"): 1}
        got = decode(V, miner.mine_partition(partition, V.id("c")))
        assert got[("B", "c")] == 1
        assert got[("a", "B", "c")] == 1

    def test_invalid_index_mode(self, V):
        with pytest.raises(ValueError):
            PivotSequenceMiner(V, self.PARAMS, index_mode="bogus")

    def test_no_pivot_occurrence(self, V):
        miner = PivotSequenceMiner(V, self.PARAMS)
        partition = {enc(V, "a", "c"): 5}
        assert miner.mine_partition(partition, V.id("D")) == {}


class TestFig2Mining:
    """Per-partition outputs of Fig. 2 (σ=2, γ=1, λ=3)."""

    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    @pytest.mark.parametrize(
        "pivot,partition,expected",
        [
            ("a", {("a", "_", "a"): 2}, {("a", "a"): 2}),
            (
                "B",
                {
                    ("a", "B", "a", "B"): 1,
                    ("a", "B"): 2,
                    ("B", "a", "_", "a"): 1,
                },
                {("a", "B"): 3, ("B", "a"): 2},
            ),
            (
                "b1",
                {
                    ("a", "b1", "a", "b1"): 1,
                    ("b1", "a", "_", "a"): 1,
                    ("a", "b1"): 1,
                },
                {("a", "b1"): 2, ("b1", "a"): 2},
            ),
            (
                "c",
                {
                    ("a", "B", "c", "c", "B"): 1,
                    ("a", "c"): 1,
                    ("a", "b1", "_", "c"): 1,
                },
                {("B", "c"): 2, ("a", "c"): 2, ("a", "B", "c"): 2},
            ),
            (
                "D",
                {("a", "b1", "D", "c"): 1, ("b1", "_", "D"): 1},
                {("b1", "D"): 2, ("B", "D"): 2},
            ),
        ],
    )
    def test_partition_output(self, V, pivot, partition, expected):
        encoded = {
            enc(V, *names): weight for names, weight in partition.items()
        }
        miner = PivotSequenceMiner(V, self.PARAMS)
        got = miner.mine_partition(encoded, V.id(pivot))
        assert decode(V, got) == expected


class TestMinePartitions:
    def test_union(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        miner = PivotSequenceMiner(V, params)
        partitions = {
            V.id("a"): {enc(V, "a", "a"): 1},
            V.id("c"): {enc(V, "a", "c"): 1},
        }
        got = decode(V, mine_partitions(miner, partitions))
        assert got == {("a", "a"): 1, ("a", "c"): 1}
