"""Unit tests for MiningParams validation."""

import pytest

from repro.core import MiningParams
from repro.errors import InvalidParameterError


class TestValidation:
    def test_valid(self):
        p = MiningParams(sigma=2, gamma=1, lam=3)
        assert (p.sigma, p.gamma, p.lam) == (2, 1, 3)

    def test_unbounded_gap(self):
        p = MiningParams(sigma=1, gamma=None, lam=2)
        assert p.unbounded_gap
        assert not MiningParams(1, 0, 2).unbounded_gap

    @pytest.mark.parametrize("sigma", [0, -1, 1.5, "2"])
    def test_bad_sigma(self, sigma):
        with pytest.raises(InvalidParameterError):
            MiningParams(sigma=sigma, gamma=0, lam=2)

    @pytest.mark.parametrize("gamma", [-1, 0.5, "0"])
    def test_bad_gamma(self, gamma):
        with pytest.raises(InvalidParameterError):
            MiningParams(sigma=1, gamma=gamma, lam=2)

    @pytest.mark.parametrize("lam", [1, 0, -3, 2.0])
    def test_bad_lam(self, lam):
        with pytest.raises(InvalidParameterError):
            MiningParams(sigma=1, gamma=0, lam=lam)

    def test_gamma_zero_allowed(self):
        assert MiningParams(1, 0, 2).gamma == 0

    def test_frozen(self):
        p = MiningParams(1, 0, 2)
        with pytest.raises(AttributeError):
            p.sigma = 5  # type: ignore[misc]

    def test_describe(self):
        assert MiningParams(2, 1, 3).describe() == "(sigma=2, gamma=1, lambda=3)"
        assert "inf" in MiningParams(2, None, 3).describe()
