"""Unit tests for MiningResult."""

import pytest

from repro.core import MiningParams
from repro.core.lash import mine
from repro.mapreduce import ClusterSpec
from repro.core.result import MiningResult


@pytest.fixture
def result(fig1_database, fig1_hierarchy):
    return mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)


class TestAccess:
    def test_len(self, result):
        assert len(result) == 10

    def test_iter(self, result):
        assert all(isinstance(seq, tuple) for seq in result)

    def test_decoded_keys_are_names(self, result):
        assert ("a", "B") in result.decoded()

    def test_top_sorted_by_frequency(self, result):
        top = result.top(3)
        assert top[0] == ("a B", 3)
        assert len(top) == 3
        freqs = [f for _, f in result.top(100)]
        assert freqs == sorted(freqs, reverse=True)

    def test_to_file(self, result, tmp_path):
        path = tmp_path / "patterns.tsv"
        result.to_file(path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 10
        assert lines[0] == "a B\t3"


class TestMeasurements:
    def test_cluster_times(self, result):
        serial = result.phase_times()
        parallel = result.cluster_times(ClusterSpec(nodes=10))
        assert parallel.map_s <= serial.map_s
        assert parallel.total_s > 0

    def test_empty_result_defaults(self, result):
        empty = MiningResult(
            patterns={}, vocabulary=result.vocabulary,
            params=MiningParams(1, 0, 2),
        )
        assert empty.counters["MAP_OUTPUT_BYTES"] == 0
        assert empty.phase_times().total_s == 0
        assert empty.total_metrics().map_task_s == []
