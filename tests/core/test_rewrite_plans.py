"""Rewrite-plan ablation tests: every stage combination is w-equivalent."""

from itertools import product

import pytest
from hypothesis import given, settings

from repro import Lash, MiningParams
from repro.core import NO_REWRITE, RewritePlan, build_partitions
from repro.hierarchy import build_vocabulary
from tests.property.strategies import mining_instances

ALL_PLANS = [
    RewritePlan(*flags) for flags in product((False, True), repeat=4)
]


class TestRewritePlanBasics:
    def test_describe(self):
        assert RewritePlan().describe() == "gen+iso+unreach+compress"
        assert NO_REWRITE.describe() == "none"
        assert RewritePlan(True, False, False, False).describe() == "gen"

    def test_no_rewrite_keeps_input(self, fig1_database, fig1_hierarchy):
        """Without rewrites, P_w(T) = T for sequences containing the pivot
        (Sec. 3.4's 'simple and correct' strategy, Eq. (1))."""
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        params = MiningParams(2, 1, 3)
        encoded = [vocabulary.encode_sequence(t) for t in fig1_database]
        partitions = build_partitions(vocabulary, encoded, params, NO_REWRITE)
        pivot_b = vocabulary.id("B")
        expected = {
            vocabulary.encode_sequence(t)
            for t in [
                ("a", "b1", "a", "b1"),
                ("a", "b3", "c", "c", "b2"),
                ("b11", "a", "e", "a"),
                ("a", "b12", "d1", "c"),
                ("b13", "f", "d2"),
            ]
        }
        assert set(partitions[pivot_b]) == expected

    def test_full_rewrite_is_smaller(self, fig1_database, fig1_hierarchy):
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        params = MiningParams(2, 1, 3)
        encoded = [vocabulary.encode_sequence(t) for t in fig1_database]
        full = build_partitions(vocabulary, encoded, params)
        bare = build_partitions(vocabulary, encoded, params, NO_REWRITE)

        def size(partitions):
            return sum(
                len(seq) * weight
                for p in partitions.values()
                for seq, weight in p.items()
            )

        assert size(full) < size(bare)


class TestPlanInvariance:
    @pytest.mark.parametrize("plan", ALL_PLANS, ids=lambda p: p.describe())
    def test_paper_example_all_plans(self, fig1_database, fig1_hierarchy, plan):
        params = MiningParams(2, 1, 3)
        result = Lash(params, rewrite_plan=plan).mine(
            fig1_database, fig1_hierarchy
        )
        expected = {
            ("a", "a"): 2, ("a", "b1"): 2, ("b1", "a"): 2, ("a", "B"): 3,
            ("B", "a"): 2, ("a", "B", "c"): 2, ("B", "c"): 2, ("a", "c"): 2,
            ("b1", "D"): 2, ("B", "D"): 2,
        }
        assert result.decoded() == expected


@settings(max_examples=20, deadline=None)
@given(mining_instances())
def test_all_plans_agree_on_random_instances(instance):
    """The ablation knob must never change the mined answer."""
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    reference = None
    for plan in (
        RewritePlan(),
        NO_REWRITE,
        RewritePlan(True, False, False, True),
        RewritePlan(False, True, True, False),
    ):
        result = Lash(params, rewrite_plan=plan).mine(database, hierarchy)
        if reference is None:
            reference = result.decoded()
        else:
            assert result.decoded() == reference, plan.describe()
