"""Unit tests for partition construction — pinned to Fig. 2."""

import pytest

from repro.constants import BLANK
from repro.core import MiningParams, build_partitions, frequent_pivots
from repro.core.partition import aggregate, merge_weighted, partition_emissions


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


@pytest.fixture
def params():
    return MiningParams(sigma=2, gamma=1, lam=3)


def enc(V, *names):
    return tuple(V.id(n) if n != "_" else BLANK for n in names)


def render_partition(V, partition):
    return {V.render(seq): weight for seq, weight in partition.items()}


class TestFrequentPivots:
    def test_t1_pivots(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        got = frequent_pivots(V, t1, sigma=2)
        assert [V.name(i) for i in got] == ["a", "B", "b1"]

    def test_t6_pivots_via_generalization(self, V):
        """T6 = b13 f d2 feeds P_B, P_b1, P_D although none occur directly."""
        t6 = enc(V, "b13", "f", "d2")
        got = frequent_pivots(V, t6, sigma=2)
        assert [V.name(i) for i in got] == ["B", "b1", "D"]

    def test_high_sigma_drops_everything(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        assert frequent_pivots(V, t1, sigma=100) == []


class TestEmissions:
    def test_t5_emissions(self, V, params):
        """T5 = a b12 d1 c feeds P_B, P_b1, P_c, P_D; its pivot-a rewrite
        collapses to an isolated pivot and is dropped (cf. Fig. 2: P_a only
        holds rewrites of T1 and T4)."""
        t5 = enc(V, "a", "b12", "d1", "c")
        got = {
            V.name(pivot): V.render(seq)
            for pivot, seq in partition_emissions(V, t5, params)
        }
        assert got == {
            "B": "a B",
            "b1": "a b1",
            "c": "a b1 _ c",
            "D": "a b1 D c",
        }


class TestFig2Partitions:
    """The exact partitions of Fig. 2 (σ=2, γ=1, λ=3)."""

    @pytest.fixture
    def partitions(self, V, params, fig1_database):
        encoded = [V.encode_sequence(t) for t in fig1_database]
        return build_partitions(V, encoded, params)

    def test_partition_keys(self, V, partitions):
        assert sorted(V.name(p) for p in partitions) == sorted(
            ["a", "B", "b1", "c", "D"]
        )

    def test_pa(self, V, partitions):
        assert render_partition(V, partitions[V.id("a")]) == {"a _ a": 2}

    def test_pB(self, V, partitions):
        assert render_partition(V, partitions[V.id("B")]) == {
            "a B a B": 1,
            "a B": 2,
            "B a _ a": 1,
        }

    def test_pb1(self, V, partitions):
        assert render_partition(V, partitions[V.id("b1")]) == {
            "a b1 a b1": 1,
            "b1 a _ a": 1,
            "a b1": 1,
        }

    def test_pc(self, V, partitions):
        assert render_partition(V, partitions[V.id("c")]) == {
            "a B c c B": 1,
            "a c": 1,
            "a b1 _ c": 1,
        }

    def test_pD(self, V, partitions):
        assert render_partition(V, partitions[V.id("D")]) == {
            "a b1 D c": 1,
            "b1 _ D": 1,
        }


class TestAggregation:
    def test_aggregate(self):
        got = aggregate([(1, 2), (1, 2), (3,)])
        assert got == {(1, 2): 2, (3,): 1}

    def test_merge_weighted(self):
        got = merge_weighted([((1,), 2), ((1,), 3), ((2,), 1)])
        assert got == {(1,): 5, (2,): 1}

    def test_empty(self):
        assert aggregate([]) == {}
        assert merge_weighted([]) == {}
