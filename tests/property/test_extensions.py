"""Property tests for the extension modules (query, interestingness,
direct closed mining helpers)."""

from __future__ import annotations

from math import inf

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Lash, MiningParams, PatternIndex
from repro.analysis.interestingness import (
    lift_scores,
    r_interest_scores,
    r_interesting_patterns,
)
from repro.query.tokens import (
    AnyToken,
    ItemToken,
    PlusToken,
    SpanToken,
    UnderToken,
)
from tests.property.strategies import mining_instances

SETTINGS = settings(max_examples=30, deadline=None)


def _mined_index(instance):
    hierarchy, database, sigma, gamma, lam = instance
    result = Lash(MiningParams(sigma, gamma, lam)).mine(database, hierarchy)
    return result, PatternIndex.from_result(result)


@st.composite
def queries_over(draw, names: list[str], max_tokens: int = 4):
    n = draw(st.integers(1, max_tokens))
    tokens = []
    for _ in range(n):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            tokens.append(ItemToken(draw(st.sampled_from(names))))
        elif kind == 1:
            tokens.append(UnderToken(draw(st.sampled_from(names))))
        elif kind == 2:
            tokens.append(AnyToken())
        elif kind == 3:
            tokens.append(PlusToken())
        else:
            tokens.append(SpanToken())
    return tuple(tokens)


def _reference_match(tokens, pattern, vocabulary):
    if not tokens:
        return not pattern
    head, rest = tokens[0], tokens[1:]
    if isinstance(head, SpanToken):
        return any(
            _reference_match(rest, pattern[k:], vocabulary)
            for k in range(len(pattern) + 1)
        )
    if isinstance(head, PlusToken):
        return any(
            _reference_match(rest, pattern[k:], vocabulary)
            for k in range(1, len(pattern) + 1)
        )
    if not pattern:
        return False
    item = pattern[0]
    if isinstance(head, AnyToken):
        ok = True
    elif isinstance(head, ItemToken):
        ok = item == vocabulary.id(head.name)
    else:
        ok = vocabulary.generalizes_to(item, vocabulary.id(head.name))
    return ok and _reference_match(rest, pattern[1:], vocabulary)


@SETTINGS
@given(st.data(), mining_instances())
def test_index_search_matches_reference(data, instance):
    """The DP matcher + postings pruning equals brute-force matching."""
    result, index = _mined_index(instance)
    names = [
        result.vocabulary.name(i) for i in range(len(result.vocabulary))
    ]
    tokens = data.draw(queries_over(names))
    expected = {
        pattern
        for pattern in result.patterns
        if _reference_match(tokens, pattern, result.vocabulary)
    }
    got = {
        result.vocabulary.encode_sequence(m.pattern)
        for m in index.search(tokens)
    }
    assert got == expected


@SETTINGS
@given(mining_instances())
def test_index_star_matches_everything(instance):
    result, index = _mined_index(instance)
    assert len(index.search(SpanToken())) == len(result.patterns)


@SETTINGS
@given(mining_instances())
def test_generalizations_specializations_are_inverse(instance):
    """P ∈ specializations(S) ⟺ S ∈ generalizations(P) over the output."""
    result, index = _mined_index(instance)
    decoded = list(result.decoded())
    for names in decoded[:10]:
        for match in index.specializations_of(names):
            back = {
                m.pattern for m in index.generalizations_of(match.pattern)
            }
            assert names in back


@SETTINGS
@given(mining_instances())
def test_r_interest_scores_are_positive(instance):
    hierarchy, database, sigma, gamma, lam = instance
    result = Lash(MiningParams(sigma, gamma, lam)).mine(database, hierarchy)
    scores = r_interest_scores(result.patterns, result.vocabulary)
    assert set(scores) == set(result.patterns)
    assert all(s > 0 for s in scores.values())


@SETTINGS
@given(mining_instances())
def test_r_interesting_monotone_in_r(instance):
    """Raising R can only shrink the interesting set; R→0 keeps all."""
    hierarchy, database, sigma, gamma, lam = instance
    result = Lash(MiningParams(sigma, gamma, lam)).mine(database, hierarchy)
    previous = set(result.patterns)
    for r in (1e-9, 0.5, 1.0, 2.0, 10.0):
        kept = set(
            r_interesting_patterns(result.patterns, result.vocabulary, r)
        )
        assert kept <= previous
        previous = kept
    assert set(
        r_interesting_patterns(result.patterns, result.vocabulary, 1e-9)
    ) == set(result.patterns)


@SETTINGS
@given(mining_instances())
def test_flat_vocabulary_scores_all_inf(instance):
    """Without hierarchy edges no pattern has a generalization: every
    R-interest score is ∞ and every pattern is R-interesting."""
    _, database, sigma, gamma, lam = instance
    result = Lash(MiningParams(sigma, gamma, lam)).mine(database)
    scores = r_interest_scores(result.patterns, result.vocabulary)
    assert all(s == inf for s in scores.values())


@SETTINGS
@given(mining_instances(), st.integers(1, 100))
def test_lift_scale(instance, num_sequences):
    """Lift is linear in the assumed database size for 2-item patterns:
    doubling N doubles the independence-expected denominator once per
    extra item beyond the first."""
    hierarchy, database, sigma, gamma, lam = instance
    result = Lash(MiningParams(sigma, gamma, lam)).mine(database, hierarchy)
    if not result.patterns:
        return
    base = lift_scores(result.patterns, result.vocabulary, num_sequences)
    doubled = lift_scores(
        result.patterns, result.vocabulary, 2 * num_sequences
    )
    for pattern, score in base.items():
        factor = 2 ** (len(pattern) - 1)
        assert abs(doubled[pattern] - factor * score) <= 1e-9 * max(
            1.0, abs(score)
        )


@SETTINGS
@given(mining_instances())
def test_external_shuffle_equals_memory_shuffle(tmp_path_factory, instance):
    """Spilling through disk never changes the mined answer."""
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    memory = Lash(params).mine(database, hierarchy)
    spill_dir = tmp_path_factory.mktemp("spills")
    spilled = Lash(params, spill_dir=spill_dir).mine(database, hierarchy)
    assert spilled.decoded() == memory.decoded()


@SETTINGS
@given(mining_instances(), st.integers(1, 12))
def test_top_k_equals_full_output_head(instance, k):
    """mine_top_k returns exactly the deterministic k-head of a σ=1 run."""
    from repro import mine_top_k

    hierarchy, database, _, gamma, lam = instance
    full = Lash(MiningParams(1, gamma, lam)).mine(database, hierarchy)
    result = mine_top_k(database, hierarchy, k=k, gamma=gamma, lam=lam)
    ranked = sorted(
        full.patterns.items(),
        key=lambda kv: (-kv[1], full.vocabulary.decode_sequence(kv[0])),
    )
    expected = dict(ranked[:k])
    got = {
        full.vocabulary.decode_sequence(p): f
        for p, f in result.patterns.items()
    }
    assert got == {
        full.vocabulary.decode_sequence(p): f for p, f in expected.items()
    }
