"""Differential fuzzing of the live-ingestion update phase.

The update-phase discipline mirrors the query differential suite: random
interleavings of the three live operations — ``ingest add`` (journal a
batch, publish its increment delta), ``ingest retire`` (publish a
decrement delta for the oldest retained window) and a compaction cycle
(fold every pending delta into the live shard set, swap the manifest) —
are checked after every compaction against the naive oracle: a **full
re-mine of the retained corpus** at σ=1.  The comparison is maximal:

* the ranked ``(pattern, frequency)`` listing of the live store must
  equal the oracle's store listing entry for entry, and
* the live shard files must be **byte-identical** to a fresh build of
  the oracle's mining result over the same shard count — the paper's
  additivity of document support and of the generalized f-list, pushed
  all the way down to the bytes;
* every ``/query``-level answer carries the freshness watermarks
  (``ingested_through`` / ``retained_from``) matching exactly what has
  been journaled and retired at that point.

``LASH_INGEST_SEED`` reseeds the generator (CI runs the fixed default
plus one randomized seed per build) and ``LASH_INGEST_RUNS`` scales the
number of random interleavings.  Failures carry the seed/run/op-trace
context, and when ``LASH_INGEST_ARTIFACT_DIR`` is set a failing run
writes a replay bundle (corpus, hierarchy, op trace, replay command)
for CI to upload.

A companion property holds the decrement-aware ``merge_stores`` to the
same standard: folding any arrival order or grouping of signed deltas
produces the same bytes, and patterns whose summed support crosses
below σ=1 are dropped exactly as a re-mine would drop them.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

from repro import Hierarchy, Lash, MiningParams, SequenceDatabase
from repro.core.lash import micro_mine
from repro.query.build import negate_vocabulary
from repro.serve import (
    CompactionDaemon,
    Ingestor,
    QueryService,
    merge_stores,
    open_store,
    write_store,
)
from repro.serve.format import read_manifest

SEED = int(os.environ.get("LASH_INGEST_SEED", "20260808"))
N_RUNS = int(os.environ.get("LASH_INGEST_RUNS", "5"))
OPS_PER_RUN = 12
ARTIFACT_DIR = os.environ.get("LASH_INGEST_ARTIFACT_DIR")


def _random_hierarchy(rng: random.Random) -> Hierarchy:
    """A random forest with occasional extra DAG edges (the same shape
    family the query differential suite draws from)."""
    n = rng.randint(3, 8)
    names = [f"i{k}" for k in range(n)]
    hierarchy = Hierarchy()
    for idx, name in enumerate(names):
        parent = None
        if idx and rng.random() < 0.6:
            parent = names[rng.randrange(idx)]
        hierarchy.add_item(name, parent)
    for idx in range(2, n):
        if rng.random() < 0.15:
            candidate = names[rng.randrange(idx)]
            if candidate not in hierarchy.ancestors_or_self(names[idx]):
                hierarchy.add_edge(names[idx], candidate)
    return hierarchy


def _random_sequences(rng: random.Random, names, count: int):
    return [
        tuple(rng.choice(names) for _ in range(rng.randint(1, 5)))
        for _ in range(count)
    ]


def _ranked(backend):
    return [(m.pattern, m.frequency) for m in backend]


def _dump_replay_bundle(base, hierarchy, ops, context: str) -> str:
    """Failing run as loadable files + the one replay command."""
    if not ARTIFACT_DIR:
        return ""
    bundle = Path(ARTIFACT_DIR) / f"ingest-seed-{SEED}"
    bundle.mkdir(parents=True, exist_ok=True)
    SequenceDatabase([list(s) for s in base]).to_file(bundle / "corpus.txt")
    hierarchy.to_file(bundle / "hierarchy.txt")
    (bundle / "failure.json").write_text(
        json.dumps(
            {"seed": SEED, "runs": N_RUNS, "ops": ops, "context": context},
            indent=2,
        )
    )
    (bundle / "replay.txt").write_text(
        f"LASH_INGEST_SEED={SEED} LASH_INGEST_RUNS={N_RUNS} "
        "PYTHONPATH=src python -m pytest -q "
        "tests/property/test_ingest_differential.py\n"
    )
    return f" [replay bundle: {bundle}]"


def test_update_differential_random_interleavings(tmp_path):
    """Random add/retire/compact interleavings vs the re-mine oracle."""
    rng = random.Random(SEED)
    adds = retires = verified = 0
    for run in range(N_RUNS):
        hierarchy = _random_hierarchy(rng)
        names = list(hierarchy.items)
        params = MiningParams(
            sigma=1, gamma=rng.choice([0, 1, None]), lam=rng.randint(2, 3)
        )
        base = _random_sequences(rng, names, rng.randint(2, 5))
        shards = rng.randint(2, 4)
        store_dir = tmp_path / f"run{run}.shards"
        Lash(params).mine(SequenceDatabase(list(base)), hierarchy).to_store(
            store_dir, shards=shards
        )
        spool = tmp_path / f"run{run}.spool"
        ingestor = Ingestor.init(
            tmp_path / f"run{run}.state",
            store_dir,
            spool,
            gamma=params.gamma,
            lam=params.lam,
        )
        service = QueryService(open_store(store_dir))
        daemon = CompactionDaemon(service, store_dir, spool, interval=3600)
        journal: list[tuple[str, ...]] = []
        retired = 0
        ops: list[str] = []

        def verify(oracle_tag: str) -> None:
            nonlocal verified
            context = (
                f"seed={SEED} run={run} after={oracle_tag} ops={ops!r}"
            )
            retained = base + journal[retired:]
            oracle = Lash(params).mine(
                SequenceDatabase(list(retained)), hierarchy
            )
            oracle_dir = tmp_path / f"run{run}.oracle{len(ops)}.shards"
            oracle.to_store(oracle_dir, shards=shards)
            with open_store(oracle_dir) as want:
                assert _ranked(service.backend) == _ranked(want), (
                    f"{context}: live ranking diverges from re-mine "
                    "of the retained corpus"
                )
            live_files = read_manifest(store_dir)["shard_files"]
            want_files = read_manifest(oracle_dir)["shard_files"]
            for live_name, want_name in zip(live_files, want_files):
                assert (store_dir / live_name).read_bytes() == (
                    oracle_dir / want_name
                ).read_bytes(), (
                    f"{context}: shard {live_name} not byte-identical "
                    f"to rebuilt {want_name}"
                )
            if names:
                answer = service.query(rng.choice(names))
                assert answer["ingested_through"] == len(journal), context
                assert answer["retained_from"] == retired, context
            stats = service.stats()
            assert stats["freshness"]["ingested_through"] == len(journal), (
                context
            )
            verified += 1

        try:
            for step in range(OPS_PER_RUN):
                retirable = len(journal) - retired
                roll = rng.random()
                if step == 0 or roll < 0.45:
                    batch = _random_sequences(
                        rng, names, rng.randint(1, 3)
                    )
                    report = ingestor.add(batch)
                    journal.extend(batch)
                    assert report["ingested_through"] == len(journal)
                    ops.append(f"add[{len(batch)}]")
                    adds += 1
                elif roll < 0.7 and retirable:
                    # occasionally retire the whole retained window so
                    # the all-contributions-cancel path gets exercised
                    count = (
                        retirable
                        if rng.random() < 0.2
                        else rng.randint(1, retirable)
                    )
                    report = ingestor.retire(count)
                    retired += count
                    assert report["retained_from"] == retired
                    ops.append(f"retire[{count}]")
                    retires += 1
                else:
                    daemon.poll_once()
                    ops.append("compact")
                    verify("compact")
            daemon.poll_once()
            ops.append("compact")
            verify("final")
        except AssertionError as exc:
            raise AssertionError(
                str(exc) + _dump_replay_bundle(base, hierarchy, ops, str(exc))
            ) from exc
        finally:
            service.backend.close()
    assert adds >= N_RUNS, f"only {adds} add ops executed"
    assert retires >= 1, "no retire op was ever drawn"
    assert verified >= N_RUNS, f"only {verified} oracle verifications ran"


def test_decrement_merge_order_and_grouping_invariant(tmp_path):
    """Folding signed deltas is associative and commutative to the byte.

    One base store plus increment and decrement deltas, merged (a) all
    at once, (b) one at a time in several shuffled arrival orders, and
    (c) with random delta subsets pre-combined into intermediate delta
    stores (``as_delta=True``) first — every path must produce the same
    bytes, and they must equal a fresh build over the net corpus.
    """
    rng = random.Random(SEED + 1)
    for run in range(3):
        hierarchy = _random_hierarchy(rng)
        names = list(hierarchy.items)
        params = MiningParams(
            sigma=1, gamma=rng.choice([0, None]), lam=rng.randint(2, 3)
        )
        base = _random_sequences(rng, names, rng.randint(2, 4))
        batches = [
            _random_sequences(rng, names, rng.randint(1, 3))
            for _ in range(3)
        ]
        base_store = tmp_path / f"m{run}.base.store"
        Lash(params).mine(SequenceDatabase(list(base)), hierarchy).to_store(
            base_store
        )
        deltas = []
        for b, batch in enumerate(batches):
            mined = micro_mine(batch, hierarchy, params)
            path = tmp_path / f"m{run}.d{b}.store"
            write_store(path, mined.patterns, mined.vocabulary, delta=True)
            deltas.append(path)
        # retire the first batch again: its delta and this decrement
        # cancel exactly, pattern by pattern and item by item
        mined = micro_mine(batches[0], hierarchy, params)
        retire = tmp_path / f"m{run}.retire.store"
        write_store(
            retire,
            {p: -f for p, f in mined.patterns.items()},
            negate_vocabulary(mined.vocabulary),
            delta=True,
        )
        deltas.append(retire)

        reference = tmp_path / f"m{run}.ref.store"
        merge_stores([base_store, *deltas], reference)
        want = reference.read_bytes()

        # the oracle: a fresh mine over the net corpus (batch 0 cancels)
        net = base + [s for batch in batches[1:] for s in batch]
        oracle = tmp_path / f"m{run}.oracle.store"
        Lash(params).mine(SequenceDatabase(list(net)), hierarchy).to_store(
            oracle
        )
        assert want == oracle.read_bytes(), (
            f"seed={SEED + 1} run={run}: one-shot fold diverges from "
            "a fresh mine of the net corpus"
        )

        for perm in range(3):
            # admissible arrival orders only: the pipeline publishes a
            # retire strictly after the add it cancels, so the retire
            # may never fold into the base before its increment has
            order = deltas[1:-1]
            rng.shuffle(order)
            order.insert(rng.randint(0, len(order)), deltas[0])
            order.insert(
                rng.randint(order.index(deltas[0]) + 1, len(order)), retire
            )
            current = base_store
            for step, delta in enumerate(order):
                out = tmp_path / f"m{run}.p{perm}.s{step}.store"
                merge_stores([current, delta], out)
                current = out
            assert current.read_bytes() == want, (
                f"seed={SEED + 1} run={run} perm={perm}: sequential "
                f"fold order {[d.name for d in order]!r} changed the bytes"
            )

        # grouping invariance: pre-combine a random delta subset into
        # one intermediate *delta* store, then fold the rest
        grouped = deltas[:]
        rng.shuffle(grouped)
        cut = rng.randint(2, len(grouped))
        combined = tmp_path / f"m{run}.combined.store"
        merge_stores(grouped[:cut], combined, as_delta=True)
        out = tmp_path / f"m{run}.grouped.store"
        merge_stores([base_store, combined, *grouped[cut:]], out)
        assert out.read_bytes() == want, (
            f"seed={SEED + 1} run={run}: pre-combining "
            f"{[d.name for d in grouped[:cut]]!r} changed the bytes"
        )


def test_sigma_crossing_drops_cancelled_patterns(tmp_path, fig1_hierarchy):
    """A pattern whose summed support falls below one vanishes from the
    fold exactly as it would from a re-mine — and patterns supported by
    the surviving sequences keep their exact frequencies."""
    params = MiningParams(sigma=1, gamma=0, lam=3)
    kept = [("a", "b1", "a"), ("a", "c")]
    dropped = [("b11", "e", "f"), ("d1", "d2")]
    base_store = tmp_path / "base.store"
    Lash(params).mine(
        SequenceDatabase(kept + dropped), fig1_hierarchy
    ).to_store(base_store)

    mined = micro_mine(dropped, fig1_hierarchy, params)
    retire = tmp_path / "retire.store"
    write_store(
        retire,
        {p: -f for p, f in mined.patterns.items()},
        negate_vocabulary(mined.vocabulary),
        delta=True,
    )
    out = tmp_path / "folded.store"
    merge_stores([base_store, retire], out)

    survivor = tmp_path / "survivor.store"
    Lash(params).mine(SequenceDatabase(kept), fig1_hierarchy).to_store(
        survivor
    )
    assert out.read_bytes() == survivor.read_bytes()
    with open_store(out) as folded:
        assert folded.frequency("e") == 0  # σ-crossed: fully cancelled
        assert folded.frequency("a", "c") == 1
