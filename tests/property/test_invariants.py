"""Property tests for the paper's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MiningParams, build_vocabulary
from repro.constants import BLANK
from repro.core.rewrite import rewrite_for_pivot
from repro.sequence.encoding import decode_sequence, encode_sequence
from repro.sequence.generate import generalized_subsequences, pivot_subsequences
from repro.sequence.subsequence import is_generalized_subsequence, support
from tests.property.strategies import (
    databases_over,
    forest_hierarchies,
    mining_instances,
)

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(mining_instances())
def test_rewrites_are_w_equivalent(instance):
    """Lemma 3 extended to the full pipeline: G_{w,λ}(T) = G_{w,λ}(P_w(T))."""
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    vocabulary = build_vocabulary(database, hierarchy)
    for sequence in database:
        encoded = vocabulary.encode_sequence(sequence)
        for pivot in range(len(vocabulary)):
            expected = pivot_subsequences(vocabulary, encoded, gamma, lam, pivot)
            rewritten = rewrite_for_pivot(vocabulary, encoded, pivot, params)
            got = (
                set()
                if rewritten is None
                else pivot_subsequences(vocabulary, rewritten, gamma, lam, pivot)
            )
            assert got == expected, (sequence, vocabulary.name(pivot))


@SETTINGS
@given(mining_instances())
def test_support_monotonicity(instance):
    """Lemma 1: S1 ⊑γ S2 implies f(S1) ≥ f(S2).

    Checked for the two generalization moves that build ⊑: dropping an item
    and generalizing an item to its parent.
    """
    hierarchy, database, sigma, gamma, lam = instance
    vocabulary = build_vocabulary(database, hierarchy)
    encoded = [vocabulary.encode_sequence(t) for t in database]
    patterns = set()
    for sequence in encoded[:3]:
        patterns |= generalized_subsequences(vocabulary, sequence, gamma, lam)
    for pattern in list(patterns)[:30]:
        freq = support(vocabulary, pattern, encoded, gamma)
        if len(pattern) > 1:
            # dropping edge items preserves ⊑γ (interior drops do not, as
            # they would shrink a constrained gap)
            assert support(vocabulary, pattern[1:], encoded, gamma) >= freq
            assert support(vocabulary, pattern[:-1], encoded, gamma) >= freq
        for i, item in enumerate(pattern):
            for parent in vocabulary.parent_ids(item):
                general = pattern[:i] + (parent,) + pattern[i + 1 :]
                assert support(vocabulary, general, encoded, gamma) >= freq


@SETTINGS
@given(mining_instances())
def test_output_frequencies_are_true_supports(instance):
    """Every mined (pattern, frequency) matches a direct support count."""
    from repro import Lash

    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    result = Lash(params).mine(database, hierarchy)
    encoded = [
        result.vocabulary.encode_sequence(t) for t in database
    ]
    for pattern, freq in result.patterns.items():
        assert support(result.vocabulary, pattern, encoded, gamma) == freq
        assert freq >= sigma
        assert 2 <= len(pattern) <= lam


@SETTINGS
@given(forest_hierarchies(), st.data())
def test_order_respects_hierarchy(hierarchy, data):
    """w2 → w1 implies id(w1) < id(w2) for random forests."""
    database = data.draw(databases_over(hierarchy))
    vocabulary = build_vocabulary(database, hierarchy)
    for item_id in range(len(vocabulary)):
        for ancestor in vocabulary.ancestors(item_id):
            assert ancestor < item_id


@SETTINGS
@given(
    st.lists(
        st.one_of(st.integers(0, 300), st.just(BLANK)), max_size=30
    ).map(tuple)
)
def test_sequence_codec_roundtrip(sequence):
    decoded, offset = decode_sequence(encode_sequence(sequence))
    assert decoded == sequence


@SETTINGS
@given(mining_instances())
def test_subsequence_reflexivity_and_empty(instance):
    hierarchy, database, _, gamma, _ = instance
    vocabulary = build_vocabulary(database, hierarchy)
    for sequence in database:
        encoded = vocabulary.encode_sequence(sequence)
        assert is_generalized_subsequence(vocabulary, encoded, encoded, gamma)
        assert is_generalized_subsequence(vocabulary, (), encoded, gamma)
