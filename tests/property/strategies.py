"""Hypothesis strategies for random hierarchies, databases and parameters."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Hierarchy, SequenceDatabase


@st.composite
def forest_hierarchies(draw, max_items: int = 8):
    """A random forest: item k's parent (if any) is an earlier item."""
    n = draw(st.integers(min_value=2, max_value=max_items))
    names = [f"i{k}" for k in range(n)]
    h = Hierarchy()
    for idx, name in enumerate(names):
        parent = None
        if idx > 0 and draw(st.booleans()):
            parent = names[draw(st.integers(0, idx - 1))]
        h.add_item(name, parent)
    return h


@st.composite
def dag_hierarchies(draw, max_items: int = 7):
    """A random DAG: items may get a second parent among earlier items."""
    h = draw(forest_hierarchies(max_items=max_items))
    names = list(h.items)
    for idx in range(2, len(names)):
        if draw(st.booleans()) and draw(st.booleans()):
            candidate = names[draw(st.integers(0, idx - 1))]
            if candidate not in h.ancestors_or_self(names[idx]):
                h.add_edge(names[idx], candidate)
    return h


@st.composite
def databases_over(draw, hierarchy: Hierarchy, max_sequences: int = 8,
                   max_length: int = 6):
    names = list(hierarchy.items)
    n_seqs = draw(st.integers(min_value=1, max_value=max_sequences))
    sequences = [
        [
            names[draw(st.integers(0, len(names) - 1))]
            for _ in range(draw(st.integers(1, max_length)))
        ]
        for _ in range(n_seqs)
    ]
    return SequenceDatabase(sequences)


@st.composite
def mining_instances(draw, hierarchy_strategy=None):
    """(hierarchy, database, sigma, gamma, lam) tuples, kept small."""
    if hierarchy_strategy is None:
        hierarchy_strategy = forest_hierarchies()
    hierarchy = draw(hierarchy_strategy)
    database = draw(databases_over(hierarchy))
    sigma = draw(st.integers(1, 3))
    gamma = draw(st.sampled_from([0, 1, 2, None]))
    lam = draw(st.integers(2, 4))
    return hierarchy, database, sigma, gamma, lam
