"""Property tests: every algorithm computes the same GSM answer.

The strongest correctness evidence in the suite: on random hierarchies,
databases and parameters, the naïve enumerator (obviously-correct oracle),
the semi-naïve baseline, and LASH with each local miner must agree exactly —
patterns and frequencies.
"""

from hypothesis import given, settings

from repro import (
    GspAlgorithm,
    Lash,
    MgFsm,
    MiningParams,
    NaiveAlgorithm,
    SemiNaiveAlgorithm,
)
from tests.property.strategies import dag_hierarchies, mining_instances


SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(mining_instances())
def test_lash_psm_matches_naive(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    naive = NaiveAlgorithm(params).mine(database, hierarchy)
    lash = Lash(params, local_miner="psm").mine(database, hierarchy)
    assert lash.decoded() == naive.decoded()


@SETTINGS
@given(mining_instances())
def test_all_psm_index_modes_agree(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    reference = Lash(params, local_miner="psm").mine(database, hierarchy)
    for miner in ("psm-level", "psm-noindex"):
        other = Lash(params, local_miner=miner).mine(database, hierarchy)
        assert other.decoded() == reference.decoded(), miner


@SETTINGS
@given(mining_instances())
def test_bfs_dfs_spam_brute_agree(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    reference = NaiveAlgorithm(params).mine(database, hierarchy)
    for miner in ("bfs", "dfs", "spam", "brute"):
        other = Lash(params, local_miner=miner).mine(database, hierarchy)
        assert other.decoded() == reference.decoded(), miner


@SETTINGS
@given(mining_instances())
def test_gsp_matches_naive(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    naive = NaiveAlgorithm(params).mine(database, hierarchy)
    gsp = GspAlgorithm(params).mine(database, hierarchy)
    assert gsp.decoded() == naive.decoded()


@SETTINGS
@given(mining_instances())
def test_seminaive_matches_naive(instance):
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    naive = NaiveAlgorithm(params).mine(database, hierarchy)
    semi = SemiNaiveAlgorithm(params).mine(database, hierarchy)
    assert semi.decoded() == naive.decoded()


@SETTINGS
@given(mining_instances())
def test_mgfsm_matches_flat_naive(instance):
    _, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    naive = NaiveAlgorithm(params).mine(database)  # flat
    mgfsm = MgFsm(params).mine(database)
    assert mgfsm.decoded() == naive.decoded()


@settings(max_examples=25, deadline=None)
@given(mining_instances(hierarchy_strategy=dag_hierarchies()))
def test_dag_hierarchies_agree(instance):
    """Paper footnote 2: the methods extend to DAG hierarchies."""
    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    naive = NaiveAlgorithm(params).mine(database, hierarchy)
    for miner in ("psm", "bfs", "dfs", "spam"):
        lash = Lash(params, local_miner=miner).mine(database, hierarchy)
        assert lash.decoded() == naive.decoded(), miner


@SETTINGS
@given(mining_instances())
def test_direct_closed_matches_posthoc(instance):
    """Direct closed/maximal mining ≡ post-processing the full output."""
    from repro.analysis.closedmax import filter_result
    from repro.core.closedlash import ClosedLash

    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    full = Lash(params).mine(database, hierarchy)
    for mode in ("closed", "maximal"):
        direct = ClosedLash(params, mode=mode).mine(database, hierarchy)
        assert direct.patterns == filter_result(full, mode).patterns, mode


@settings(max_examples=25, deadline=None)
@given(mining_instances(hierarchy_strategy=dag_hierarchies()))
def test_direct_closed_matches_posthoc_on_dags(instance):
    """The cover/prune split stays exact when items have several parents."""
    from repro.analysis.closedmax import filter_result
    from repro.core.closedlash import ClosedLash

    hierarchy, database, sigma, gamma, lam = instance
    params = MiningParams(sigma, gamma, lam)
    full = Lash(params).mine(database, hierarchy)
    for mode in ("closed", "maximal"):
        direct = ClosedLash(params, mode=mode).mine(database, hierarchy)
        assert direct.patterns == filter_result(full, mode).patterns, mode
